"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``    — build a small system and run the four meta-queries.
* ``search``  — build (or load) a system and run one form query.
* ``study``   — reproduce the Section 2 email study.
* ``build``   — run the offline pipeline and save the organized
  information to a JSON snapshot.
* ``synopsis`` — print one deal's synopsis by name or id.
* ``stats``   — build + query with a fresh metrics registry and print
  the per-stage observability report (offline and online pipelines).
* ``serve``   — closed-loop serving demo: N concurrent client threads
  drive the query mix through :class:`~repro.serving.EILServer`
  (admission control, deadlines, shedding) and the ``serving.*``
  metrics snapshot is printed at the end.
* ``persist`` — run the offline pipeline once and save the whole
  system (segment index + synopsis database + manifest) to a
  directory for cold starts.
* ``graph``   — entity-graph people & role search: ``--worked-with``
  / ``--role`` / ``--expertise`` / ``--overlap`` traversals over
  :class:`~repro.graph.EntityGraph`, or ``--graph-stats`` for
  node/edge counts.  See docs/QUERIES.md for the cookbook.

``stats``, ``serve`` and ``graph`` accept ``--index-dir`` to cold-start
from a ``persist`` directory instead of rebuilding — the corpus flags
must
match the ones the index was persisted with (the synthetic corpus
still supplies the taxonomy and workbook collection).

The CLI always works on the synthetic corpus (seeded, so results are
reproducible); flags control scale and the query.

Fault drills: ``--fault-profile`` arms the deterministic fault injector
for the whole command (e.g. ``--fault-profile db:error=0.2 stats``), so
the degradation ladder and quarantine paths can be exercised — and CI
can smoke them — without any real outage.  ``--fault-seed`` varies the
injected decisions while keeping them reproducible; see
docs/OPERATIONS.md for the drill recipes.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import threading
import time
from typing import List, Optional

from repro import obs
from repro.core.eil import EILSystem
from repro.core.facets import FacetService
from repro.core.metaqueries import (
    GraphQuery,
    graph_worked_with_query,
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.core.presentation import (
    render_deal_list,
    render_results,
    render_synopsis,
)
from repro.core.query_analyzer import FormQuery
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.db.persistence import dump_database
from repro.errors import EILUnavailableError, TransientError
from repro.eval.study import MetaQueryClassifier
from repro.faults import FaultInjector, FaultProfile, use_injector
from repro.security.access import User
from repro.serving import EILServer

__all__ = ["main", "build_parser"]

_USER = User("cli", frozenset({"sales"}))


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EIL: business-activity driven enterprise search "
                    "(ICDE 2008 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=2008,
                        help="corpus seed (default: 2008)")
    parser.add_argument("--deals", type=int, default=8,
                        help="number of deals to generate (default: 8)")
    parser.add_argument("--docs", type=int, default=30,
                        help="documents per deal (default: 30)")
    parser.add_argument("--workers", type=int, default=None,
                        help="workers for the offline parse+annotate "
                             "stage (default: 1 or $REPRO_WORKERS; "
                             "serial at 1; any width yields identical "
                             "results)")
    parser.add_argument("--executor", default=None,
                        choices=["serial", "threads", "processes"],
                        help="offline execution mode (default: threads "
                             "or $REPRO_EXECUTOR); 'processes' shards "
                             "the corpus by deal across worker "
                             "processes for true multi-core builds — "
                             "results are identical under every mode")
    parser.add_argument("--shards", type=int, default=None,
                        help="partition the inverted index into this "
                             "many deal-keyed shards served by fan-out "
                             "+ rank-merge (default: 1 or "
                             "$REPRO_SHARDS; rankings are bit-identical "
                             "at any shard count)")
    parser.add_argument("--fault-profile", default="",
                        help="arm the fault injector, e.g. "
                             "'db:error=0.2;index:latency=0.05' "
                             "(components: repository, crawler, "
                             "analysis, db, index)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for injected fault decisions "
                             "(default: 0)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the four meta-queries")

    search = commands.add_parser("search", help="run one form query")
    search.add_argument("--tower", default="", help="service concept")
    search.add_argument("--industry", default="")
    search.add_argument("--person", default="", help="contact name")
    search.add_argument("--organization", default="")
    search.add_argument("--role", default="")
    search.add_argument("--text", default="",
                        help='keyword criteria ("all of these words")')
    search.add_argument("--phrase", default="", help="exact phrase")
    search.add_argument("--limit", type=int, default=None)
    search.add_argument("--facets", action="store_true",
                        help="print facet counts for the result set")

    study = commands.add_parser("study",
                                help="reproduce the Section 2 study")
    study.add_argument("--threads", type=int, default=120)

    build = commands.add_parser(
        "build", help="run the offline pipeline, save a DB snapshot"
    )
    build.add_argument("output", help="snapshot path (JSON)")

    synopsis = commands.add_parser("synopsis", help="print one synopsis")
    synopsis.add_argument("deal", help="deal name (DEAL A) or deal id")

    stats = commands.add_parser(
        "stats",
        help="build + query, then print per-stage observability stats",
    )
    stats.add_argument("--queries", type=int, default=3,
                       help="repetitions of the query workload "
                            "(default: 3)")
    stats.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the raw metrics/trace JSON instead of "
                            "the text report")
    stats.add_argument("--index-dir", default=None,
                       help="cold-start from a 'persist' directory "
                            "instead of rebuilding the index")

    serve = commands.add_parser(
        "serve",
        help="closed-loop serving demo: concurrent clients through "
             "the EILServer front door",
    )
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent client threads (default: 4)")
    serve.add_argument("--requests", type=int, default=8,
                       help="requests per client (default: 8)")
    serve.add_argument("--concurrency", type=int, default=4,
                       help="server worker threads (default: 4)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="admission queue slots beyond the workers "
                            "(default: 16)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds (default: "
                            "none)")
    serve.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the serving metrics as JSON")
    serve.add_argument("--index-dir", default=None,
                       help="cold-start from a 'persist' directory "
                            "instead of rebuilding the index")

    persist = commands.add_parser(
        "persist",
        help="run the offline pipeline and save the whole system "
             "(segment index + synopsis DB + manifest) for cold starts",
    )
    persist.add_argument("output", help="target directory")

    graph = commands.add_parser(
        "graph",
        help="entity-graph people & role search (see docs/QUERIES.md)",
    )
    traversal = graph.add_mutually_exclusive_group(required=True)
    traversal.add_argument("--worked-with", default=None,
                           metavar="PERSON", dest="worked_with",
                           help="who has worked with PERSON (name or "
                                "email) across deals")
    traversal.add_argument("--role", default=None,
                           help="who has worked in the capacity of "
                                "ROLE (canonicalized, filled roles "
                                "only)")
    traversal.add_argument("--expertise", default=None, metavar="TOPIC",
                           help="who knows TOPIC (technology term or "
                                "tower name, substring match)")
    traversal.add_argument("--overlap", default=None, metavar="PERSON",
                           help="PERSON's colleagues ranked by Jaccard "
                                "overlap of deal histories")
    traversal.add_argument("--graph-stats", action="store_true",
                           dest="graph_stats",
                           help="print node/edge counts by kind "
                                "instead of running a traversal")
    graph.add_argument("--limit", type=int, default=None,
                       help="cap on returned people (default: all)")
    graph.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the answer as JSON")
    graph.add_argument("--index-dir", default=None,
                       help="cold-start from a 'persist' directory "
                            "instead of rebuilding the index")

    return parser


def _make_system(args: argparse.Namespace) -> tuple:
    # Corpus generation is the synthetic world, not the system under
    # test: it must not absorb injected faults (the personnel
    # directory it fills is Database-backed), so it runs under a
    # no-op injector even when --fault-profile armed one.
    with use_injector(FaultInjector()):
        corpus = CorpusGenerator(
            CorpusConfig(seed=args.seed, n_deals=args.deals,
                         docs_per_deal=args.docs)
        ).generate()
    index_dir = getattr(args, "index_dir", None)
    if index_dir:
        # Cold start: segments + synopsis DB come off disk; the shard
        # count is whatever the index was persisted with.
        return corpus, EILSystem.load(index_dir, corpus)
    return corpus, EILSystem.build(corpus, workers=args.workers,
                                   executor=args.executor,
                                   shards=args.shards)


def _cmd_demo(args: argparse.Namespace) -> int:
    corpus, eil = _make_system(args)
    member = corpus.deals[0].team[0]
    queries = (
        ("MQ1  scope: End User Services",
         scope_query("End User Services")),
        (f"MQ2  worked with {member.person.full_name}",
         worked_with_query(member.person.full_name)),
        ("MQ3  role: cross tower TSA",
         role_capacity_query("cross tower TSA")),
        ('MQ4  Storage Management Services + "data replication"',
         service_keyword_query("Storage Management Services",
                               "data replication")),
    )
    for title, form in queries:
        print("=" * 60)
        print(title)
        print("=" * 60)
        print(render_results(eil.search(form, _USER)))
        print()
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    _, eil = _make_system(args)
    form = FormQuery(
        tower=args.tower,
        industry=args.industry,
        person_name=args.person,
        organization=args.organization,
        role=args.role,
        all_words=args.text,
        exact_phrase=args.phrase,
    )
    print(form.describe())
    results = eil.search(form, _USER, limit=args.limit)
    for step in results.plan:
        if "did you mean" in step:
            print(step)
    print(render_results(results))
    if args.facets and results.activities:
        facets = FacetService(eil.organized).facets(results.deal_ids)
        print("\nRefine by:")
        for name, values in facets.items():
            if values:
                preview = ", ".join(
                    f"{value} ({count})" for value, count in values[:4]
                )
                print(f"  {name}: {preview}")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    corpus = CorpusGenerator(
        CorpusConfig(seed=args.seed, n_deals=args.deals,
                     docs_per_deal=args.docs, n_threads=args.threads)
    ).generate()
    report = MetaQueryClassifier().run_study(corpus.threads)
    print(f"threads: {report.total}")
    for meta_query in ("mq1", "mq2", "mq3", "mq4"):
        print(f"  {meta_query}: {report.type_counts.get(meta_query, 0)}"
              f" ({report.percentage(meta_query):.1f}%)")
    print(f"  social: {report.social_count} "
          f"({report.social_percentage():.1f}%)")
    print(f"  classifier/ground-truth agreement: "
          f"{report.label_accuracy:.0%}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    _, eil = _make_system(args)
    dump_database(eil.organized.db, args.output)
    report = eil.build_report
    print(f"indexed {report.documents_indexed} documents, populated "
          f"{report.deals_populated} deals; snapshot -> {args.output}")
    return 0


def _cmd_persist(args: argparse.Namespace) -> int:
    _, eil = _make_system(args)
    stats = eil.save_index(args.output)
    print(f"persisted {stats['docs']} documents in "
          f"{stats['segments']} segment(s), "
          f"{stats['bytes_per_doc']:.0f} bytes/doc -> {args.output}")
    return 0


def _render_people(people, header: str) -> None:
    print(header)
    if not people:
        print("  (nobody)")
        return
    for person in people:
        line = f"  {person.name}"
        if person.roles:
            line += f" — {', '.join(person.roles)}"
        print(line)
        deals = getattr(person, "deals", None)
        if deals is None:
            deals = person.shared_deals
        detail = f"    deals: {', '.join(deals)}"
        overlap = getattr(person, "overlap", 0.0)
        if overlap:
            detail += f"  overlap: {overlap:.2f}"
        print(detail)
        evidence = getattr(person, "evidence", None)
        if evidence:
            print(f"    via: {', '.join(evidence)}")
        print(f"    cites: {', '.join(person.provenance)}")


def _cmd_graph(args: argparse.Namespace) -> int:
    _, eil = _make_system(args)
    if args.graph_stats:
        stats = eil.graph.stats()
        if args.as_json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(f"deals: {stats['deals']}  nodes: {stats['nodes']}  "
                  f"edges: {stats['edges']}  epoch: {stats['epoch']}")
            for kind, count in stats["nodes_by_kind"].items():
                print(f"  node {kind}: {count}")
            for kind, count in stats["edges_by_kind"].items():
                print(f"  edge {kind}: {count}")
        return 0
    if args.worked_with is not None:
        query = GraphQuery("worked-with", args.worked_with, args.limit)
    elif args.role is not None:
        query = GraphQuery("role-capacity", args.role, args.limit)
    elif args.expertise is not None:
        query = GraphQuery("expertise", args.expertise, args.limit)
    else:
        query = GraphQuery("team-overlap", args.overlap, args.limit)
    answer = eil.graph_query(query)
    if args.as_json:
        print(json.dumps(dataclasses.asdict(answer), indent=2,
                         sort_keys=True))
        return 0
    print(query.describe())
    if query.kind in ("worked-with", "team-overlap"):
        if not answer.persons:
            print(f"  no person matching {query.subject!r} in the "
                  f"graph")
            return 1
        if query.kind == "worked-with":
            print(f"  deals: {', '.join(answer.deals)}")
        _render_people(answer.colleagues, "  colleagues:")
    elif query.kind == "role-capacity":
        print(f"  canonical role: {answer.role}")
        _render_people(answer.people, "  people:")
    else:
        print(f"  matched: {', '.join(answer.matched) or '(nothing)'}")
        _render_people(answer.people, "  people:")
    return 0


def _cmd_synopsis(args: argparse.Namespace) -> int:
    _, eil = _make_system(args)
    wanted = args.deal.strip().lower()
    for deal_id in eil.deal_ids():
        synopsis = eil.synopsis(deal_id, _USER)
        if wanted in (deal_id.lower(), synopsis.name.lower()):
            print(render_synopsis(synopsis))
            return 0
    print(f"no deal named {args.deal!r}; known deals:", file=sys.stderr)
    synopses = [eil.synopsis(d, _USER) for d in eil.deal_ids()]
    print(render_deal_list(synopses), file=sys.stderr)
    return 1


def _stats_workload(eil: EILSystem, corpus, rounds: int) -> None:
    """A representative online mix: the four meta-queries + baseline."""
    member = corpus.deals[0].team[0]
    forms = (
        scope_query("End User Services"),
        worked_with_query(member.person.full_name),
        role_capacity_query("cross tower TSA"),
        service_keyword_query("Storage Management Services",
                              "data replication"),
    )
    for _ in range(max(1, rounds)):
        for form in forms:
            try:
                eil.search(form, _USER)
            except EILUnavailableError:
                # Both substrates down; already counted under
                # query.unavailable — the report should still print.
                pass
        # The graph traversal form of MQ2: reads only in-memory graph
        # state (no substrates), so it needs no fault handling and the
        # graph.* metrics always land in the report.
        eil.graph_query(
            graph_worked_with_query(member.person.full_name)
        )
        try:
            eil.keyword_search("end user services")
            # A limited OR query exercises the top-k executor: the
            # engine.maxscore.* counters and the engine.postings_touched
            # reduction show up in the stats report.
            eil.keyword_search(
                "migration OR replication OR services OR storage "
                "OR network",
                limit=5,
            )
        except TransientError:
            # The baseline has no degradation ladder (by design); a
            # persistent injected outage must not kill the stats run.
            obs.get_registry().inc("query.baseline_unavailable")


def _cmd_stats(args: argparse.Namespace) -> int:
    with obs.use_registry() as registry, obs.use_tracer() as tracer:
        corpus, eil = _make_system(args)
        _stats_workload(eil, corpus, args.queries)
        if args.as_json:
            print(json.dumps(obs.stats_dict(registry, tracer), indent=2))
        else:
            report = eil.build_report
            print(f"corpus: {args.deals} deals x {args.docs} docs "
                  f"({report.documents_indexed} documents indexed)")
            print()
            print(obs.render_stats(registry))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    with obs.use_registry() as registry:
        corpus, eil = _make_system(args)
        member = corpus.deals[0].team[0]
        forms = (
            scope_query("End User Services"),
            worked_with_query(member.person.full_name),
            role_capacity_query("cross tower TSA"),
            service_keyword_query("Storage Management Services",
                                  "data replication"),
        )

        def client(offset: int) -> None:
            for i in range(max(1, args.requests)):
                form = forms[(offset + i) % len(forms)]
                try:
                    server.search(form, _USER,
                                  deadline_seconds=args.deadline)
                except TransientError:
                    pass  # shed / deadline / open breaker: counted.
                except EILUnavailableError:
                    pass  # full outage under --fault-profile: counted.

        with EILServer(eil, max_concurrency=args.concurrency,
                       queue_depth=args.queue_depth) as server:
            started = time.perf_counter()
            threads = [
                threading.Thread(target=client, args=(n,),
                                 name=f"client-{n}")
                for n in range(max(1, args.clients))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started

        serving = {
            name: value
            for name, value in registry.snapshot().items()
            if name.startswith("serving.")
        }
        completed = registry.counters.get("serving.completed")
        qps = (completed.value / elapsed) if completed and elapsed else 0.0
        if args.as_json:
            print(json.dumps({"elapsed_seconds": elapsed,
                              "sustained_qps": qps,
                              "metrics": serving}, indent=2))
            return 0
        print(f"clients: {args.clients} x {args.requests} requests, "
              f"server concurrency {args.concurrency} "
              f"(+{args.queue_depth} queued)")
        print(f"elapsed: {elapsed:.3f}s  sustained: {qps:.1f} q/s")
        latency = registry.histograms.get("serving.latency")
        if latency is not None and latency.count:
            print("latency: "
                  f"p50={latency.percentile(50) * 1000:.1f}ms  "
                  f"p95={latency.percentile(95) * 1000:.1f}ms  "
                  f"p99={latency.percentile(99) * 1000:.1f}ms")
        for name in sorted(serving):
            value = serving[name]
            if value.get("type") == "histogram":
                continue
            print(f"  {name}: {value.get('value', 0)}")
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "search": _cmd_search,
    "study": _cmd_study,
    "build": _cmd_build,
    "synopsis": _cmd_synopsis,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "persist": _cmd_persist,
    "graph": _cmd_graph,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    if args.fault_profile:
        injector = FaultInjector(
            FaultProfile.parse(args.fault_profile), seed=args.fault_seed
        )
        with use_injector(injector):
            return command(args)
    return command(args)
