"""Heap table storage with automatic index maintenance.

Rows are stored as immutable tuples keyed by a monotonically increasing
row id.  All constraint checks (primary key, unique, NOT NULL via the
schema) happen *before* any mutation so a failed statement leaves the
table unchanged.  Every mutation is reported to the owning database's
undo log (when a transaction is active) through the ``journal`` hook.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.db.index import HashIndex, Index, SortedIndex
from repro.db.schema import TableSchema
from repro.errors import IntegrityError, ProgrammingError, SchemaError

__all__ = ["Table"]

# journal callback: (table_name, op, rowid, old_row_or_None, new_row_or_None)
JournalHook = Callable[[str, str, int, Optional[tuple], Optional[tuple]], None]


class Table:
    """One heap table plus its indexes.

    Args:
        schema: The validated :class:`TableSchema`.
        journal: Optional hook invoked after each successful mutation,
            used by :class:`repro.db.database.Database` for rollback.
        on_ddl: Optional hook invoked after every index creation, used
            by the database to bump its DDL epoch so cached statement
            plans re-plan against the new access paths.  This fires
            even when callers create indexes directly on the table
            (e.g. the intranet directory), not just via SQL DDL.
    """

    def __init__(
        self,
        schema: TableSchema,
        journal: Optional[JournalHook] = None,
        on_ddl: Optional[Callable[[], None]] = None,
    ) -> None:
        self.schema = schema
        self._rows: Dict[int, Tuple[Any, ...]] = {}
        self._next_rowid = 1
        self._indexes: Dict[str, Index] = {}
        self._journal = journal
        self._on_ddl = on_ddl
        if schema.primary_key:
            self._create_index(
                f"pk_{schema.name}", schema.primary_key, unique=True, sorted_=True
            )
        for position, constraint in enumerate(schema.unique):
            self._create_index(
                f"uq_{schema.name}_{position}", constraint, unique=True,
                sorted_=False,
            )

    # -- index management -------------------------------------------------

    def _create_index(
        self,
        name: str,
        columns: Tuple[str, ...],
        unique: bool,
        sorted_: bool,
    ) -> Index:
        if name in self._indexes:
            raise SchemaError(f"index {name!r} already exists")
        for column in columns:
            self.schema.position(column)  # raises on unknown column
        index: Index
        if sorted_:
            index = SortedIndex(name, columns, unique)
        else:
            index = HashIndex(name, columns, unique)
        for rowid, row in self._rows.items():
            index.insert(self.schema.key_of(row, columns), rowid)
        self._indexes[name] = index
        if self._on_ddl is not None:
            self._on_ddl()
        return index

    def create_index(
        self,
        name: str,
        columns: Tuple[str, ...],
        unique: bool = False,
        sorted_: bool = True,
    ) -> Index:
        """Create a secondary index over ``columns``.

        Sorted indexes additionally support range scans; hash indexes
        are marginally faster for pure equality.
        """
        return self._create_index(name, columns, unique, sorted_)

    def index_on(self, columns: Tuple[str, ...]) -> Optional[Index]:
        """Return an index whose key is exactly ``columns``, if any."""
        lowered = tuple(c.lower() for c in columns)
        for index in self._indexes.values():
            if index.columns == lowered:
                return index
        return None

    def indexes_prefixed_by(self, column: str) -> List[Index]:
        """Indexes whose leading key column is ``column``."""
        lowered = column.lower()
        return [
            index
            for index in self._indexes.values()
            if index.columns[0] == lowered
        ]

    @property
    def indexes(self) -> Mapping[str, Index]:
        """Read-only view of indexes by name."""
        return dict(self._indexes)

    # -- mutation -----------------------------------------------------------

    def insert(self, values: Mapping[str, Any]) -> int:
        """Insert one row; returns its row id."""
        row = self.schema.validate_row(values)
        self._check_unique(row, ignore_rowid=None)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._apply_insert(rowid, row)
        if self._journal is not None:
            self._journal(self.schema.name, "insert", rowid, None, row)
        return rowid

    def update(
        self,
        rowid: int,
        changes: Mapping[str, Any],
    ) -> Tuple[Any, ...]:
        """Apply ``changes`` to the row at ``rowid``; returns new tuple."""
        old_row = self._rows.get(rowid)
        if old_row is None:
            raise ProgrammingError(f"no row {rowid} in {self.schema.name!r}")
        merged = self.schema.row_dict(old_row)
        for column, value in changes.items():
            if not self.schema.has_column(column):
                raise IntegrityError(
                    f"unknown column {column!r} in UPDATE of "
                    f"{self.schema.name!r}"
                )
            merged[column.lower()] = value
        new_row = self.schema.validate_row(merged)
        self._check_unique(new_row, ignore_rowid=rowid)
        self._apply_delete(rowid, old_row)
        self._apply_insert(rowid, new_row)
        if self._journal is not None:
            self._journal(self.schema.name, "update", rowid, old_row, new_row)
        return new_row

    def delete(self, rowid: int) -> Tuple[Any, ...]:
        """Delete the row at ``rowid``; returns the removed tuple."""
        old_row = self._rows.get(rowid)
        if old_row is None:
            raise ProgrammingError(f"no row {rowid} in {self.schema.name!r}")
        self._apply_delete(rowid, old_row)
        if self._journal is not None:
            self._journal(self.schema.name, "delete", rowid, old_row, None)
        return old_row

    # -- undo support (used by Database.rollback, bypasses journal) -------

    def undo_insert(self, rowid: int) -> None:
        """Reverse a journaled insert."""
        row = self._rows[rowid]
        self._apply_delete(rowid, row)

    def undo_delete(self, rowid: int, row: Tuple[Any, ...]) -> None:
        """Reverse a journaled delete."""
        self._apply_insert(rowid, row)

    def undo_update(self, rowid: int, old_row: Tuple[Any, ...]) -> None:
        """Reverse a journaled update."""
        current = self._rows[rowid]
        self._apply_delete(rowid, current)
        self._apply_insert(rowid, old_row)

    # -- internals ----------------------------------------------------------

    def _check_unique(
        self, row: Tuple[Any, ...], ignore_rowid: Optional[int]
    ) -> None:
        for index in self._indexes.values():
            if not index.unique:
                continue
            key = self.schema.key_of(row, index.columns)
            if index.would_violate(key, ignore_rowid):
                constraint = (
                    "PRIMARY KEY"
                    if index.columns == self.schema.primary_key
                    else f"UNIQUE({', '.join(index.columns)})"
                )
                raise IntegrityError(
                    f"{constraint} violated in table "
                    f"{self.schema.name!r}: {key!r}"
                )

    def _apply_insert(self, rowid: int, row: Tuple[Any, ...]) -> None:
        self._rows[rowid] = row
        for index in self._indexes.values():
            index.insert(self.schema.key_of(row, index.columns), rowid)

    def _apply_delete(self, rowid: int, row: Tuple[Any, ...]) -> None:
        del self._rows[rowid]
        for index in self._indexes.values():
            index.delete(self.schema.key_of(row, index.columns), rowid)

    # -- read access ----------------------------------------------------------

    def row(self, rowid: int) -> Tuple[Any, ...]:
        """The storage tuple at ``rowid``."""
        try:
            return self._rows[rowid]
        except KeyError:
            raise ProgrammingError(
                f"no row {rowid} in {self.schema.name!r}"
            ) from None

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Yield (rowid, row) in insertion order."""
        # Sorted by rowid for deterministic full scans.
        for rowid in sorted(self._rows):
            yield rowid, self._rows[rowid]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.name}, rows={len(self)})"
