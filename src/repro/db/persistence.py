"""Database persistence: JSON snapshot save/load.

The organized information is rebuilt nightly in the paper's deployment,
but the online side must start fast — so the engine supports dumping a
whole :class:`~repro.db.database.Database` (schemas, constraints,
indexes, rows) to a JSON file and restoring it without re-running the
pipeline.  Dates are serialized as ISO strings and restored through the
normal coercion path, so a loaded database is indistinguishable from
the original.

Durability hardening (format version 2):

* :func:`dump_database` writes atomically (temp file + fsync +
  rename via :mod:`repro.storage.atomic`) so a crash mid-dump never
  corrupts the last good snapshot;
* the header carries a blake2b checksum over the canonical table
  payload, verified on load;
* every load failure — foreign file, truncated JSON, checksum
  mismatch, unsupported version, malformed structure — raises a typed
  :class:`~repro.errors.DatabaseError`, never a bare ``KeyError`` or
  ``JSONDecodeError``.

Version-1 snapshots (no checksum) still load, so pre-hardening
snapshots survive an upgrade.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import pathlib
from typing import Any, Dict, List, Union

from repro.db.database import Database
from repro.db.index import SortedIndex
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import DataType
from repro.errors import DatabaseError
from repro.storage.atomic import atomic_write_text

__all__ = ["dump_database", "load_database", "dumps_database",
           "loads_database"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _tables_checksum(tables: List[Dict[str, Any]]) -> str:
    """Checksum over the canonical JSON form of the table payload.

    Canonical (sorted-keys) re-serialization makes the digest stable
    across a dump → load → dump round-trip: the payload is pure JSON
    primitives, so re-encoding is byte-reproducible.
    """
    canonical = json.dumps(tables, sort_keys=True)
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"__date__": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__date__" in value:
        return datetime.date.fromisoformat(value["__date__"])
    return value


def dumps_database(db: Database) -> str:
    """Serialize ``db`` to a JSON string."""
    tables: List[Dict[str, Any]] = []
    for name in db.table_names:
        table = db.table(name)
        schema = table.schema
        tables.append(
            {
                "name": schema.name,
                "columns": [
                    {
                        "name": column.name,
                        "dtype": column.dtype.value,
                        "nullable": column.nullable,
                        "default": _encode_value(column.default),
                    }
                    for column in schema.columns
                ],
                "primary_key": list(schema.primary_key),
                "unique": [list(u) for u in schema.unique],
                "foreign_keys": [
                    {
                        "columns": list(fk.columns),
                        "parent_table": fk.parent_table,
                        "parent_columns": list(fk.parent_columns),
                    }
                    for fk in schema.foreign_keys
                ],
                "indexes": [
                    {
                        "name": index.name,
                        "columns": list(index.columns),
                        "unique": index.unique,
                        "sorted": isinstance(index, SortedIndex),
                    }
                    for index in table.indexes.values()
                    if not index.name.startswith(("pk_", "uq_"))
                ],
                "rows": [
                    [_encode_value(value) for value in row]
                    for _, row in table.scan()
                ],
            }
        )
    return json.dumps(
        {
            "version": _FORMAT_VERSION,
            "checksum": _tables_checksum(tables),
            "tables": tables,
        }
    )


def loads_database(payload: str) -> Database:
    """Rebuild a Database from :func:`dumps_database` output.

    Raises :class:`~repro.errors.DatabaseError` for every failure
    mode: non-JSON input, a JSON document that is not a snapshot
    (foreign file), an unsupported version, a checksum mismatch
    (corruption / truncation), or a structurally malformed snapshot.
    """
    try:
        document = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise DatabaseError(f"invalid database snapshot: {exc}") from exc
    if (
        not isinstance(document, dict)
        or "version" not in document
        or not isinstance(document.get("tables"), list)
    ):
        raise DatabaseError(
            "not a database snapshot (foreign or partial file)"
        )
    version = document["version"]
    if version not in _SUPPORTED_VERSIONS:
        raise DatabaseError(f"unsupported snapshot version {version!r}")
    if version >= 2:
        stored = document.get("checksum")
        if stored is None:
            raise DatabaseError("snapshot header is missing its checksum")
        if stored != _tables_checksum(document["tables"]):
            raise DatabaseError(
                "snapshot failed checksum verification (corrupt or "
                "truncated file)"
            )
    try:
        return _load_tables(document["tables"])
    except DatabaseError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise DatabaseError(
            f"malformed database snapshot: {exc!r}"
        ) from exc


def _load_tables(tables: List[Dict[str, Any]]) -> Database:
    db = Database()
    # Two passes: create all tables first (FKs may reference any order —
    # but create_table validates parents exist, so order parent-first).
    pending = list(tables)
    created = set()
    creation_order: List[Dict[str, Any]] = []
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for spec in pending:
            parents = {
                fk["parent_table"].lower()
                for fk in spec["foreign_keys"]
            }
            if parents <= created:
                _create_table(db, spec)
                created.add(spec["name"])
                creation_order.append(spec)
                progress = True
            else:
                remaining.append(spec)
        pending = remaining
    if pending:
        raise DatabaseError(
            "snapshot has unresolvable foreign-key ordering: "
            + ", ".join(spec["name"] for spec in pending)
        )
    # Rows must load parent tables first too, or FK checks reject
    # children whose parents have not arrived yet.
    for spec in creation_order:
        table = db.table(spec["name"])
        column_names = table.schema.column_names
        for row in spec["rows"]:
            db.insert(
                spec["name"],
                {
                    column: _decode_value(value)
                    for column, value in zip(column_names, row)
                },
            )
    return db


def _create_table(db: Database, spec: Dict[str, Any]) -> None:
    schema = TableSchema(
        spec["name"],
        [
            Column(
                column["name"],
                DataType(column["dtype"]),
                column["nullable"],
                _decode_value(column["default"]),
            )
            for column in spec["columns"]
        ],
        primary_key=spec["primary_key"],
        unique=spec["unique"],
        foreign_keys=[
            ForeignKey(
                tuple(fk["columns"]),
                fk["parent_table"],
                tuple(fk["parent_columns"]),
            )
            for fk in spec["foreign_keys"]
        ],
    )
    table = db.create_table(schema)
    for index in spec["indexes"]:
        table.create_index(
            index["name"],
            tuple(index["columns"]),
            unique=index["unique"],
            sorted_=index["sorted"],
        )


def dump_database(db: Database, path: Union[str, pathlib.Path]) -> None:
    """Write ``db`` to ``path`` as JSON, atomically.

    The snapshot lands via temp-file + fsync + rename, so a crash mid
    write leaves any previous snapshot at ``path`` intact.
    """
    atomic_write_text(str(path), dumps_database(db))


def load_database(path: Union[str, pathlib.Path]) -> Database:
    """Load a database snapshot from ``path``.

    Raises :class:`~repro.errors.DatabaseError` if the file is missing,
    unreadable, or fails :func:`loads_database` validation.
    """
    try:
        payload = pathlib.Path(path).read_text()
    except OSError as exc:
        raise DatabaseError(
            f"cannot read database snapshot {path}: {exc}"
        ) from exc
    return loads_database(payload)
