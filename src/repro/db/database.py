"""The Database: catalog, SQL execution, transactions, foreign keys.

This is the DB2 stand-in the EIL organized-information layer writes to
and the synopsis queries read from.  One :class:`Database` owns a set of
:class:`~repro.db.table.Table` objects and exposes:

* ``execute(sql, params)`` — parse and run any supported statement.
* Programmatic helpers (``create_table``, ``insert``, ``select`` with a
  prebuilt :class:`SelectStatement`) for hot paths that should skip the
  parser.
* Undo-log transactions: ``begin`` / ``commit`` / ``rollback`` and a
  ``transaction()`` context manager.  Statements outside a transaction
  auto-commit.
* Foreign keys with RESTRICT semantics, checked at statement level.

Concurrency: row-level statements run under a writer-preferring
read/write lock — SELECTs share the read side, INSERT/UPDATE/DELETE
(and rollback's undo replay) take the write side — so a synopsis query
racing incremental onboarding/offboarding can never observe a table
mid-mutation.  Isolation is *per statement*, not per transaction
(single-writer callers like the serving layer's mutation paths are the
intended users); DDL and catalog lookups are the offline build's
single-threaded domain and stay unlocked.

Statement cache: ``execute(sql, params)`` keeps a bounded LRU of
parsed statements keyed on the SQL text; SELECT entries also carry
their prepared :class:`~repro.db.plan.SelectPlan`, so the hot synopsis
read path parses and plans each query text once and then only executes.
Entries are stamped with the database's DDL epoch — every CREATE/DROP
TABLE and index creation (including indexes created directly on a
:class:`~repro.db.table.Table`) bumps the epoch, so stale plans can
never run against a changed catalog.  ``REPRO_DB_PLAN_CACHE`` controls
capacity (``0`` disables, default 128); ``db.stmt_cache.*`` counters
report hits, misses, evictions and epoch invalidations.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.concurrency import ReadWriteLock
from repro.db.plan import PlannerOptions, SelectPlan, plan_rowids
from repro.db.query import (
    ResultSet,
    SelectStatement,
    TableRef,
    execute_select,
)
from repro.db.schema import ForeignKey, TableSchema
from repro.db.sql import (
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Explain,
    Insert,
    Statement,
    Update,
    parse,
)
from repro.db.table import Table
from repro.errors import (
    IntegrityError,
    ProgrammingError,
    SchemaError,
    TransactionError,
)
from repro.faults import get_injector
from repro.obs import get_registry

__all__ = ["Database"]

_DEFAULT_PLAN_CACHE = 128


def _plan_cache_capacity(requested: Optional[int]) -> int:
    """Resolve the statement-cache capacity (argument, else env)."""
    if requested is not None:
        return max(0, requested)
    raw = os.environ.get("REPRO_DB_PLAN_CACHE", "").strip().lower()
    if not raw:
        return _DEFAULT_PLAN_CACHE
    if raw in ("off", "false", "no"):
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return _DEFAULT_PLAN_CACHE


class _CacheEntry:
    """One cached statement: parse result, optional plan, DDL epoch."""

    __slots__ = ("statement", "plan", "epoch")

    def __init__(
        self,
        statement: Statement,
        plan: Optional[SelectPlan],
        epoch: int,
    ) -> None:
        self.statement = statement
        self.plan = plan
        self.epoch = epoch


class _StatementCache:
    """Bounded LRU of parsed statements + prepared plans, by SQL text.

    Thread-safe: the serving layer executes SELECTs concurrently under
    the database's read lock, so cache bookkeeping takes its own small
    mutex.  Entries from an older DDL epoch are dropped on lookup and
    counted as invalidations.
    """

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, sql: str, epoch: int, metrics: Any) -> Optional[_CacheEntry]:
        with self._lock:
            entry = self._entries.get(sql)
            if entry is None:
                metrics.inc("db.stmt_cache.misses")
                return None
            if entry.epoch != epoch:
                del self._entries[sql]
                metrics.inc("db.stmt_cache.invalidations")
                metrics.inc("db.stmt_cache.misses")
                return None
            self._entries.move_to_end(sql)
            metrics.inc("db.stmt_cache.hits")
            return entry

    def store(self, sql: str, entry: _CacheEntry, metrics: Any) -> None:
        with self._lock:
            self._entries[sql] = entry
            self._entries.move_to_end(sql)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                metrics.inc("db.stmt_cache.evictions")


class Database:
    """An in-memory relational database."""

    def __init__(
        self,
        planner_options: Optional[PlannerOptions] = None,
        plan_cache: Optional[int] = None,
    ) -> None:
        self._tables: Dict[str, Table] = {}
        self._undo_log: Optional[
            List[Tuple[str, str, int, Optional[tuple], Optional[tuple]]]
        ] = None
        self._rw = ReadWriteLock()
        self._planner_options = (
            planner_options
            if planner_options is not None
            else PlannerOptions.from_env()
        )
        self._ddl_epoch = 0
        capacity = _plan_cache_capacity(plan_cache)
        self._stmt_cache = (
            _StatementCache(capacity) if capacity > 0 else None
        )

    @property
    def planner_options(self) -> PlannerOptions:
        """The option set every SELECT in this database plans with."""
        return self._planner_options

    @property
    def ddl_epoch(self) -> int:
        """Monotonic catalog version; cached plans from older epochs
        are invalid."""
        return self._ddl_epoch

    def _bump_ddl(self) -> None:
        self._ddl_epoch += 1

    # -- catalog -----------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Register ``schema`` and return its empty table."""
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            self._validate_foreign_key(schema, fk)
        table = Table(schema, journal=self._journal, on_ddl=self._bump_ddl)
        self._tables[schema.name] = table
        self._bump_ddl()
        return table

    def _validate_foreign_key(self, schema: TableSchema, fk: ForeignKey) -> None:
        parent = self._tables.get(fk.parent_table.lower())
        if parent is None:
            raise SchemaError(
                f"foreign key on {schema.name!r} references unknown table "
                f"{fk.parent_table!r}"
            )
        parent_pk = parent.schema.primary_key
        normalized = tuple(c.lower() for c in fk.parent_columns)
        if normalized != parent_pk:
            raise SchemaError(
                f"foreign key must reference the primary key of "
                f"{fk.parent_table!r} ({parent_pk}), got {normalized}"
            )

    def drop_table(self, name: str) -> None:
        """Remove a table; fails if another table references it."""
        lowered = name.lower()
        if lowered not in self._tables:
            raise ProgrammingError(f"no table {name!r}")
        for other in self._tables.values():
            if other.schema.name == lowered:
                continue
            for fk in other.schema.foreign_keys:
                if fk.parent_table.lower() == lowered:
                    raise IntegrityError(
                        f"cannot drop {name!r}: referenced by "
                        f"{other.schema.name!r}"
                    )
        del self._tables[lowered]
        self._bump_ddl()

    def table(self, name: str) -> Table:
        """Look up a table by name (case-insensitive)."""
        table = self._tables.get(name.lower())
        if table is None:
            raise ProgrammingError(f"no table {name!r}")
        return table

    @property
    def table_names(self) -> List[str]:
        """Sorted names of all tables."""
        return sorted(self._tables)

    # -- transactions -----------------------------------------------------

    def begin(self) -> None:
        """Start a transaction; mutations become revertible."""
        if self._undo_log is not None:
            raise TransactionError("transaction already in progress")
        self._undo_log = []

    def commit(self) -> None:
        """Make the current transaction's changes permanent."""
        if self._undo_log is None:
            raise TransactionError("no transaction in progress")
        self._undo_log = None

    def rollback(self) -> None:
        """Revert every mutation since ``begin``."""
        if self._undo_log is None:
            raise TransactionError("no transaction in progress")
        log, self._undo_log = self._undo_log, None
        with self._rw.write():
            for table_name, op, rowid, old_row, _new_row in reversed(log):
                table = self._tables[table_name]
                if op == "insert":
                    table.undo_insert(rowid)
                elif op == "delete":
                    assert old_row is not None
                    table.undo_delete(rowid, old_row)
                else:  # update
                    assert old_row is not None
                    table.undo_update(rowid, old_row)

    @contextmanager
    def transaction(self) -> Iterator["Database"]:
        """Context manager: commit on success, rollback on exception."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()

    def _journal(
        self,
        table_name: str,
        op: str,
        rowid: int,
        old_row: Optional[tuple],
        new_row: Optional[tuple],
    ) -> None:
        if self._undo_log is not None:
            self._undo_log.append((table_name, op, rowid, old_row, new_row))

    @property
    def in_transaction(self) -> bool:
        """True while a transaction is open."""
        return self._undo_log is not None

    # -- foreign-key checks --------------------------------------------------

    def _check_fk_on_insert(
        self, table: Table, values: Mapping[str, Any]
    ) -> None:
        row = table.schema.validate_row(values)
        for fk in table.schema.foreign_keys:
            key = table.schema.key_of(row, fk.columns)
            if None in key:
                continue  # SQL: NULL FK values are not checked
            parent = self.table(fk.parent_table)
            index = parent.index_on(parent.schema.primary_key)
            assert index is not None  # PK always indexed
            if not index.lookup(key):
                raise IntegrityError(
                    f"foreign key violation: {table.schema.name!r}"
                    f"{fk.columns} = {key!r} has no parent in "
                    f"{fk.parent_table!r}"
                )

    def _check_fk_on_delete(self, table: Table, row: tuple) -> None:
        if not table.schema.primary_key:
            return
        key = table.schema.key_of(row, table.schema.primary_key)
        for child in self._tables.values():
            for fk in child.schema.foreign_keys:
                if fk.parent_table.lower() != table.schema.name:
                    continue
                index = child.index_on(fk.columns)
                if index is not None:
                    referencing = index.lookup(key)
                else:
                    referencing = {
                        rid
                        for rid, child_row in child.scan()
                        if child.schema.key_of(child_row, fk.columns) == key
                    }
                if referencing:
                    raise IntegrityError(
                        f"cannot delete from {table.schema.name!r}: "
                        f"row {key!r} referenced by {child.schema.name!r}"
                    )

    # -- execution ------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Parse and execute one SQL statement.

        Non-SELECT statements return a ResultSet with a single
        ``rowcount`` column so callers can treat everything uniformly.

        This is the ``db`` fault point: SELECT statements — the
        synopsis queries' read path — can be made to fail by an
        installed :class:`~repro.faults.FaultInjector`.  DDL and the
        programmatic helpers (``insert``, ``select``) are not faulted,
        so the offline populate stage never loses rows or tables to
        injection; what an armed ``db`` profile exercises is the
        online store outage the degradation ladder exists for.

        Statements are cached by SQL text: a hit skips the parser, and
        SELECT hits additionally reuse the prepared plan.  Entries are
        invalidated when the DDL epoch moves.
        """
        if sql.lstrip()[:6].upper() == "SELECT":
            get_injector().check("db")
        cache = self._stmt_cache
        if cache is None:
            return self.execute_statement(parse(sql), params)
        metrics = get_registry()
        entry = cache.lookup(sql, self._ddl_epoch, metrics)
        if entry is None:
            statement = parse(sql)
            plan = None
            if isinstance(statement, SelectStatement):
                plan = SelectPlan(self, statement, self._planner_options)
            entry = _CacheEntry(statement, plan, self._ddl_epoch)
            cache.store(sql, entry, metrics)
        if entry.plan is not None:
            with self._rw.read():
                return entry.plan.execute(params)
        return self.execute_statement(entry.statement, params)

    def execute_statement(
        self, statement: Statement, params: Sequence[Any] = ()
    ) -> ResultSet:
        """Execute an already-parsed statement.

        Row-level statements are serialized against each other by the
        database's read/write lock: SELECTs share the read side,
        mutations take the write side.
        """
        if isinstance(statement, SelectStatement):
            with self._rw.read():
                return execute_select(self, statement, params)
        if isinstance(statement, Insert):
            with self._rw.write():
                return _rowcount(self._execute_insert(statement, params))
        if isinstance(statement, Update):
            with self._rw.write():
                return _rowcount(*self._execute_update(statement, params))
        if isinstance(statement, Delete):
            with self._rw.write():
                return _rowcount(*self._execute_delete(statement, params))
        if isinstance(statement, CreateTable):
            self.create_table(statement.schema)
            return _rowcount(0)
        if isinstance(statement, CreateIndex):
            table = self.table(statement.table)
            table.create_index(
                statement.name,
                tuple(c.lower() for c in statement.columns),
                unique=statement.unique,
            )
            return _rowcount(0)
        if isinstance(statement, DropTable):
            self.drop_table(statement.table)
            return _rowcount(0)
        if isinstance(statement, Explain):
            return self._explain_statement(statement.statement, params)
        raise ProgrammingError(f"unsupported statement {statement!r}")

    def explain(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Report the planner's choices for ``sql`` without mutating.

        SELECTs are executed (they are side-effect free) so the report
        includes runtime decisions — join strategy and build side
        depend on actual cardinalities.  UPDATE/DELETE only run the
        shared row-location planner and report the access path plus
        the candidate row count.  The result has one ``plan`` column,
        one line per row; the same lines are in ``ResultSet.plan``.
        """
        statement = parse(sql)
        if isinstance(statement, Explain):
            statement = statement.statement
        return self._explain_statement(statement, params)

    def _explain_statement(
        self, statement: Statement, params: Sequence[Any]
    ) -> ResultSet:
        if isinstance(statement, SelectStatement):
            with self._rw.read():
                result = execute_select(self, statement, params)
            lines = list(result.plan)
        elif isinstance(statement, (Update, Delete)):
            table = self.table(statement.table)
            where = (
                statement.where.bind(params) if statement.where else None
            )
            lines = []
            with self._rw.read():
                candidates = list(
                    plan_rowids(
                        table, TableRef(statement.table), where, (), lines
                    )
                )
            lines.append(f"candidate rows {len(candidates)}")
        else:
            lines = [f"ddl {type(statement).__name__.lower()}"]
        return ResultSet(
            ["plan"], [(line,) for line in lines], list(lines)
        )

    def _execute_insert(self, statement: Insert, params: Sequence[Any]) -> int:
        table = self.table(statement.table)
        columns = (
            tuple(c.lower() for c in statement.columns)
            or tuple(table.schema.column_names)
        )
        count = 0
        for value_exprs in statement.rows:
            if len(value_exprs) != len(columns):
                raise ProgrammingError(
                    f"INSERT has {len(value_exprs)} values for "
                    f"{len(columns)} columns"
                )
            values = {
                column: expr.bind(params).evaluate({})
                for column, expr in zip(columns, value_exprs)
            }
            self._insert_unlocked(statement.table, values)
            count += 1
        return count

    def insert(self, table_name: str, values: Mapping[str, Any]) -> int:
        """Insert one row (programmatic path); returns the row id."""
        with self._rw.write():
            return self._insert_unlocked(table_name, values)

    def _insert_unlocked(
        self, table_name: str, values: Mapping[str, Any]
    ) -> int:
        table = self.table(table_name)
        self._check_fk_on_insert(table, values)
        return table.insert(values)

    def _locate_rows(
        self,
        table: Table,
        table_name: str,
        where: Optional[Any],
        plan: List[str],
    ) -> List[Tuple[int, tuple, Dict[str, Any]]]:
        """Rows a bound WHERE matches, located through the planner.

        Shared by UPDATE and DELETE: an indexed WHERE narrows the
        candidates through the same access-path planner SELECT uses,
        then the WHERE is re-applied to each candidate.  Candidates
        are materialized in ascending-rowid order *before* any
        mutation, preserving the seed's scan-then-mutate semantics.
        """
        prefix = table.schema.name + "."
        columns = table.schema.column_names
        candidates = sorted(
            plan_rowids(table, TableRef(table_name), where, (), plan)
        )
        get_registry().inc("db.rows_scanned", len(candidates))
        matched = []
        for rowid in candidates:
            row = table.row(rowid)
            context = {prefix + c: v for c, v in zip(columns, row)}
            if where is not None and where.evaluate(context) is not True:
                continue
            matched.append((rowid, row, context))
        return matched

    def _execute_update(
        self, statement: Update, params: Sequence[Any]
    ) -> Tuple[int, List[str]]:
        table = self.table(statement.table)
        where = statement.where.bind(params) if statement.where else None
        plan: List[str] = []
        count = 0
        for rowid, row, context in self._locate_rows(
            table, statement.table, where, plan
        ):
            changes = {
                column: expr.bind(params).evaluate(context)
                for column, expr in statement.assignments
            }
            merged = table.schema.row_dict(row)
            merged.update({c.lower(): v for c, v in changes.items()})
            self._check_fk_on_insert(table, merged)
            table.update(rowid, changes)
            count += 1
        return count, plan

    def _execute_delete(
        self, statement: Delete, params: Sequence[Any]
    ) -> Tuple[int, List[str]]:
        table = self.table(statement.table)
        where = statement.where.bind(params) if statement.where else None
        plan: List[str] = []
        count = 0
        for rowid, row, _context in self._locate_rows(
            table, statement.table, where, plan
        ):
            self._check_fk_on_delete(table, row)
            table.delete(rowid)
            count += 1
        return count, plan

    def select(
        self, statement: SelectStatement, params: Sequence[Any] = ()
    ) -> ResultSet:
        """Run a prebuilt SELECT (skips the SQL parser)."""
        with self._rw.read():
            return execute_select(self, statement, params)

    def query_one(
        self, sql: str, params: Sequence[Any] = ()
    ) -> Optional[Dict[str, Any]]:
        """Execute a SELECT and return the first row as a dict, or None."""
        result = self.execute(sql, params)
        dicts = result.to_dicts()
        return dicts[0] if dicts else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database(tables={self.table_names})"


def _rowcount(count: int, plan: Optional[List[str]] = None) -> ResultSet:
    return ResultSet(["rowcount"], [(count,)], plan or [])
