"""Secondary indexes: hash (equality) and sorted (range) access paths.

Indexes map a key tuple — the values of the indexed columns — to the set
of row ids holding that key.  The table keeps them in sync on every
insert/update/delete; the query planner consults them through
:meth:`HashIndex.lookup` and :meth:`SortedIndex.range`.

NULL semantics follow SQL: rows with a NULL in any indexed column are
stored (so deletes stay symmetric) but unique enforcement skips them,
and range scans never return them.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import IntegrityError

__all__ = ["Index", "HashIndex", "SortedIndex"]

Key = Tuple[Any, ...]


class Index:
    """Base class: key extraction bookkeeping shared by both kinds.

    Args:
        name: Index name (unique within its table).
        columns: Indexed column names, in key order.
        unique: Enforce uniqueness of non-NULL keys.
    """

    def __init__(self, name: str, columns: Tuple[str, ...], unique: bool) -> None:
        if not columns:
            raise ValueError("index needs at least one column")
        self.name = name
        self.columns = columns
        self.unique = unique
        self._entries: Dict[Key, Set[int]] = {}

    # -- maintenance ---------------------------------------------------

    def insert(self, key: Key, rowid: int) -> None:
        """Register ``rowid`` under ``key``; raises on unique violation."""
        if self.unique and None not in key:
            existing = self._entries.get(key)
            if existing:
                raise IntegrityError(
                    f"unique index {self.name!r} violated by key {key!r}"
                )
        bucket = self._entries.get(key)
        if bucket is None:
            bucket = set()
            self._entries[key] = bucket
            self._key_added(key)
        bucket.add(rowid)

    def delete(self, key: Key, rowid: int) -> None:
        """Remove ``rowid`` from ``key``'s bucket."""
        bucket = self._entries.get(key)
        if bucket is None or rowid not in bucket:
            raise KeyError(f"rowid {rowid} not under key {key!r}")
        bucket.discard(rowid)
        if not bucket:
            del self._entries[key]
            self._key_removed(key)

    def would_violate(self, key: Key, ignore_rowid: Optional[int] = None) -> bool:
        """True if inserting ``key`` would break a unique constraint."""
        if not self.unique or None in key:
            return False
        bucket = self._entries.get(key)
        if not bucket:
            return False
        return bucket != ({ignore_rowid} if ignore_rowid is not None else set())

    # -- access path ----------------------------------------------------

    def lookup(self, key: Key) -> Set[int]:
        """Row ids whose indexed columns equal ``key`` exactly."""
        return set(self._entries.get(key, ()))

    def lookup_sorted(self, key: Key) -> List[int]:
        """Like :meth:`lookup` but ascending — the deterministic probe
        order the executor's index joins and point lookups need."""
        return sorted(self._entries.get(key, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key values (used for selectivity estimates)."""
        return len(self._entries)

    # -- subclass hooks ---------------------------------------------------

    def _key_added(self, key: Key) -> None:
        """Called when a key appears for the first time."""

    def _key_removed(self, key: Key) -> None:
        """Called when a key's last row is removed."""


class HashIndex(Index):
    """Pure hash index: O(1) equality lookup, no ordered access."""

    def __init__(self, name: str, columns: Tuple[str, ...], unique: bool = False):
        super().__init__(name, columns, unique)


class SortedIndex(Index):
    """Index that additionally keeps keys in sorted order for range scans.

    Keys containing NULL are excluded from the sorted sequence (SQL range
    predicates are never true for NULL) but still participate in equality
    lookup and unique checks.
    """

    def __init__(self, name: str, columns: Tuple[str, ...], unique: bool = False):
        super().__init__(name, columns, unique)
        self._sorted_keys: List[Key] = []

    def _key_added(self, key: Key) -> None:
        if None in key:
            return
        bisect.insort(self._sorted_keys, key)

    def _key_removed(self, key: Key) -> None:
        if None in key:
            return
        position = bisect.bisect_left(self._sorted_keys, key)
        if (
            position < len(self._sorted_keys)
            and self._sorted_keys[position] == key
        ):
            del self._sorted_keys[position]

    def range(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield row ids with low <= key <= high, in key order.

        Either bound may be None for an open interval; inclusivity is
        controlled per bound so the planner can serve <, <=, >, >=.
        """
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._sorted_keys, low)
        else:
            start = bisect.bisect_right(self._sorted_keys, low)
        if high is None:
            stop = len(self._sorted_keys)
        elif include_high:
            stop = bisect.bisect_right(self._sorted_keys, high)
        else:
            stop = bisect.bisect_left(self._sorted_keys, high)
        for position in range(start, stop):
            # Sort row ids for deterministic iteration order.
            yield from sorted(self._entries[self._sorted_keys[position]])

    def ordered_rowids(self, descending: bool = False) -> Iterator[int]:
        """All row ids in key order (NULL-keyed rows excluded)."""
        keys = reversed(self._sorted_keys) if descending else self._sorted_keys
        for key in keys:
            yield from sorted(self._entries[key])
