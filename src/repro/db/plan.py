"""Join-aware SELECT planner and compiled executor.

This module is the optimized execution engine behind ``Database.execute``
and ``Database.select``.  A :class:`SelectPlan` is built **once** per
statement (and cached by the database's statement cache, keyed on SQL
text and invalidated by DDL epoch) and executed many times with
different parameters.  All access-path and strategy decisions that
depend only on *shape* — which index serves the WHERE, which conjuncts
push below which join, which expressions compile to closures — happen
at plan time; decisions that depend on *cardinality* (index nested-loop
vs hash join, hash-join build side) are made per execution from the
actual row counts, and probe values (literals or ``?`` parameters) are
read at execution time so one plan serves every binding.

The contract, inherited from the seed executor and enforced by the
option-lattice equivalence suite in ``tests/db/test_plan_equivalence.py``:
**the planner can never change results, only speed.**  Every
:class:`PlannerOptions` configuration — including ``naive()``, the
all-off baseline — must return byte-identical rows, columns, and
ordering to :func:`repro.db.query.naive_execute_select`, the seed
row-at-a-time reference interpreter kept for exactly this purpose.

Optimizations, each independently toggleable:

* ``predicate_pushdown`` — WHERE conjuncts that reference only the base
  table filter rows before any join; conjuncts that reference only an
  INNER join's right side filter that input before the join; every
  other conjunct runs at the earliest pipeline point where its sources
  are all joined.  Right-side conjuncts are **never** pushed below a
  LEFT join (they would delete null-extension candidates).
* ``index_join`` — when the right side of an equi-join has an index on
  the join column and the left input is small relative to the right
  table, probe the index per left row instead of scanning and hashing
  the whole right table.
* ``join_side_selection`` — hash joins build on the smaller input.  A
  build-on-left join replays matches per left position so output order
  stays left-major, identical to the build-on-right order.
* ``compiled_expressions`` — every expression site is lowered once per
  plan via :func:`repro.db.expr.compile_expression`.
* ``streaming_aggregation`` — GROUP BY folds incremental aggregate
  states (count/sum/avg/min/max, DISTINCT via first-occurrence sets) in
  a single pass instead of materializing per-group row lists.  Fold
  order is row order, so float sums stay bit-identical to the naive
  ``sum()`` over the materialized group.
* ``topk_order`` — ORDER BY + LIMIT keeps a heap of the top
  ``offset + limit`` rows instead of sorting everything; LIMIT without
  ORDER BY stops projecting early; DISTINCT + LIMIT stops after enough
  distinct rows.  All three produce a prefix of the naive output
  sequence, so the shared slicing tail yields identical rows.

Known (documented) divergence from the reference: pushdown and
streaming aggregation may surface *errors* earlier — an unknown-column
conjunct evaluates at the base scan instead of after joins, and an
ill-typed aggregate raises during the row pass instead of at group
fold.  Result rows are never affected.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.db.expr import (
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Parameter,
    _as_bool,
    compile_expression,
)
from repro.db.index import SortedIndex
from repro.db.query import (
    AggregateCall,
    ResultSet,
    SelectItem,
    SelectStatement,
    TableRef,
    _column_of,
    _conjuncts,
    _contains_aggregate,
    _equi_join_keys,
    _execute_grouped,
    _expand_items,
    _null_row,
    _NullsLast,
    _output_name,
    grouped_key_position,
)
from repro.db.table import Table
from repro.obs import get_registry

__all__ = ["PlannerOptions", "SelectPlan", "plan_rowids"]

# An index nested-loop join pays one index probe + row fetch per left
# row; scanning the right side pays one fetch per right row.  Probe the
# index only when the left input is at most this fraction of the right
# table, otherwise build a hash table from the scan.
_INDEX_JOIN_MAX_LEFT_FRACTION = 4


@dataclass(frozen=True)
class PlannerOptions:
    """Feature toggles for the SELECT engine, one per optimization."""

    predicate_pushdown: bool = True
    index_join: bool = True
    join_side_selection: bool = True
    compiled_expressions: bool = True
    streaming_aggregation: bool = True
    topk_order: bool = True

    @classmethod
    def naive(cls) -> "PlannerOptions":
        """Every optimization off: the seed executor's cost profile."""
        return cls(False, False, False, False, False, False)

    @classmethod
    def from_env(cls) -> "PlannerOptions":
        """``REPRO_DB_PLANNER=naive`` turns every optimization off."""
        mode = os.environ.get("REPRO_DB_PLANNER", "").strip().lower()
        if mode in ("naive", "off", "0"):
            return cls.naive()
        return cls()

    def describe(self) -> str:
        off = [
            name
            for name in (
                "predicate_pushdown",
                "index_join",
                "join_side_selection",
                "compiled_expressions",
                "streaming_aggregation",
                "topk_order",
            )
            if not getattr(self, name)
        ]
        return "full" if not off else "off: " + ", ".join(off)


# ---------------------------------------------------------------------------
# Expression sites
# ---------------------------------------------------------------------------


class _Site:
    """One expression at one evaluation site of the pipeline.

    Compiled once at plan time when the option is on; otherwise the
    expression is bound per execution and interpreted, matching the
    seed executor's cost profile for the ablation baseline.
    """

    __slots__ = ("expr", "_compiled")

    def __init__(self, expr: Expression, compiled: bool) -> None:
        self.expr = expr
        self._compiled = compile_expression(expr) if compiled else None

    def evaluator(self, params: Sequence[Any]) -> Callable[[Any], Any]:
        compiled = self._compiled
        if compiled is not None:
            return lambda row: compiled(row, params)
        return self.expr.bind(params).evaluate

    def predicate(
        self, params: Sequence[Any], coerce: bool
    ) -> Callable[[Any], bool]:
        """Row filter.  ``coerce`` replicates how the seed treats this
        conjunct: a lone WHERE is checked ``is True`` on its raw value,
        while conjuncts under AND pass through three-valued
        ``_as_bool`` first (so a truthy non-bool keeps the row)."""
        evaluate = self.evaluator(params)
        if coerce:
            return lambda row: _as_bool(evaluate(row)) is True
        return lambda row: evaluate(row) is True


# ---------------------------------------------------------------------------
# Base-table access (shared with UPDATE/DELETE row location)
# ---------------------------------------------------------------------------


def _probe_value(expression: Expression, params: Sequence[Any]) -> Any:
    if isinstance(expression, Parameter):
        return expression.bind(params).value  # bounds-checked
    assert isinstance(expression, Literal)
    return expression.value


class _BaseAccess:
    """Access path for one table's rows, chosen by shape at plan time.

    Preference order matches the seed planner: single-column equality
    index, then sorted-index range, then full scan.  Probe values may
    be ``?`` parameters — they are read per execution, and a NULL probe
    short-circuits to an empty scan (``col = NULL`` is never true, and
    the conjunct that produced the probe is re-applied anyway)."""

    __slots__ = ("table", "kind", "index", "column", "op", "value_expr")

    def __init__(
        self, table: Table, ref: TableRef, conjuncts: Sequence[Expression]
    ) -> None:
        self.table = table
        self.kind = "scan"
        self.index = None
        self.column: Optional[str] = None
        self.op: Optional[str] = None
        self.value_expr: Optional[Expression] = None

        equality: List[Tuple[str, Expression]] = []
        ranges: List[Tuple[str, str, Expression]] = []
        for conjunct in conjuncts:
            if not isinstance(conjunct, Comparison):
                continue
            left, right = conjunct.left, conjunct.right
            op = conjunct.op
            if isinstance(left, (Literal, Parameter)) and isinstance(
                right, ColumnRef
            ):
                left, right = right, left
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            if not isinstance(right, (Literal, Parameter)):
                continue
            if isinstance(right, Literal) and right.value is None:
                continue
            column = _column_of(left, ref, table)
            if column is None:
                continue
            if op == "=":
                equality.append((column, right))
            elif op in ("<", "<=", ">", ">="):
                ranges.append((column, op, right))

        for column, value_expr in equality:
            index = table.index_on((column,))
            if index is not None:
                self.kind = "eq"
                self.index = index
                self.column = column
                self.value_expr = value_expr
                return
        for column, op, value_expr in ranges:
            index = table.index_on((column,))
            if isinstance(index, SortedIndex):
                self.kind = "range"
                self.index = index
                self.column = column
                self.op = op
                self.value_expr = value_expr
                return

    def rowids(
        self, params: Sequence[Any], plan: List[str]
    ) -> Iterable[int]:
        """Candidate row ids in ascending-rowid order (scan/eq) or key
        order (range), appending the chosen path to ``plan``."""
        if self.kind == "eq":
            value = _probe_value(self.value_expr, params)
            if value is None:
                plan.append(
                    f"empty scan {self.table.schema.name} "
                    f"({self.column} = NULL)"
                )
                return ()
            plan.append(
                f"index lookup {self.index.name}({self.column}={value!r})"
            )
            return self.index.lookup_sorted((value,))
        if self.kind == "range":
            value = _probe_value(self.value_expr, params)
            if value is None:
                plan.append(
                    f"empty scan {self.table.schema.name} "
                    f"({self.column} {self.op} NULL)"
                )
                return ()
            plan.append(
                f"index range {self.index.name}"
                f"({self.column} {self.op} {value!r})"
            )
            if self.op in ("<", "<="):
                return self.index.range(
                    None, (value,), include_high=self.op == "<="
                )
            return self.index.range(
                (value,), None, include_low=self.op == ">="
            )
        plan.append(f"full scan {self.table.schema.name}")
        return (rowid for rowid, _ in self.table.scan())


def plan_rowids(
    table: Table,
    ref: TableRef,
    where: Optional[Expression],
    params: Sequence[Any],
    plan: List[str],
) -> Iterable[int]:
    """Candidate row ids for ``where`` over ``table``.

    This is the shared row-location path: SELECT uses it through
    :class:`SelectPlan`, and UPDATE/DELETE use it directly so an
    indexed WHERE no longer forces a full scan.  Candidates are a
    superset of the matching rows — callers re-apply the WHERE."""
    return _BaseAccess(table, ref, _conjuncts(where)).rowids(params, plan)


# ---------------------------------------------------------------------------
# Aggregate machinery (streaming mode)
# ---------------------------------------------------------------------------

_UNSET = object()


class _AggregateState:
    """Incremental state for one aggregate call within one group.

    Folds values in row order with the same initial values and
    comparison directions as the naive ``compute()`` (``sum()`` starts
    at 0, ``min``/``max`` keep the first of ties), so results —
    including float sums — are bit-identical."""

    __slots__ = ("func", "count_star", "count", "total", "best", "seen")

    def __init__(self, call: AggregateCall) -> None:
        self.func = call.func.lower()
        self.count_star = call.arg is None
        self.count = 0
        self.total: Any = 0
        self.best: Any = _UNSET
        self.seen: Optional[Dict[Any, None]] = {} if call.distinct else None

    def add(self, value: Any) -> None:
        if self.count_star:
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen[value] = None
        self.count += 1
        func = self.func
        if func in ("sum", "avg"):
            self.total = self.total + value
        elif func == "min":
            if self.best is _UNSET or value < self.best:
                self.best = value
        elif func == "max":
            if self.best is _UNSET or value > self.best:
                self.best = value

    def result(self) -> Any:
        if self.count_star or self.func == "count":
            return self.count
        if self.count == 0:
            return None
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count
        return self.best


def _aggregate_layout(
    expressions: Sequence[Optional[Expression]],
) -> Tuple[List[AggregateCall], List[List[int]]]:
    """Collect AggregateCall nodes from ``expressions``.

    Returns the deduplicated nodes plus, per input expression, the
    dedup indexes of its aggregate occurrences in traversal order —
    the same ``vars()`` order :func:`_fold_values` walks, so folding
    consumes occurrences positionally."""
    deduped: List[AggregateCall] = []
    per_expr: List[List[int]] = []

    def walk(expression: Expression, occurrences: List[int]) -> None:
        if isinstance(expression, AggregateCall):
            for position, existing in enumerate(deduped):
                if existing == expression:
                    occurrences.append(position)
                    return
            deduped.append(expression)
            occurrences.append(len(deduped) - 1)
            return
        for attr in vars(expression).values():
            if isinstance(attr, Expression):
                walk(attr, occurrences)
            elif isinstance(attr, tuple):
                for element in attr:
                    if isinstance(element, Expression):
                        walk(element, occurrences)

    for expression in expressions:
        occurrences: List[int] = []
        if expression is not None:
            walk(expression, occurrences)
        per_expr.append(occurrences)
    return deduped, per_expr


def _fold_values(
    expression: Expression,
    occurrences: Sequence[int],
    values: Sequence[Any],
) -> Expression:
    """Replace each AggregateCall occurrence with its computed Literal,
    consuming ``occurrences`` positionally in traversal order."""
    cursor = [0]

    def fold(node: Expression) -> Expression:
        if isinstance(node, AggregateCall):
            value = values[occurrences[cursor[0]]]
            cursor[0] += 1
            return Literal(value)
        rebuilt: Dict[str, Any] = {}
        changed = False
        for name, attr in vars(node).items():
            if isinstance(attr, Expression):
                folded = fold(attr)
                changed = changed or folded is not attr
                rebuilt[name] = folded
            elif isinstance(attr, tuple) and any(
                isinstance(element, Expression) for element in attr
            ):
                folded_tuple = tuple(
                    fold(element)
                    if isinstance(element, Expression)
                    else element
                    for element in attr
                )
                changed = changed or folded_tuple != attr
                rebuilt[name] = folded_tuple
            else:
                rebuilt[name] = attr
        if not changed:
            return node
        return type(node)(**rebuilt)

    return fold(expression)


# ---------------------------------------------------------------------------
# Ordering
# ---------------------------------------------------------------------------


class _CompositeKey:
    """Single lexicographic sort key equivalent to the seed's sequence
    of stable passes: per key, ascending puts NULL last, descending
    reverses the whole pass (so NULL comes first)."""

    __slots__ = ("parts",)

    def __init__(self, parts: List[Tuple[Any, bool]]) -> None:
        self.parts = parts

    def __lt__(self, other: "_CompositeKey") -> bool:
        for (a, descending), (b, _) in zip(self.parts, other.parts):
            if a is None and b is None:
                continue
            if a is None:
                return descending
            if b is None:
                return not descending
            if a == b:
                continue
            less = a < b
            return (not less) if descending else less
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _CompositeKey):
            return NotImplemented
        return all(
            (a is None and b is None) or a == b
            for (a, _), (b, _) in zip(self.parts, other.parts)
        )


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


class _JoinStep:
    """Everything decided at plan time for one JOIN clause."""

    __slots__ = (
        "join",
        "table",
        "left_key",
        "right_key",
        "right_column",
        "right_index",
        "on_site",
        "right_filters",
        "post_filters",
        "null_template",
        "context_keys",
    )

    def __init__(self, join: Any, table: Table, seen_names: List[str],
                 compiled: bool) -> None:
        self.join = join
        self.table = table
        self.on_site = _Site(join.on, compiled)
        # Prefixed context keys are static; building them per row would
        # put a string concat per column on the join hot path.
        prefix = join.ref.name + "."
        self.context_keys = tuple(
            prefix + c for c in table.schema.column_names
        )
        keys = _equi_join_keys(join.on, seen_names, join.ref.name)
        if keys is not None:
            left_ref, right_ref = keys
            self.left_key = left_ref.key
            self.right_key = right_ref.key
            self.right_column = right_ref.name.lower()
            self.right_index = table.index_on((self.right_column,))
        else:
            self.left_key = self.right_key = self.right_column = None
            self.right_index = None
        self.right_filters: List[_Site] = []
        self.post_filters: List[_Site] = []
        self.null_template = _null_row(table, join.ref)


class SelectPlan:
    """A prepared SELECT: shape decisions made once, executed many times."""

    def __init__(
        self,
        catalog: Any,
        statement: SelectStatement,
        options: PlannerOptions,
    ) -> None:
        self.statement = statement
        self.options = options
        compiled = options.compiled_expressions

        self.base_ref = statement.from_ref
        self.base_table = catalog.table(statement.from_ref.table)
        self.base_prefix = self.base_ref.name + "."
        self.base_context_keys = tuple(
            self.base_prefix + c
            for c in self.base_table.schema.column_names
        )

        seen_names = [self.base_ref.name]
        self.join_steps: List[_JoinStep] = []
        for join in statement.joins:
            table = catalog.table(join.ref.table)
            self.join_steps.append(
                _JoinStep(join, table, seen_names, compiled)
            )
            seen_names.append(join.ref.name)

        # Which sources own which unqualified column names (for
        # pushdown classification; ambiguous names stay residual).
        owners: Dict[str, List[str]] = {}
        tables = [self.base_table] + [s.table for s in self.join_steps]
        for name, table in zip(seen_names, tables):
            for column in table.schema.column_names:
                owners.setdefault(column, []).append(name)
        source_names = set(seen_names)
        position_of = {name: i for i, name in enumerate(seen_names)}

        # Index selection considers every conjunct (seed semantics);
        # the chosen conjunct is still re-applied as a filter, so the
        # access path can only narrow candidates, never change results.
        conjuncts = _conjuncts(statement.where)
        self.base_access = _BaseAccess(
            self.base_table, self.base_ref, conjuncts
        )

        # Classify conjuncts for pushdown.  ``coerce`` records whether
        # the seed would have AND-combined this conjunct (see
        # _Site.predicate); a lone WHERE keeps raw ``is True``.
        self.coerce_conjuncts = len(conjuncts) > 1
        self.base_filters: List[_Site] = []
        self.final_filters: List[_Site] = []
        self.where_site: Optional[_Site] = None
        pushed_down = 0
        if statement.where is not None and options.predicate_pushdown:
            for conjunct in conjuncts:
                sources = self._conjunct_sources(
                    conjunct, owners, source_names
                )
                site = _Site(conjunct, compiled)
                if sources is None:
                    self.final_filters.append(site)
                    continue
                if not sources or sources == {self.base_ref.name}:
                    self.base_filters.append(site)
                    pushed_down += 1
                    continue
                last = max(position_of[name] for name in sources)
                step = self.join_steps[last - 1]
                if (
                    sources == {step.join.ref.name}
                    and step.join.kind == "inner"
                ):
                    step.right_filters.append(site)
                    pushed_down += 1
                else:
                    step.post_filters.append(site)
        elif statement.where is not None:
            self.where_site = _Site(statement.where, compiled)

        # Projection: stars expand at plan time against the catalog.
        self.items = _expand_items(statement, catalog, seen_names)
        self.column_names = [
            _output_name(item, position)
            for position, item in enumerate(self.items)
        ]
        self.has_aggregates = bool(
            any(
                _contains_aggregate(item.expr)
                for item in self.items
                if item.expr
            )
            or statement.group_by
            or statement.having is not None
        )
        self.item_sites = [
            _Site(item.expr, compiled)
            for item in self.items
            if item.expr is not None
        ]

        if self.has_aggregates and options.streaming_aggregation:
            self.group_sites = [
                _Site(expr, compiled) for expr in statement.group_by
            ]
            layout_exprs: List[Optional[Expression]] = [
                item.expr for item in self.items
            ]
            layout_exprs.append(statement.having)
            self.agg_nodes, per_expr = _aggregate_layout(layout_exprs)
            self.item_occurrences = per_expr[:-1]
            self.having_occurrences = per_expr[-1]
            self.agg_arg_sites: List[Optional[_Site]] = [
                _Site(node.arg, compiled) if node.arg is not None else None
                for node in self.agg_nodes
            ]

        self.order_sites = [
            (_Site(order.expr, compiled), order.descending)
            for order in statement.order_by
        ]

        # Static notes, appended after the runtime access-path lines.
        notes: List[str] = []
        if options.predicate_pushdown and pushed_down:
            notes.append(f"pushdown {pushed_down} predicate(s)")
        if compiled:
            sites = (
                len(self.base_filters)
                + len(self.final_filters)
                + len(self.item_sites)
                + len(self.order_sites)
            )
            notes.append(f"compiled expressions ({sites} site(s))")
        if self.has_aggregates and options.streaming_aggregation:
            notes.append(
                f"streaming aggregation "
                f"({len(statement.group_by)} key(s), "
                f"{len(self.agg_nodes)} aggregate(s))"
            )
        if options.topk_order and statement.limit is not None:
            bound = statement.limit + statement.offset
            if statement.order_by and not statement.distinct:
                notes.append(f"top-k order by (heap, k={bound})")
            elif not statement.order_by:
                notes.append(f"limit short-circuit (k={bound})")
        self.static_notes = notes

    @staticmethod
    def _conjunct_sources(
        conjunct: Expression,
        owners: Dict[str, List[str]],
        source_names: Set[str],
    ) -> Optional[Set[str]]:
        """The FROM sources a conjunct reads, or None if unclassifiable
        (unknown alias, unknown or ambiguous unqualified column)."""
        sources: Set[str] = set()
        for key in conjunct.references():
            if "." in key:
                alias = key.split(".", 1)[0]
                if alias not in source_names:
                    return None
                sources.add(alias)
            else:
                owning = owners.get(key)
                if owning is None or len(owning) != 1:
                    return None
                sources.add(owning[0])
        return sources

    # -- execution -----------------------------------------------------

    def execute(self, params: Sequence[Any] = ()) -> ResultSet:
        statement = self.statement
        options = self.options
        metrics = get_registry()
        metrics.inc("db.selects")
        plan: List[str] = []
        coerce = self.coerce_conjuncts

        # Base scan with pushed-down filters.
        rowids = self.base_access.rowids(params, plan)
        keys = self.base_context_keys
        fetch = self.base_table.row
        base_predicates = [
            site.predicate(params, coerce) for site in self.base_filters
        ]
        rows: List[Dict[str, Any]] = []
        rows_scanned = 0
        for rowid in rowids:
            row = fetch(rowid)
            rows_scanned += 1
            context = dict(zip(keys, row))
            for predicate in base_predicates:
                if not predicate(context):
                    break
            else:
                rows.append(context)

        # Joins.
        build_rows = 0
        probe_rows = 0
        for step in self.join_steps:
            rows, scanned, built, probed = self._execute_join(
                step, rows, params, plan, coerce
            )
            rows_scanned += scanned
            build_rows += built
            probe_rows += probed
            post_predicates = [
                site.predicate(params, coerce)
                for site in step.post_filters
            ]
            for predicate in post_predicates:
                rows = [row for row in rows if predicate(row)]

        # Residual WHERE (whole clause when pushdown is off).
        if self.where_site is not None:
            keep = self.where_site.predicate(params, coerce=False)
            rows = [row for row in rows if keep(row)]
        elif self.final_filters:
            for site in self.final_filters:
                predicate = site.predicate(params, coerce)
                rows = [row for row in rows if predicate(row)]

        # Projection / aggregation / ordering.
        if self.has_aggregates:
            output_rows = self._execute_aggregated(rows, params)
            distinct_done = False
        else:
            output_rows, distinct_done = self._execute_projected(
                rows, params
            )

        # DISTINCT and LIMIT/OFFSET.  Optimized paths above produce a
        # prefix of the naive output sequence, so this shared tail
        # finishes identically.
        if statement.distinct and not distinct_done:
            output_rows = list(dict.fromkeys(output_rows))
        if statement.offset:
            output_rows = output_rows[statement.offset:]
        if statement.limit is not None:
            output_rows = output_rows[: statement.limit]

        plan.extend(self.static_notes)
        metrics.inc("db.rows_scanned", rows_scanned)
        if build_rows:
            metrics.inc("db.join.build_rows", build_rows)
        if probe_rows:
            metrics.inc("db.join.probe_rows", probe_rows)
        metrics.inc("db.rows_returned", len(output_rows))
        return ResultSet(list(self.column_names), output_rows, plan)

    # -- joins ---------------------------------------------------------

    def _execute_join(
        self,
        step: _JoinStep,
        rows: List[Dict[str, Any]],
        params: Sequence[Any],
        plan: List[str],
        coerce: bool,
    ) -> Tuple[List[Dict[str, Any]], int, int, int]:
        """Run one join step; returns (rows, scanned, built, probed)."""
        options = self.options
        name = step.join.ref.name
        right_table = step.table
        right_keys = step.context_keys
        right_predicates = [
            site.predicate(params, coerce) for site in step.right_filters
        ]
        joined: List[Dict[str, Any]] = []
        is_left = step.join.kind == "left"

        if (
            step.left_key is not None
            and options.index_join
            and step.right_index is not None
            and len(rows) * _INDEX_JOIN_MAX_LEFT_FRACTION
            <= len(right_table)
            # Selectivity guard: with ~len/distinct_keys matches per
            # probe, more probes than half the distinct keys would
            # fetch most of the table row-by-row — a bulk scan into a
            # hash join is cheaper there.
            and len(rows) * 2 <= step.right_index.distinct_keys
        ):
            # Index nested-loop: probe per left row, fetch right rows
            # lazily (cached per rowid), sorted probes match the hash
            # join's scan-order emission exactly.
            plan.append(
                f"index join {name} via "
                f"{step.right_index.name}({step.right_column})"
            )
            index = step.right_index
            left_key = step.left_key
            fetch = right_table.row
            fetched: Dict[int, Optional[Dict[str, Any]]] = {}
            for left_row in rows:
                key = left_row.get(left_key)
                matched = False
                if key is not None:
                    for rowid in index.lookup_sorted((key,)):
                        context = fetched.get(rowid, _UNSET)
                        if context is _UNSET:
                            context = dict(zip(right_keys, fetch(rowid)))
                            for predicate in right_predicates:
                                if not predicate(context):
                                    context = None
                                    break
                            fetched[rowid] = context
                        if context is None:
                            continue
                        merged = dict(left_row)
                        merged.update(context)
                        joined.append(merged)
                        matched = True
                if not matched and is_left:
                    merged = dict(left_row)
                    merged.update(step.null_template)
                    joined.append(merged)
            return joined, len(fetched), len(fetched), len(rows)

        # Materialize the right side (with pushed-down filters).
        right_rows: List[Dict[str, Any]] = []
        scanned = 0
        for _rowid, right_row in right_table.scan():
            scanned += 1
            context = dict(zip(right_keys, right_row))
            for predicate in right_predicates:
                if not predicate(context):
                    break
            else:
                right_rows.append(context)

        if step.left_key is None:
            plan.append(f"nested loop join {name}")
            on_matches = step.on_site.evaluator(params)
            for left_row in rows:
                matched = False
                for right_row in right_rows:
                    merged = dict(left_row)
                    merged.update(right_row)
                    if on_matches(merged) is True:
                        joined.append(merged)
                        matched = True
                if not matched and is_left:
                    merged = dict(left_row)
                    merged.update(step.null_template)
                    joined.append(merged)
            return joined, scanned, len(right_rows), len(rows)

        left_key = step.left_key
        right_key = step.right_key
        if options.join_side_selection and len(rows) < len(right_rows):
            # Build on the smaller (left) input; replaying matches per
            # left position keeps output order left-major, identical
            # to probing with left rows.
            plan.append(
                f"hash join {name} on {right_key} "
                f"(build=left, {len(rows)} rows)"
            )
            positions: Dict[Any, List[int]] = {}
            for position, left_row in enumerate(rows):
                key = left_row.get(left_key)
                if key is not None:
                    positions.setdefault(key, []).append(position)
            matches: Dict[int, List[Dict[str, Any]]] = {}
            for right_row in right_rows:
                key = right_row[right_key]
                if key is None:
                    continue
                for position in positions.get(key, ()):
                    matches.setdefault(position, []).append(right_row)
            for position, left_row in enumerate(rows):
                matched = matches.get(position)
                if matched:
                    for right_row in matched:
                        merged = dict(left_row)
                        merged.update(right_row)
                        joined.append(merged)
                elif is_left:
                    merged = dict(left_row)
                    merged.update(step.null_template)
                    joined.append(merged)
            return joined, scanned, len(rows), len(right_rows)

        plan.append(f"hash join {name} on {right_key}")
        buckets: Dict[Any, List[Dict[str, Any]]] = {}
        for right_row in right_rows:
            key = right_row[right_key]
            if key is not None:
                buckets.setdefault(key, []).append(right_row)
        for left_row in rows:
            matched_rows = buckets.get(left_row.get(left_key), [])
            for right_row in matched_rows:
                merged = dict(left_row)
                merged.update(right_row)
                joined.append(merged)
            if not matched_rows and is_left:
                merged = dict(left_row)
                merged.update(step.null_template)
                joined.append(merged)
        return joined, scanned, len(right_rows), len(rows)

    # -- projection (no aggregates) -------------------------------------

    def _execute_projected(
        self, rows: List[Dict[str, Any]], params: Sequence[Any]
    ) -> Tuple[List[Tuple[Any, ...]], bool]:
        """Project (and order) non-aggregated rows.

        Returns ``(output_rows, distinct_done)`` — the flag tells the
        shared tail that DISTINCT was already applied by the
        short-circuiting path."""
        statement = self.statement
        options = self.options
        evaluators = [site.evaluator(params) for site in self.item_sites]

        def project(row: Dict[str, Any]) -> Tuple[Any, ...]:
            return tuple(evaluate(row) for evaluate in evaluators)

        topk = options.topk_order and statement.limit is not None
        bound = (
            statement.limit + statement.offset
            if statement.limit is not None
            else None
        )

        if statement.order_by:
            order_evaluators = [
                (site.evaluator(params), descending)
                for site, descending in self.order_sites
            ]
            if topk and not statement.distinct:
                # Heap keeps the top offset+limit source rows; sorting
                # and projecting only those yields the same prefix the
                # full sort would.
                def sort_key(row: Dict[str, Any]) -> _CompositeKey:
                    return _CompositeKey(
                        [(ev(row), desc) for ev, desc in order_evaluators]
                    )

                top = heapq.nsmallest(bound, rows, key=sort_key)
                return [project(row) for row in top], False
            paired = [(row, project(row)) for row in rows]
            for evaluate, descending in reversed(order_evaluators):
                paired.sort(
                    key=lambda pair: _NullsLast(evaluate(pair[0])),
                    reverse=descending,
                )
            return [out for _, out in paired], False

        if topk and statement.distinct:
            # Stop once offset+limit distinct rows are collected; a
            # prefix of dict.fromkeys() over the full projection.
            seen: Set[Tuple[Any, ...]] = set()
            collected: List[Tuple[Any, ...]] = []
            for row in rows:
                out = project(row)
                if out in seen:
                    continue
                seen.add(out)
                collected.append(out)
                if len(collected) >= bound:
                    break
            return collected, True
        if topk:
            return [project(row) for row in rows[:bound]], False
        return [project(row) for row in rows], False

    # -- aggregation -----------------------------------------------------

    def _execute_aggregated(
        self, rows: List[Dict[str, Any]], params: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        statement = self.statement
        options = self.options

        if options.streaming_aggregation:
            output_rows = self._streaming_groups(rows, params)
        else:
            bound_statement = statement.bind(params)
            bound_items = [
                SelectItem(
                    item.expr.bind(params) if item.expr else None,
                    item.alias,
                    item.star,
                    item.star_table,
                )
                for item in self.items
            ]
            output_rows = _execute_grouped(
                bound_statement, bound_items, rows
            )

        if not statement.order_by:
            return output_rows

        # Grouped ORDER BY references output columns; resolve positions
        # against bound expressions exactly as the seed does.
        bound_items = [
            SelectItem(
                item.expr.bind(params) if item.expr else None,
                item.alias,
                item.star,
                item.star_table,
            )
            for item in self.items
        ]
        keys = [
            (
                grouped_key_position(
                    order.expr.bind(params), bound_items, self.column_names
                ),
                order.descending,
            )
            for order in statement.order_by
        ]
        if (
            options.topk_order
            and statement.limit is not None
            and not statement.distinct
        ):
            bound = statement.limit + statement.offset

            def sort_key(row: Tuple[Any, ...]) -> _CompositeKey:
                return _CompositeKey(
                    [(row[position], desc) for position, desc in keys]
                )

            return heapq.nsmallest(bound, output_rows, key=sort_key)
        ordered = list(output_rows)
        for position, descending in reversed(keys):
            ordered.sort(
                key=lambda row: _NullsLast(row[position]),
                reverse=descending,
            )
        return ordered

    def _streaming_groups(
        self, rows: List[Dict[str, Any]], params: Sequence[Any]
    ) -> List[Tuple[Any, ...]]:
        statement = self.statement
        key_evaluators = [
            site.evaluator(params) for site in self.group_sites
        ]
        arg_evaluators = [
            site.evaluator(params) if site is not None else None
            for site in self.agg_arg_sites
        ]
        agg_nodes = self.agg_nodes

        # One pass: group key -> (representative row, aggregate states).
        # Dict insertion order preserves first-appearance group order,
        # matching the naive setdefault-driven grouping.
        groups: Dict[
            Tuple[Any, ...],
            Tuple[Dict[str, Any], List[_AggregateState]],
        ] = {}
        for row in rows:
            key = tuple(evaluate(row) for evaluate in key_evaluators)
            entry = groups.get(key)
            if entry is None:
                entry = (
                    row,
                    [_AggregateState(node) for node in agg_nodes],
                )
                groups[key] = entry
            for state, evaluate in zip(entry[1], arg_evaluators):
                state.add(evaluate(row) if evaluate is not None else None)
        if not statement.group_by and not groups:
            # Global aggregate over an empty input still yields one row.
            groups[()] = (
                {},
                [_AggregateState(node) for node in agg_nodes],
            )

        item_evaluators = [
            site.evaluator(params) for site in self.item_sites
        ]
        having = statement.having
        output: List[Tuple[Any, ...]] = []
        for representative, states in groups.values():
            values = [state.result() for state in states]
            if having is not None:
                folded = _fold_values(
                    having, self.having_occurrences, values
                )
                if folded.bind(params).evaluate(representative) is not True:
                    continue
            out_row: List[Any] = []
            for item, occurrences, evaluate in zip(
                self.items, self.item_occurrences, item_evaluators
            ):
                expression = item.expr
                if not occurrences:
                    # No aggregates: evaluate on the representative row
                    # (group keys are constant within a group).
                    out_row.append(evaluate(representative))
                elif isinstance(expression, AggregateCall):
                    out_row.append(values[occurrences[0]])
                else:
                    folded = _fold_values(expression, occurrences, values)
                    out_row.append(
                        folded.bind(params).evaluate(representative)
                    )
            output.append(tuple(out_row))
        return output
