"""An in-memory relational engine (the paper's DB2 substitute).

Public surface::

    from repro.db import Database, TableSchema, Column, DataType

    db = Database()
    db.execute("CREATE TABLE deals (deal_id TEXT, name TEXT, PRIMARY KEY (deal_id))")
    db.execute("INSERT INTO deals VALUES ('d1', 'DEAL A')")
    rows = db.execute("SELECT name FROM deals WHERE deal_id = ?", ["d1"])

The engine supports typed schemas, PRIMARY KEY / UNIQUE / FOREIGN KEY /
NOT NULL constraints, hash and sorted secondary indexes with a planner
that uses them, inner/left joins, aggregation, and undo-log transactions.
"""

from repro.db.database import Database
from repro.db.expr import (
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Parameter,
)
from repro.db.index import HashIndex, Index, SortedIndex
from repro.db.persistence import (
    dump_database,
    dumps_database,
    load_database,
    loads_database,
)
from repro.db.plan import PlannerOptions, SelectPlan
from repro.db.query import (
    AggregateCall,
    Join,
    OrderItem,
    ResultSet,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.sql import Explain, parse
from repro.db.table import Table
from repro.db.types import DataType

__all__ = [
    "Database",
    "Table",
    "TableSchema",
    "Column",
    "ForeignKey",
    "DataType",
    "Index",
    "HashIndex",
    "SortedIndex",
    "Expression",
    "Literal",
    "ColumnRef",
    "Parameter",
    "Comparison",
    "LogicalAnd",
    "LogicalOr",
    "LogicalNot",
    "IsNull",
    "InList",
    "Like",
    "Arithmetic",
    "FunctionCall",
    "AggregateCall",
    "SelectStatement",
    "SelectItem",
    "TableRef",
    "Join",
    "OrderItem",
    "ResultSet",
    "PlannerOptions",
    "SelectPlan",
    "Explain",
    "parse",
    "dump_database",
    "load_database",
    "dumps_database",
    "loads_database",
]
