"""Table schemas: columns, constraints, row validation.

A :class:`TableSchema` owns column definitions and the table-level
constraints (primary key, unique sets, foreign keys).  Row validation —
type coercion, NOT NULL and defaults — happens here so the storage layer
(`repro.db.table`) only ever sees well-formed tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.db.types import DataType, coerce
from repro.errors import IntegrityError, SchemaError

__all__ = ["Column", "ForeignKey", "TableSchema"]

_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _check_identifier(name: str, kind: str) -> str:
    if not name:
        raise SchemaError(f"{kind} name must be non-empty")
    lowered = name.lower()
    if lowered[0].isdigit() or not set(lowered) <= _IDENT_CHARS:
        raise SchemaError(f"invalid {kind} name {name!r}")
    return lowered


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Attributes:
        name: Column identifier (case-insensitive, stored lower-case).
        dtype: Declared :class:`DataType`.
        nullable: Whether NULL is allowed (primary-key columns never are).
        default: Value used when an insert omits the column.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", _check_identifier(self.name, "column"))
        if self.default is not None:
            object.__setattr__(
                self, "default", coerce(self.default, self.dtype, self.name)
            )


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: ``columns`` reference ``parent_table``.

    The referenced columns must form the parent's primary key.
    """

    columns: Tuple[str, ...]
    parent_table: str
    parent_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.parent_columns):
            raise SchemaError("foreign key column count mismatch")
        if not self.columns:
            raise SchemaError("foreign key needs at least one column")


class TableSchema:
    """Schema for one table.

    Args:
        name: Table name.
        columns: Ordered column definitions.
        primary_key: Column names forming the primary key (optional).
        unique: Additional unique constraints, each a sequence of columns.
        foreign_keys: Foreign-key constraints.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        unique: Sequence[Sequence[str]] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> None:
        self.name = _check_identifier(name, "table")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._positions: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._positions:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            self._positions[column.name] = position

        self.primary_key: Tuple[str, ...] = tuple(
            self._require_column(c) for c in primary_key
        )
        if len(set(self.primary_key)) != len(self.primary_key):
            raise SchemaError("duplicate column in primary key")
        self.unique: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(self._require_column(c) for c in constraint)
            for constraint in unique
        )
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            for column in fk.columns:
                self._require_column(column)

        # Primary-key columns are implicitly NOT NULL.
        if self.primary_key:
            replaced = []
            for column in self.columns:
                if column.name in self.primary_key and column.nullable:
                    replaced.append(
                        Column(column.name, column.dtype, False, column.default)
                    )
                else:
                    replaced.append(column)
            self.columns = tuple(replaced)

    # ------------------------------------------------------------------

    def _require_column(self, name: str) -> str:
        lowered = name.lower()
        if lowered not in self._positions:
            raise SchemaError(
                f"unknown column {name!r} in table {self.name!r}"
            )
        return lowered

    @property
    def column_names(self) -> List[str]:
        """Ordered column names."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """True if a column named ``name`` exists (case-insensitive)."""
        return name.lower() in self._positions

    def position(self, name: str) -> int:
        """Ordinal of column ``name``; raises SchemaError if unknown."""
        return self._positions[self._require_column(name)]

    def column(self, name: str) -> Column:
        """The :class:`Column` named ``name``."""
        return self.columns[self.position(name)]

    # ------------------------------------------------------------------

    def validate_row(self, values: Mapping[str, Any]) -> Tuple[Any, ...]:
        """Build a storage tuple from a column->value mapping.

        Applies defaults, type coercion and NOT NULL checks.  Unknown
        keys raise IntegrityError so typos never silently drop data.
        """
        unknown = [k for k in values if not self.has_column(k)]
        if unknown:
            raise IntegrityError(
                f"unknown column(s) {unknown!r} for table {self.name!r}"
            )
        normalized = {k.lower(): v for k, v in values.items()}
        row = []
        for column in self.columns:
            value = normalized.get(column.name, column.default)
            value = coerce(value, column.dtype, column.name)
            if value is None and not column.nullable:
                raise IntegrityError(
                    f"column {column.name!r} of table {self.name!r} "
                    "is NOT NULL"
                )
            row.append(value)
        return tuple(row)

    def row_dict(self, row: Sequence[Any]) -> Dict[str, Any]:
        """Convert a storage tuple back to a column->value dict."""
        return dict(zip(self.column_names, row))

    def key_of(self, row: Sequence[Any], columns: Sequence[str]) -> Tuple:
        """Extract the tuple of ``columns`` values from a storage row."""
        return tuple(row[self.position(c)] for c in columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.dtype}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"
