"""Column data types and value coercion for the relational engine.

The engine supports the five scalar types EIL's organized-information
schema needs: INTEGER, REAL, TEXT, BOOLEAN and DATE.  ``DATE`` values
are stored as :class:`datetime.date`; the other types map onto the
obvious Python scalars.  ``coerce`` applies SQLite-style lenient
conversion on insert (e.g. an int arriving in a REAL column) while
rejecting genuinely incompatible values.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Optional

from repro.errors import TypeMismatchError

__all__ = ["DataType", "coerce", "compatible_python_type"]


class DataType(enum.Enum):
    """Scalar column types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_DATE_FORMAT = "%Y-%m-%d"


def coerce(value: Any, dtype: DataType, column: str = "?") -> Optional[Any]:
    """Coerce ``value`` to ``dtype``, raising :class:`TypeMismatchError`.

    ``None`` passes through (nullability is the schema's concern, not the
    type system's).  Lenient conversions: int -> REAL, bool -> INTEGER,
    ISO-format str -> DATE, int/float/bool/date -> TEXT is *not* allowed
    (silent stringification hides bugs); numeric strings are *not*
    auto-parsed into numbers for the same reason.
    """
    if value is None:
        return None
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
    elif dtype is DataType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
    elif dtype is DataType.TEXT:
        if isinstance(value, str):
            return value
    elif dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
    elif dtype is DataType.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.datetime.strptime(value, _DATE_FORMAT).date()
            except ValueError:
                pass
    raise TypeMismatchError(
        f"column {column!r}: cannot store {type(value).__name__} "
        f"value {value!r} in {dtype} column"
    )


def compatible_python_type(dtype: DataType) -> type:
    """Return the canonical Python type stored for ``dtype``."""
    return {
        DataType.INTEGER: int,
        DataType.REAL: float,
        DataType.TEXT: str,
        DataType.BOOLEAN: bool,
        DataType.DATE: datetime.date,
    }[dtype]
