"""A small SQL dialect: lexer, recursive-descent parser, statement model.

Supported statements (the subset EIL's organized-information layer and
the synopsis queries use):

* ``CREATE TABLE t (col TYPE [NOT NULL] [DEFAULT lit], ...,
  PRIMARY KEY (...), UNIQUE (...), FOREIGN KEY (...) REFERENCES p(...))``
* ``CREATE [UNIQUE] INDEX name ON t (cols)``
* ``DROP TABLE t``
* ``INSERT INTO t [(cols)] VALUES (...), (...)``
* ``SELECT [DISTINCT] items FROM t [alias]
  [[LEFT] JOIN u [alias] ON expr] ... [WHERE expr]
  [GROUP BY exprs] [HAVING expr] [ORDER BY expr [ASC|DESC], ...]
  [LIMIT n [OFFSET m]]``
* ``UPDATE t SET col = expr, ... [WHERE expr]``
* ``DELETE FROM t [WHERE expr]``
* ``EXPLAIN <statement>`` — report the planner's access-path choices
  without mutating anything

Expressions support AND/OR/NOT, comparisons, LIKE, IN, IS [NOT] NULL,
``+ - * /``, scalar functions, the aggregates, ``?`` placeholders,
string/number/NULL/TRUE/FALSE literals, and parenthesized nesting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

from repro.db.expr import (
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Parameter,
)
from repro.db.query import (
    AggregateCall,
    Join,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.db.schema import Column, ForeignKey, TableSchema
from repro.db.types import DataType
from repro.errors import SqlSyntaxError

__all__ = [
    "parse",
    "Statement",
    "CreateTable",
    "CreateIndex",
    "DropTable",
    "Insert",
    "Update",
    "Delete",
    "Explain",
]


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\.|\*|\+|-|/|\?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "asc", "desc", "limit", "offset", "join", "left", "inner", "on", "and",
    "or", "not", "in", "is", "null", "like", "true", "false", "as", "create",
    "table", "index", "unique", "primary", "key", "foreign", "references",
    "drop", "insert", "into", "values", "update", "set", "delete", "default",
    "count", "sum", "avg", "min", "max", "explain",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'string' | 'op' | 'ident' | 'keyword' | 'eof'
    text: str
    position: int


def _lex(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {sql[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "op"
        text = match.group(0)
        if kind == "ident" and text.lower() in _KEYWORDS:
            kind = "keyword"
            text = text.lower()
        tokens.append(_Token(kind, text, match.start()))
    tokens.append(_Token("eof", "", len(sql)))
    return tokens


# ---------------------------------------------------------------------------
# Statement model (non-SELECT)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CreateTable:
    """Parsed CREATE TABLE."""

    schema: TableSchema


@dataclass(frozen=True)
class CreateIndex:
    """Parsed CREATE INDEX."""

    name: str
    table: str
    columns: Tuple[str, ...]
    unique: bool = False


@dataclass(frozen=True)
class DropTable:
    """Parsed DROP TABLE."""

    table: str


@dataclass(frozen=True)
class Insert:
    """Parsed INSERT; ``columns=()`` means schema order."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Update:
    """Parsed UPDATE."""

    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete:
    """Parsed DELETE."""

    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Explain:
    """Parsed EXPLAIN wrapping any other statement."""

    statement: "Statement"


Statement = Union[
    SelectStatement, CreateTable, CreateIndex, DropTable, Insert, Update,
    Delete, Explain,
]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = _lex(sql)
        self._pos = 0
        self._param_count = 0

    # -- token helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self._peek()
        if token.kind == "keyword" and token.text in keywords:
            self._advance()
            return token.text
        return None

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            self._fail(f"expected {keyword.upper()}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token.kind == "op" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            self._fail(f"expected {op!r}")

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        # Non-reserved use of aggregate keywords as identifiers is not
        # supported; real identifiers must avoid keywords.
        if token.kind != "ident":
            self._fail(f"expected {what}")
        self._advance()
        return token.text

    def _fail(self, message: str) -> None:
        token = self._peek()
        raise SqlSyntaxError(
            f"{message} at offset {token.position} "
            f"(near {token.text!r}) in: {self._sql!r}"
        )

    # -- entry point -----------------------------------------------------

    def parse_statement(self) -> Statement:
        if self._accept_keyword("explain"):
            statement: Statement = Explain(self._parse_bare_statement())
        else:
            statement = self._parse_bare_statement()
        if self._peek().kind != "eof":
            self._fail("unexpected trailing input")
        return statement

    def _parse_bare_statement(self) -> Statement:
        statement: Statement
        if self._accept_keyword("select"):
            statement = self._parse_select()
        elif self._accept_keyword("create"):
            statement = self._parse_create()
        elif self._accept_keyword("drop"):
            self._expect_keyword("table")
            statement = DropTable(self._expect_ident("table name"))
        elif self._accept_keyword("insert"):
            statement = self._parse_insert()
        elif self._accept_keyword("update"):
            statement = self._parse_update()
        elif self._accept_keyword("delete"):
            statement = self._parse_delete()
        else:
            self._fail("expected a SQL statement")
            raise AssertionError  # unreachable
        return statement

    # -- SELECT -----------------------------------------------------------

    def _parse_select(self) -> SelectStatement:
        distinct = bool(self._accept_keyword("distinct"))
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        self._expect_keyword("from")
        from_ref = self._parse_table_ref()
        joins: List[Join] = []
        while True:
            kind = "inner"
            if self._accept_keyword("left"):
                kind = "left"
                self._expect_keyword("join")
            elif self._accept_keyword("inner"):
                self._expect_keyword("join")
            elif not self._accept_keyword("join"):
                break
            ref = self._parse_table_ref()
            self._expect_keyword("on")
            joins.append(Join(ref, self._parse_expression(), kind))
        where = (
            self._parse_expression() if self._accept_keyword("where") else None
        )
        group_by: List[Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expression())
            while self._accept_op(","):
                group_by.append(self._parse_expression())
        having = (
            self._parse_expression() if self._accept_keyword("having") else None
        )
        order_by: List[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())
        limit = None
        offset = 0
        if self._accept_keyword("limit"):
            limit = self._parse_int("LIMIT")
            if self._accept_keyword("offset"):
                offset = self._parse_int("OFFSET")
        return SelectStatement(
            items=tuple(items),
            from_ref=from_ref,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_int(self, clause: str) -> int:
        token = self._peek()
        if token.kind != "number" or "." in token.text:
            self._fail(f"{clause} expects an integer")
        self._advance()
        return int(token.text)

    def _parse_select_item(self) -> SelectItem:
        if self._accept_op("*"):
            return SelectItem(star=True)
        # alias.* form
        if (
            self._peek().kind == "ident"
            and self._peek(1).text == "."
            and self._peek(2).text == "*"
        ):
            table = self._expect_ident()
            self._advance()  # .
            self._advance()  # *
            return SelectItem(star=True, star_table=table)
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident("alias")
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return SelectItem(expression, alias)

    def _parse_table_ref(self) -> TableRef:
        table = self._expect_ident("table name")
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident("alias")
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return TableRef(table, alias)

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expression, descending)

    # -- CREATE -----------------------------------------------------------

    def _parse_create(self) -> Statement:
        if self._accept_keyword("table"):
            return self._parse_create_table()
        unique = bool(self._accept_keyword("unique"))
        self._expect_keyword("index")
        name = self._expect_ident("index name")
        self._expect_keyword("on")
        table = self._expect_ident("table name")
        self._expect_op("(")
        columns = [self._expect_ident("column name")]
        while self._accept_op(","):
            columns.append(self._expect_ident("column name"))
        self._expect_op(")")
        return CreateIndex(name, table, tuple(columns), unique)

    _TYPES = {
        "integer": DataType.INTEGER,
        "int": DataType.INTEGER,
        "real": DataType.REAL,
        "float": DataType.REAL,
        "double": DataType.REAL,
        "text": DataType.TEXT,
        "varchar": DataType.TEXT,
        "boolean": DataType.BOOLEAN,
        "bool": DataType.BOOLEAN,
        "date": DataType.DATE,
    }

    def _parse_create_table(self) -> CreateTable:
        name = self._expect_ident("table name")
        self._expect_op("(")
        columns: List[Column] = []
        primary_key: Tuple[str, ...] = ()
        unique: List[Tuple[str, ...]] = []
        foreign_keys: List[ForeignKey] = []
        while True:
            if self._accept_keyword("primary"):
                self._expect_keyword("key")
                primary_key = self._parse_column_list()
            elif self._accept_keyword("unique"):
                unique.append(self._parse_column_list())
            elif self._accept_keyword("foreign"):
                self._expect_keyword("key")
                fk_columns = self._parse_column_list()
                self._expect_keyword("references")
                parent = self._expect_ident("table name")
                parent_columns = self._parse_column_list()
                foreign_keys.append(
                    ForeignKey(fk_columns, parent, parent_columns)
                )
            else:
                columns.append(self._parse_column_def())
            if not self._accept_op(","):
                break
        self._expect_op(")")
        schema = TableSchema(name, columns, primary_key, unique, foreign_keys)
        return CreateTable(schema)

    def _parse_column_list(self) -> Tuple[str, ...]:
        self._expect_op("(")
        columns = [self._expect_ident("column name")]
        while self._accept_op(","):
            columns.append(self._expect_ident("column name"))
        self._expect_op(")")
        return tuple(columns)

    def _parse_column_def(self) -> Column:
        name = self._expect_ident("column name")
        type_token = self._peek()
        if type_token.kind != "ident" or type_token.text.lower() not in self._TYPES:
            self._fail("expected a column type")
        self._advance()
        dtype = self._TYPES[type_token.text.lower()]
        # VARCHAR(n): accept and ignore the length.
        if self._accept_op("("):
            self._parse_int("VARCHAR length")
            self._expect_op(")")
        nullable = True
        default: Any = None
        while True:
            if self._accept_keyword("not"):
                self._expect_keyword("null")
                nullable = False
            elif self._accept_keyword("default"):
                default = self._parse_literal_value()
            else:
                break
        return Column(name, dtype, nullable, default)

    def _parse_literal_value(self) -> Any:
        expression = self._parse_primary()
        if not isinstance(expression, Literal):
            self._fail("DEFAULT requires a literal")
        return expression.value  # type: ignore[union-attr]

    # -- INSERT / UPDATE / DELETE -----------------------------------------

    def _parse_insert(self) -> Insert:
        self._expect_keyword("into")
        table = self._expect_ident("table name")
        columns: Tuple[str, ...] = ()
        if self._accept_op("("):
            names = [self._expect_ident("column name")]
            while self._accept_op(","):
                names.append(self._expect_ident("column name"))
            self._expect_op(")")
            columns = tuple(names)
        self._expect_keyword("values")
        rows: List[Tuple[Expression, ...]] = []
        while True:
            self._expect_op("(")
            values = [self._parse_expression()]
            while self._accept_op(","):
                values.append(self._parse_expression())
            self._expect_op(")")
            rows.append(tuple(values))
            if not self._accept_op(","):
                break
        return Insert(table, columns, tuple(rows))

    def _parse_update(self) -> Update:
        table = self._expect_ident("table name")
        self._expect_keyword("set")
        assignments: List[Tuple[str, Expression]] = []
        while True:
            column = self._expect_ident("column name")
            self._expect_op("=")
            assignments.append((column, self._parse_expression()))
            if not self._accept_op(","):
                break
        where = (
            self._parse_expression() if self._accept_keyword("where") else None
        )
        return Update(table, tuple(assignments), where)

    def _parse_delete(self) -> Delete:
        self._expect_keyword("from")
        table = self._expect_ident("table name")
        where = (
            self._parse_expression() if self._accept_keyword("where") else None
        )
        return Delete(table, where)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = LogicalOr(left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = LogicalAnd(left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return LogicalNot(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.text in ("=", "!=", "<>", "<", "<=",
                                                 ">", ">="):
            self._advance()
            op = "!=" if token.text == "<>" else token.text
            return Comparison(op, left, self._parse_additive())
        negated = False
        if self._peek().kind == "keyword" and self._peek().text == "not":
            following = self._peek(1)
            if following.kind == "keyword" and following.text in ("like", "in"):
                self._advance()
                negated = True
        if self._accept_keyword("like"):
            return Like(left, self._parse_additive(), negated)
        if self._accept_keyword("in"):
            self._expect_op("(")
            choices = [self._parse_expression()]
            while self._accept_op(","):
                choices.append(self._parse_expression())
            self._expect_op(")")
            return InList(left, tuple(choices), negated)
        if self._accept_keyword("is"):
            is_negated = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return IsNull(left, is_negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            if self._accept_op("+"):
                left = Arithmetic("+", left, self._parse_multiplicative())
            elif self._accept_op("-"):
                left = Arithmetic("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            if self._accept_op("*"):
                left = Arithmetic("*", left, self._parse_unary())
            elif self._accept_op("/"):
                left = Arithmetic("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self._accept_op("-"):
            return Arithmetic("-", Literal(0), self._parse_unary())
        return self._parse_primary()

    _AGGREGATES = ("count", "sum", "avg", "min", "max")

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            value: Any = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "string":
            self._advance()
            return Literal(token.text[1:-1].replace("''", "'"))
        if token.kind == "op" and token.text == "?":
            self._advance()
            parameter = Parameter(self._param_count)
            self._param_count += 1
            return parameter
        if token.kind == "op" and token.text == "(":
            self._advance()
            expression = self._parse_expression()
            self._expect_op(")")
            return expression
        if token.kind == "keyword":
            if token.text == "null":
                self._advance()
                return Literal(None)
            if token.text == "true":
                self._advance()
                return Literal(True)
            if token.text == "false":
                self._advance()
                return Literal(False)
            if token.text in self._AGGREGATES:
                self._advance()
                return self._parse_aggregate(token.text)
            self._fail("unexpected keyword in expression")
        if token.kind == "ident":
            return self._parse_identifier_expression()
        self._fail("expected an expression")
        raise AssertionError  # unreachable

    def _parse_aggregate(self, func: str) -> Expression:
        self._expect_op("(")
        if func == "count" and self._accept_op("*"):
            self._expect_op(")")
            return AggregateCall("count", None)
        distinct = bool(self._accept_keyword("distinct"))
        argument = self._parse_expression()
        self._expect_op(")")
        return AggregateCall(func, argument, distinct)

    def _parse_identifier_expression(self) -> Expression:
        name = self._expect_ident()
        if self._accept_op("("):
            arguments = []
            if not self._accept_op(")"):
                arguments.append(self._parse_expression())
                while self._accept_op(","):
                    arguments.append(self._parse_expression())
                self._expect_op(")")
            return FunctionCall(name, tuple(arguments))
        if self._accept_op("."):
            column = self._expect_ident("column name")
            return ColumnRef(column, name)
        return ColumnRef(name)


def parse(sql: str) -> Statement:
    """Parse one SQL statement (trailing semicolon allowed)."""
    sql = sql.strip()
    if sql.endswith(";"):
        sql = sql[:-1]
    return _Parser(sql).parse_statement()
