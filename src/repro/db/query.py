"""Logical query model and the naive reference executor for SELECT.

This module holds the statement model (:class:`SelectStatement` and
friends), :class:`ResultSet`, and **two** executors:

* :func:`execute_select` — the production path.  It delegates to
  :class:`repro.db.plan.SelectPlan`, the join-aware planner with plan
  caching, predicate pushdown, compiled expressions and streaming
  aggregation.
* :func:`naive_execute_select` — the seed's transparent row-at-a-time
  interpreter, kept verbatim as the reference implementation.  The
  option-lattice equivalence suite proves every planner configuration
  returns byte-identical rows/columns/ordering to this function; it is
  also the honest baseline the ``bench_db.py`` ablation measures
  speedups against.

The founding contract is unchanged: access-path selection (and now
every planner optimization) can never change results, only speed.  The
WHERE clause is always fully re-applied — as a whole by the naive
executor, conjunct-by-conjunct at pushed-down pipeline positions by the
planner.  ``ResultSet.plan`` reports which paths were chosen; tests
assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.db.expr import (
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    LogicalAnd,
    RowContext,
)
from repro.db.index import SortedIndex
from repro.db.table import Table
from repro.errors import ProgrammingError

__all__ = [
    "AggregateCall",
    "SelectItem",
    "TableRef",
    "Join",
    "OrderItem",
    "SelectStatement",
    "ResultSet",
    "execute_select",
    "naive_execute_select",
]


# ---------------------------------------------------------------------------
# Statement model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateCall(Expression):
    """COUNT/SUM/AVG/MIN/MAX over a group.

    ``arg`` is None only for ``COUNT(*)``.  Aggregates are evaluated by
    the executor's grouping stage, never via :meth:`evaluate`.
    """

    func: str
    arg: Optional[Expression] = None
    distinct: bool = False

    _FUNCS = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.func.lower() not in self._FUNCS:
            raise ProgrammingError(f"unknown aggregate {self.func!r}")
        if self.arg is None and self.func.lower() != "count":
            raise ProgrammingError(f"{self.func}(*) is not valid")

    def evaluate(self, row: RowContext) -> Any:
        raise ProgrammingError(
            "aggregate evaluated outside GROUP BY context"
        )

    def references(self) -> Iterator[str]:
        if self.arg is not None:
            yield from self.arg.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        arg = self.arg.bind(params) if self.arg is not None else None
        return AggregateCall(self.func, arg, self.distinct)

    def compute(self, rows: Sequence[RowContext]) -> Any:
        """Evaluate this aggregate over the rows of one group."""
        func = self.func.lower()
        if self.arg is None:
            return len(rows)
        values = [self.arg.evaluate(row) for row in rows]
        values = [v for v in values if v is not None]
        if self.distinct:
            values = list(dict.fromkeys(values))
        if func == "count":
            return len(values)
        if not values:
            return None
        if func == "sum":
            return sum(values)
        if func == "avg":
            return sum(values) / len(values)
        if func == "min":
            return min(values)
        return max(values)


@dataclass(frozen=True)
class SelectItem:
    """One projected output column; ``star=True`` expands to all columns."""

    expr: Optional[Expression] = None
    alias: Optional[str] = None
    star: bool = False
    star_table: Optional[str] = None  # for `alias.*`

    def __post_init__(self) -> None:
        if not self.star and self.expr is None:
            raise ProgrammingError("select item needs an expression or *")


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause with an optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        """The name rows from this source are qualified with."""
        return (self.alias or self.table).lower()


@dataclass(frozen=True)
class Join:
    """One JOIN clause."""

    ref: TableRef
    on: Expression
    kind: str = "inner"  # 'inner' | 'left'

    def __post_init__(self) -> None:
        if self.kind not in ("inner", "left"):
            raise ProgrammingError(f"unsupported join kind {self.kind!r}")


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A fully parsed/constructed SELECT."""

    items: Tuple[SelectItem, ...]
    from_ref: TableRef
    joins: Tuple[Join, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False

    def bind(self, params: Sequence[Any]) -> "SelectStatement":
        """Substitute ``?`` placeholders with ``params``."""
        return SelectStatement(
            items=tuple(
                SelectItem(
                    item.expr.bind(params) if item.expr else None,
                    item.alias,
                    item.star,
                    item.star_table,
                )
                for item in self.items
            ),
            from_ref=self.from_ref,
            joins=tuple(
                Join(j.ref, j.on.bind(params), j.kind) for j in self.joins
            ),
            where=self.where.bind(params) if self.where else None,
            group_by=tuple(g.bind(params) for g in self.group_by),
            having=self.having.bind(params) if self.having else None,
            order_by=tuple(
                OrderItem(o.expr.bind(params), o.descending)
                for o in self.order_by
            ),
            limit=self.limit,
            offset=self.offset,
            distinct=self.distinct,
        )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class ResultSet:
    """Materialized query result.

    Attributes:
        columns: Output column names, in order.
        rows: Result tuples.
        plan: Human-readable access-path notes from the planner.
    """

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    plan: List[str] = field(default_factory=list)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> Optional[Tuple[Any, ...]]:
        """The first row, or None if empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ProgrammingError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as a list of column->value dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        """All values of the named output column."""
        try:
            position = self.columns.index(name)
        except ValueError:
            raise ProgrammingError(f"no output column {name!r}") from None
        return [row[position] for row in self.rows]


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


def _conjuncts(expression: Optional[Expression]) -> List[Expression]:
    if expression is None:
        return []
    if isinstance(expression, LogicalAnd):
        return _conjuncts(expression.left) + _conjuncts(expression.right)
    return [expression]


def _column_of(
    expression: Expression, source: TableRef, table: Table
) -> Optional[str]:
    """If ``expression`` is a ColumnRef on ``source``, its column name."""
    if not isinstance(expression, ColumnRef):
        return None
    if expression.table is not None and expression.table.lower() != source.name:
        return None
    if not table.schema.has_column(expression.name):
        return None
    return expression.name.lower()


def _plan_base_rowids(
    table: Table,
    source: TableRef,
    where: Optional[Expression],
    plan: List[str],
) -> Iterable[int]:
    """Choose an access path for the driving table.

    Preference: single-column unique/equality index lookup, then sorted-
    index range scan, then full scan.  Only constant (Literal) right
    sides qualify — parameters are bound before planning.
    """
    equality: List[Tuple[str, Any]] = []
    ranges: List[Tuple[str, str, Any]] = []
    for conjunct in _conjuncts(where):
        if not isinstance(conjunct, Comparison):
            continue
        left, right = conjunct.left, conjunct.right
        op = conjunct.op
        # Normalize `literal op column` to `column op' literal`.
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not isinstance(right, Literal) or right.value is None:
            continue
        column = _column_of(left, source, table)
        if column is None:
            continue
        if op == "=":
            equality.append((column, right.value))
        elif op in ("<", "<=", ">", ">="):
            ranges.append((column, op, right.value))

    for column, value in equality:
        index = table.index_on((column,))
        if index is not None:
            plan.append(f"index lookup {index.name}({column}={value!r})")
            return sorted(index.lookup((value,)))

    for column, op, value in ranges:
        index = table.index_on((column,))
        if isinstance(index, SortedIndex):
            plan.append(f"index range {index.name}({column} {op} {value!r})")
            if op in ("<", "<="):
                return index.range(None, (value,), include_high=op == "<=")
            return index.range((value,), None, include_low=op == ">=")

    plan.append(f"full scan {table.schema.name}")
    return (rowid for rowid, _ in table.scan())


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


class _Catalog:
    """Minimal protocol the executor needs: table lookup by name."""

    def table(self, name: str) -> Table:  # pragma: no cover - interface
        raise NotImplementedError


def _contexts_for(
    table: Table, ref: TableRef, rowids: Iterable[int]
) -> List[Dict[str, Any]]:
    prefix = ref.name + "."
    columns = table.schema.column_names
    contexts = []
    for rowid in rowids:
        row = table.row(rowid)
        contexts.append({prefix + c: v for c, v in zip(columns, row)})
    return contexts


def _equi_join_keys(
    on: Expression, left_names: List[str], right_name: str
) -> Optional[Tuple[ColumnRef, ColumnRef]]:
    """Detect ``left.col = right.col`` to enable a hash join."""
    if not (isinstance(on, Comparison) and on.op == "="):
        return None
    sides = [on.left, on.right]
    if not all(isinstance(side, ColumnRef) and side.table for side in sides):
        return None
    a, b = sides  # type: ignore[assignment]
    if a.table.lower() in left_names and b.table.lower() == right_name:
        return a, b
    if b.table.lower() in left_names and a.table.lower() == right_name:
        return b, a
    return None


def execute_select(
    catalog: Any, statement: SelectStatement, params: Sequence[Any] = ()
) -> ResultSet:
    """Execute ``statement`` against ``catalog`` (a Database).

    Production path: plans the statement with the catalog's
    :class:`~repro.db.plan.PlannerOptions` and executes it.  Callers
    that execute the same SQL repeatedly should go through
    ``Database.execute``, which caches the plan by statement text.
    """
    from repro.db.plan import PlannerOptions, SelectPlan

    options = getattr(catalog, "planner_options", None)
    if options is None:
        options = PlannerOptions.from_env()
    return SelectPlan(catalog, statement, options).execute(params)


def naive_execute_select(
    catalog: Any, statement: SelectStatement, params: Sequence[Any] = ()
) -> ResultSet:
    """The seed row-at-a-time executor, kept as the reference.

    ``params`` replaces ``?`` placeholders positionally before planning,
    so parameter values participate in index selection.  This function
    is pure with respect to observability — it records no metrics — so
    equivalence tests can call it freely.
    """
    statement = statement.bind(params)
    plan: List[str] = []

    # FROM: driving table, index-assisted when WHERE allows.
    base_table = catalog.table(statement.from_ref.table)
    # Index pre-filter is only sound when its predicate applies to the
    # base table before joins; the full WHERE is re-applied after joins,
    # but a LEFT-joined row must not be lost to a pre-filter on another
    # table, which cannot happen since we only match base-table columns.
    rowids = _plan_base_rowids(base_table, statement.from_ref,
                               statement.where, plan)
    rows = _contexts_for(base_table, statement.from_ref, rowids)
    seen_names = [statement.from_ref.name]

    # JOINs.
    for join in statement.joins:
        right_table = catalog.table(join.ref.table)
        right_rows = _contexts_for(
            right_table, join.ref, (rid for rid, _ in right_table.scan())
        )
        keys = _equi_join_keys(join.on, seen_names, join.ref.name)
        joined: List[Dict[str, Any]] = []
        if keys is not None:
            left_key, right_key = keys
            plan.append(f"hash join {join.ref.name} on {right_key.key}")
            buckets: Dict[Any, List[Dict[str, Any]]] = {}
            for right_row in right_rows:
                key = right_row[right_key.key]
                if key is not None:
                    buckets.setdefault(key, []).append(right_row)
            for left_row in rows:
                matches = buckets.get(left_row.get(left_key.key), [])
                for right_row in matches:
                    merged = dict(left_row)
                    merged.update(right_row)
                    joined.append(merged)
                if not matches and join.kind == "left":
                    merged = dict(left_row)
                    merged.update(_null_row(right_table, join.ref))
                    joined.append(merged)
        else:
            plan.append(f"nested loop join {join.ref.name}")
            for left_row in rows:
                matched = False
                for right_row in right_rows:
                    merged = dict(left_row)
                    merged.update(right_row)
                    if join.on.evaluate(merged) is True:
                        joined.append(merged)
                        matched = True
                if not matched and join.kind == "left":
                    merged = dict(left_row)
                    merged.update(_null_row(right_table, join.ref))
                    joined.append(merged)
        rows = joined
        seen_names.append(join.ref.name)

    # WHERE.
    if statement.where is not None:
        rows = [r for r in rows if statement.where.evaluate(r) is True]

    # Expand stars and name output columns.
    items = _expand_items(statement, catalog, seen_names)
    column_names = [_output_name(item, position)
                    for position, item in enumerate(items)]

    has_aggregates = any(
        _contains_aggregate(item.expr) for item in items if item.expr
    ) or statement.group_by or statement.having is not None

    if has_aggregates:
        output_rows = _execute_grouped(statement, items, rows)
    else:
        output_rows = [
            tuple(item.expr.evaluate(row) for item in items)  # type: ignore[union-attr]
            for row in rows
        ]
        if statement.order_by:
            output_rows = _order(
                statement.order_by, rows, output_rows, items
            )

    if has_aggregates and statement.order_by:
        # Aggregated rows are ordered by output column only.
        output_rows = _order_grouped(
            statement.order_by, output_rows, items, column_names
        )

    if statement.distinct:
        output_rows = list(dict.fromkeys(output_rows))

    if statement.offset:
        output_rows = output_rows[statement.offset:]
    if statement.limit is not None:
        output_rows = output_rows[: statement.limit]

    return ResultSet(column_names, output_rows, plan)


def _null_row(table: Table, ref: TableRef) -> Dict[str, Any]:
    prefix = ref.name + "."
    return {prefix + c: None for c in table.schema.column_names}


def _expand_items(
    statement: SelectStatement, catalog: Any, seen_names: List[str]
) -> List[SelectItem]:
    refs = {statement.from_ref.name: statement.from_ref.table}
    for join in statement.joins:
        refs[join.ref.name] = join.ref.table
    items: List[SelectItem] = []
    for item in statement.items:
        if not item.star:
            items.append(item)
            continue
        targets = (
            [item.star_table.lower()] if item.star_table else seen_names
        )
        for name in targets:
            if name not in refs:
                raise ProgrammingError(f"unknown table alias {name!r}")
            schema = catalog.table(refs[name]).schema
            for column in schema.column_names:
                items.append(
                    SelectItem(ColumnRef(column, name), alias=column)
                )
    return items


def _output_name(item: SelectItem, position: int) -> str:
    if item.alias:
        return item.alias.lower()
    if isinstance(item.expr, ColumnRef):
        return item.expr.name.lower()
    if isinstance(item.expr, AggregateCall):
        return item.expr.func.lower()
    return f"col{position}"


def _contains_aggregate(expression: Optional[Expression]) -> bool:
    if expression is None:
        return False
    if isinstance(expression, AggregateCall):
        return True
    # Walk dataclass fields that hold expressions.
    for attr in vars(expression).values():
        if isinstance(attr, Expression) and _contains_aggregate(attr):
            return True
        if isinstance(attr, tuple) and any(
            isinstance(e, Expression) and _contains_aggregate(e) for e in attr
        ):
            return True
    return False


def _fold_aggregates(
    expression: Expression, group: Sequence[RowContext]
) -> Expression:
    """Replace every AggregateCall subtree with its computed Literal.

    This lets arbitrary expressions over aggregates (``COUNT(*) > 1``,
    ``SUM(a) / COUNT(a)``) evaluate with the ordinary machinery.
    """
    if isinstance(expression, AggregateCall):
        return Literal(expression.compute(list(group)))
    rebuilt: Dict[str, Any] = {}
    changed = False
    for name, attr in vars(expression).items():
        if isinstance(attr, Expression):
            folded = _fold_aggregates(attr, group)
            changed = changed or folded is not attr
            rebuilt[name] = folded
        elif isinstance(attr, tuple) and any(
            isinstance(element, Expression) for element in attr
        ):
            folded_tuple = tuple(
                _fold_aggregates(element, group)
                if isinstance(element, Expression)
                else element
                for element in attr
            )
            changed = changed or folded_tuple != attr
            rebuilt[name] = folded_tuple
        else:
            rebuilt[name] = attr
    if not changed:
        return expression
    return type(expression)(**rebuilt)


def _evaluate_with_groups(
    expression: Expression, group: List[RowContext], representative: RowContext
) -> Any:
    """Evaluate an output expression over a group.

    AggregateCall nodes (anywhere in the tree) compute over the whole
    group; the remaining structure is evaluated against the group's
    representative row (valid because GROUP BY keys are constant within
    a group).
    """
    return _fold_aggregates(expression, group).evaluate(representative)


def _execute_grouped(
    statement: SelectStatement,
    items: List[SelectItem],
    rows: List[Dict[str, Any]],
) -> List[Tuple[Any, ...]]:
    groups: Dict[Tuple, List[Dict[str, Any]]] = {}
    if statement.group_by:
        for row in rows:
            key = tuple(g.evaluate(row) for g in statement.group_by)
            groups.setdefault(key, []).append(row)
    else:
        groups[()] = rows  # global aggregate; empty input => one group

    output: List[Tuple[Any, ...]] = []
    for key in groups:
        group = groups[key]
        representative = group[0] if group else {}
        if statement.having is not None:
            if _evaluate_with_groups(
                statement.having, group, representative
            ) is not True:
                continue
        output.append(
            tuple(
                _evaluate_with_groups(item.expr, group, representative)  # type: ignore[arg-type]
                for item in items
            )
        )
    return output


class _NullsLast:
    """Sort key wrapper: None sorts after every value, SQL-style."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_NullsLast") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullsLast) and self.value == other.value


def _order(
    order_by: Tuple[OrderItem, ...],
    rows: List[Dict[str, Any]],
    output_rows: List[Tuple[Any, ...]],
    items: List[SelectItem],
) -> List[Tuple[Any, ...]]:
    """Order non-grouped output by ORDER BY expressions over source rows."""
    paired = list(zip(rows, output_rows))
    for order_item in reversed(order_by):
        paired.sort(
            key=lambda pair: _NullsLast(order_item.expr.evaluate(pair[0])),
            reverse=order_item.descending,
        )
    return [out for _, out in paired]


def grouped_key_position(
    expression: Expression,
    items: List[SelectItem],
    column_names: List[str],
) -> int:
    """Resolve a grouped ORDER BY key to an output column position.

    A key matches by output column name (aliases included) or by
    structural equality with a select item's expression; anything else
    is an error because grouped rows only carry output columns."""
    if isinstance(expression, ColumnRef):
        name = expression.name.lower()
        if name in column_names:
            return column_names.index(name)
    for position, item in enumerate(items):
        if item.expr == expression:
            return position
    raise ProgrammingError(
        "ORDER BY with GROUP BY must reference an output column"
    )


def _order_grouped(
    order_by: Tuple[OrderItem, ...],
    output_rows: List[Tuple[Any, ...]],
    items: List[SelectItem],
    column_names: List[str],
) -> List[Tuple[Any, ...]]:
    """Order grouped output; ORDER BY must reference output columns."""
    ordered = list(output_rows)
    for order_item in reversed(order_by):
        position = grouped_key_position(order_item.expr, items, column_names)
        ordered.sort(
            key=lambda row: _NullsLast(row[position]),
            reverse=order_item.descending,
        )
    return ordered
