"""Expression AST evaluated against rows (WHERE / SELECT / ORDER BY).

Expressions evaluate against a *row context*: a mapping from column
reference (possibly qualified, ``deals.deal_id``) to value.  NULL
handling follows SQL three-valued logic: comparisons with NULL yield
NULL (represented as None), AND/OR propagate it per the usual truth
tables, and the executor treats a non-True WHERE result as "row
filtered out".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import ProgrammingError

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Parameter",
    "Comparison",
    "LogicalAnd",
    "LogicalOr",
    "LogicalNot",
    "IsNull",
    "InList",
    "Like",
    "Arithmetic",
    "FunctionCall",
    "RowContext",
]

RowContext = Mapping[str, Any]


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, row: RowContext) -> Any:
        """Evaluate against ``row``; None encodes SQL NULL/UNKNOWN."""
        raise NotImplementedError

    def references(self) -> Iterator[str]:
        """Yield column references appearing in this subtree."""
        return iter(())

    def bind(self, params: Sequence[Any]) -> "Expression":
        """Return a copy with :class:`Parameter` placeholders substituted."""
        return self


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: RowContext) -> Any:
        return self.value


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional ``?`` placeholder, substituted at bind time."""

    position: int

    def evaluate(self, row: RowContext) -> Any:
        raise ProgrammingError(
            f"unbound parameter at position {self.position}; "
            "pass params to execute()"
        )

    def bind(self, params: Sequence[Any]) -> Expression:
        if self.position >= len(params):
            raise ProgrammingError(
                f"query expects at least {self.position + 1} parameter(s), "
                f"got {len(params)}"
            )
        return Literal(params[self.position])


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column, optionally qualified with a table alias."""

    name: str
    table: Optional[str] = None

    @property
    def key(self) -> str:
        """Lookup key in the row context."""
        if self.table:
            return f"{self.table.lower()}.{self.name.lower()}"
        return self.name.lower()

    def evaluate(self, row: RowContext) -> Any:
        key = self.key
        if key in row:
            return row[key]
        # Unqualified name: resolve against qualified keys if unambiguous.
        if self.table is None:
            suffix = "." + self.name.lower()
            matches = [k for k in row if k.endswith(suffix)]
            if len(matches) == 1:
                return row[matches[0]]
            if len(matches) > 1:
                raise ProgrammingError(f"ambiguous column {self.name!r}")
        raise ProgrammingError(f"unknown column {self.key!r}")

    def references(self) -> Iterator[str]:
        yield self.key


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison with SQL NULL semantics."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ProgrammingError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: RowContext) -> Optional[bool]:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError as exc:
            raise ProgrammingError(
                f"cannot compare {type(left).__name__} with "
                f"{type(right).__name__}"
            ) from exc

    def references(self) -> Iterator[str]:
        yield from self.left.references()
        yield from self.right.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return Comparison(self.op, self.left.bind(params), self.right.bind(params))


@dataclass(frozen=True)
class LogicalAnd(Expression):
    """Three-valued AND."""

    left: Expression
    right: Expression

    def evaluate(self, row: RowContext) -> Optional[bool]:
        left = _as_bool(self.left.evaluate(row))
        if left is False:
            return False
        right = _as_bool(self.right.evaluate(row))
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True

    def references(self) -> Iterator[str]:
        yield from self.left.references()
        yield from self.right.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return LogicalAnd(self.left.bind(params), self.right.bind(params))


@dataclass(frozen=True)
class LogicalOr(Expression):
    """Three-valued OR."""

    left: Expression
    right: Expression

    def evaluate(self, row: RowContext) -> Optional[bool]:
        left = _as_bool(self.left.evaluate(row))
        if left is True:
            return True
        right = _as_bool(self.right.evaluate(row))
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def references(self) -> Iterator[str]:
        yield from self.left.references()
        yield from self.right.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return LogicalOr(self.left.bind(params), self.right.bind(params))


@dataclass(frozen=True)
class LogicalNot(Expression):
    """Three-valued NOT."""

    operand: Expression

    def evaluate(self, row: RowContext) -> Optional[bool]:
        value = _as_bool(self.operand.evaluate(row))
        if value is None:
            return None
        return not value

    def references(self) -> Iterator[str]:
        yield from self.operand.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return LogicalNot(self.operand.bind(params))


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL`` — the only NULL-safe predicate."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: RowContext) -> bool:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negated else is_null

    def references(self) -> Iterator[str]:
        yield from self.operand.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return IsNull(self.operand.bind(params), self.negated)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    choices: Tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, row: RowContext) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        found = False
        saw_null = False
        for choice in self.choices:
            candidate = choice.evaluate(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                found = True
                break
        if found:
            return not self.negated
        if saw_null:
            return None
        return self.negated

    def references(self) -> Iterator[str]:
        yield from self.operand.references()
        for choice in self.choices:
            yield from choice.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return InList(
            self.operand.bind(params),
            tuple(c.bind(params) for c in self.choices),
            self.negated,
        )


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards, case-insensitive.

    Case-insensitivity matches DB2's typical configuration for the
    synopsis tables and is what the paper's form-based queries need
    ("End User Services" vs "end user services").
    """

    operand: Expression
    pattern: Expression
    negated: bool = False

    def evaluate(self, row: RowContext) -> Optional[bool]:
        value = self.operand.evaluate(row)
        pattern = self.pattern.evaluate(row)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise ProgrammingError("LIKE requires text operands")
        result = bool(_like_regex(pattern).match(value))
        return not result if self.negated else result

    def references(self) -> Iterator[str]:
        yield from self.operand.references()
        yield from self.pattern.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return Like(
            self.operand.bind(params), self.pattern.bind(params), self.negated
        )


_LIKE_CACHE: dict = {}


def _like_regex(pattern: str) -> "re.Pattern[str]":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        compiled = re.compile(f"^{regex}$", re.IGNORECASE | re.DOTALL)
        if len(_LIKE_CACHE) < 4096:
            _LIKE_CACHE[pattern] = compiled
    return compiled


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic (+ also concatenates TEXT, like DB2's ||)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ProgrammingError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: RowContext) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        if self.op == "/" and right == 0:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except TypeError as exc:
            raise ProgrammingError(
                f"invalid operands for {self.op!r}: "
                f"{type(left).__name__}, {type(right).__name__}"
            ) from exc

    def references(self) -> Iterator[str]:
        yield from self.left.references()
        yield from self.right.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return Arithmetic(self.op, self.left.bind(params), self.right.bind(params))


_FUNCTIONS = {
    "lower": lambda v: v.lower() if isinstance(v, str) else v,
    "upper": lambda v: v.upper() if isinstance(v, str) else v,
    "length": lambda v: len(v) if v is not None else None,
    "trim": lambda v: v.strip() if isinstance(v, str) else v,
    "abs": lambda v: abs(v) if v is not None else None,
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Scalar function call (LOWER, UPPER, LENGTH, TRIM, ABS)."""

    name: str
    args: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.name.lower() not in _FUNCTIONS:
            raise ProgrammingError(f"unknown function {self.name!r}")
        if len(self.args) != 1:
            raise ProgrammingError(
                f"function {self.name!r} takes exactly one argument"
            )

    def evaluate(self, row: RowContext) -> Any:
        value = self.args[0].evaluate(row)
        if value is None:
            return None
        return _FUNCTIONS[self.name.lower()](value)

    def references(self) -> Iterator[str]:
        for arg in self.args:
            yield from arg.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return FunctionCall(self.name, tuple(a.bind(params) for a in self.args))


def _as_bool(value: Any) -> Optional[bool]:
    if value is None:
        return None
    return bool(value)
