"""Expression AST evaluated against rows (WHERE / SELECT / ORDER BY).

Expressions evaluate against a *row context*: a mapping from column
reference (possibly qualified, ``deals.deal_id``) to value.  NULL
handling follows SQL three-valued logic: comparisons with NULL yield
NULL (represented as None), AND/OR propagate it per the usual truth
tables, and the executor treats a non-True WHERE result as "row
filtered out".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import ProgrammingError

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Parameter",
    "Comparison",
    "LogicalAnd",
    "LogicalOr",
    "LogicalNot",
    "IsNull",
    "InList",
    "Like",
    "Arithmetic",
    "FunctionCall",
    "RowContext",
    "compile_expression",
]

RowContext = Mapping[str, Any]

# A compiled evaluator: (row context, statement params) -> value.
CompiledExpr = Callable[[RowContext, Sequence[Any]], Any]


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, row: RowContext) -> Any:
        """Evaluate against ``row``; None encodes SQL NULL/UNKNOWN."""
        raise NotImplementedError

    def references(self) -> Iterator[str]:
        """Yield column references appearing in this subtree."""
        return iter(())

    def bind(self, params: Sequence[Any]) -> "Expression":
        """Return a copy with :class:`Parameter` placeholders substituted."""
        return self


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: RowContext) -> Any:
        return self.value


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional ``?`` placeholder, substituted at bind time."""

    position: int

    def evaluate(self, row: RowContext) -> Any:
        raise ProgrammingError(
            f"unbound parameter at position {self.position}; "
            "pass params to execute()"
        )

    def bind(self, params: Sequence[Any]) -> Expression:
        if self.position >= len(params):
            raise ProgrammingError(
                f"query expects at least {self.position + 1} parameter(s), "
                f"got {len(params)}"
            )
        return Literal(params[self.position])


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column, optionally qualified with a table alias."""

    name: str
    table: Optional[str] = None

    @property
    def key(self) -> str:
        """Lookup key in the row context."""
        if self.table:
            return f"{self.table.lower()}.{self.name.lower()}"
        return self.name.lower()

    def evaluate(self, row: RowContext) -> Any:
        key = self.key
        if key in row:
            return row[key]
        # Unqualified name: resolve against qualified keys if unambiguous.
        if self.table is None:
            suffix = "." + self.name.lower()
            matches = [k for k in row if k.endswith(suffix)]
            if len(matches) == 1:
                return row[matches[0]]
            if len(matches) > 1:
                raise ProgrammingError(f"ambiguous column {self.name!r}")
        raise ProgrammingError(f"unknown column {self.key!r}")

    def references(self) -> Iterator[str]:
        yield self.key


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison with SQL NULL semantics."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ProgrammingError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: RowContext) -> Optional[bool]:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError as exc:
            raise ProgrammingError(
                f"cannot compare {type(left).__name__} with "
                f"{type(right).__name__}"
            ) from exc

    def references(self) -> Iterator[str]:
        yield from self.left.references()
        yield from self.right.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return Comparison(self.op, self.left.bind(params), self.right.bind(params))


@dataclass(frozen=True)
class LogicalAnd(Expression):
    """Three-valued AND."""

    left: Expression
    right: Expression

    def evaluate(self, row: RowContext) -> Optional[bool]:
        left = _as_bool(self.left.evaluate(row))
        if left is False:
            return False
        right = _as_bool(self.right.evaluate(row))
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True

    def references(self) -> Iterator[str]:
        yield from self.left.references()
        yield from self.right.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return LogicalAnd(self.left.bind(params), self.right.bind(params))


@dataclass(frozen=True)
class LogicalOr(Expression):
    """Three-valued OR."""

    left: Expression
    right: Expression

    def evaluate(self, row: RowContext) -> Optional[bool]:
        left = _as_bool(self.left.evaluate(row))
        if left is True:
            return True
        right = _as_bool(self.right.evaluate(row))
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def references(self) -> Iterator[str]:
        yield from self.left.references()
        yield from self.right.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return LogicalOr(self.left.bind(params), self.right.bind(params))


@dataclass(frozen=True)
class LogicalNot(Expression):
    """Three-valued NOT."""

    operand: Expression

    def evaluate(self, row: RowContext) -> Optional[bool]:
        value = _as_bool(self.operand.evaluate(row))
        if value is None:
            return None
        return not value

    def references(self) -> Iterator[str]:
        yield from self.operand.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return LogicalNot(self.operand.bind(params))


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL`` — the only NULL-safe predicate."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: RowContext) -> bool:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negated else is_null

    def references(self) -> Iterator[str]:
        yield from self.operand.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return IsNull(self.operand.bind(params), self.negated)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    choices: Tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, row: RowContext) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        found = False
        saw_null = False
        for choice in self.choices:
            candidate = choice.evaluate(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                found = True
                break
        if found:
            return not self.negated
        if saw_null:
            return None
        return self.negated

    def references(self) -> Iterator[str]:
        yield from self.operand.references()
        for choice in self.choices:
            yield from choice.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return InList(
            self.operand.bind(params),
            tuple(c.bind(params) for c in self.choices),
            self.negated,
        )


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards, case-insensitive.

    Case-insensitivity matches DB2's typical configuration for the
    synopsis tables and is what the paper's form-based queries need
    ("End User Services" vs "end user services").
    """

    operand: Expression
    pattern: Expression
    negated: bool = False

    def evaluate(self, row: RowContext) -> Optional[bool]:
        value = self.operand.evaluate(row)
        pattern = self.pattern.evaluate(row)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise ProgrammingError("LIKE requires text operands")
        result = bool(_like_regex(pattern).match(value))
        return not result if self.negated else result

    def references(self) -> Iterator[str]:
        yield from self.operand.references()
        yield from self.pattern.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return Like(
            self.operand.bind(params), self.pattern.bind(params), self.negated
        )


_LIKE_CACHE: dict = {}


def _like_regex(pattern: str) -> "re.Pattern[str]":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        compiled = re.compile(f"^{regex}$", re.IGNORECASE | re.DOTALL)
        if len(_LIKE_CACHE) < 4096:
            _LIKE_CACHE[pattern] = compiled
    return compiled


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic (+ also concatenates TEXT, like DB2's ||)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ProgrammingError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: RowContext) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        if self.op == "/" and right == 0:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except TypeError as exc:
            raise ProgrammingError(
                f"invalid operands for {self.op!r}: "
                f"{type(left).__name__}, {type(right).__name__}"
            ) from exc

    def references(self) -> Iterator[str]:
        yield from self.left.references()
        yield from self.right.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return Arithmetic(self.op, self.left.bind(params), self.right.bind(params))


_FUNCTIONS = {
    "lower": lambda v: v.lower() if isinstance(v, str) else v,
    "upper": lambda v: v.upper() if isinstance(v, str) else v,
    "length": lambda v: len(v) if v is not None else None,
    "trim": lambda v: v.strip() if isinstance(v, str) else v,
    "abs": lambda v: abs(v) if v is not None else None,
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Scalar function call (LOWER, UPPER, LENGTH, TRIM, ABS)."""

    name: str
    args: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.name.lower() not in _FUNCTIONS:
            raise ProgrammingError(f"unknown function {self.name!r}")
        if len(self.args) != 1:
            raise ProgrammingError(
                f"function {self.name!r} takes exactly one argument"
            )

    def evaluate(self, row: RowContext) -> Any:
        value = self.args[0].evaluate(row)
        if value is None:
            return None
        return _FUNCTIONS[self.name.lower()](value)

    def references(self) -> Iterator[str]:
        for arg in self.args:
            yield from arg.references()

    def bind(self, params: Sequence[Any]) -> Expression:
        return FunctionCall(self.name, tuple(a.bind(params) for a in self.args))


def _as_bool(value: Any) -> Optional[bool]:
    if value is None:
        return None
    return bool(value)


# ---------------------------------------------------------------------------
# Compilation: lower an Expression tree to one Python closure
# ---------------------------------------------------------------------------


def compile_expression(expression: Expression) -> CompiledExpr:
    """Lower ``expression`` to a closure ``(row, params) -> value``.

    The returned closure evaluates the same three-valued-logic semantics
    as :meth:`Expression.evaluate` but without per-row dataclass
    dispatch, and it reads ``?`` placeholders from ``params`` at call
    time — so one compiled tree serves every execution of a cached
    plan, whatever the bound parameters.

    Each call returns *fresh* closures: a :class:`ColumnRef` closure
    caches its resolved row-context key after the first row, which is
    only sound while the closure stays at one evaluation site (row
    contexts at a given pipeline position share their key set).
    Compile an expression once per site, never share the result across
    sites.

    Unknown :class:`Expression` subclasses (e.g. aggregate calls, which
    the executor handles in its grouping stage) fall back to
    :meth:`~Expression.evaluate`, preserving their error behavior.
    """
    if isinstance(expression, Literal):
        value = expression.value
        return lambda row, params: value

    if isinstance(expression, Parameter):
        position = expression.position

        def _param(row: RowContext, params: Sequence[Any]) -> Any:
            if position >= len(params):
                raise ProgrammingError(
                    f"query expects at least {position + 1} parameter(s), "
                    f"got {len(params)}"
                )
            return params[position]

        return _param

    if isinstance(expression, ColumnRef):
        return _compile_column(expression)

    if isinstance(expression, Comparison):
        comparator = _COMPARATORS[expression.op]
        op = expression.op
        left = compile_expression(expression.left)
        right = compile_expression(expression.right)

        def _compare(row: RowContext, params: Sequence[Any]) -> Optional[bool]:
            a = left(row, params)
            b = right(row, params)
            if a is None or b is None:
                return None
            try:
                return comparator(a, b)
            except TypeError as exc:
                raise ProgrammingError(
                    f"cannot compare {type(a).__name__} with "
                    f"{type(b).__name__}"
                ) from exc

        return _compare

    if isinstance(expression, LogicalAnd):
        left = compile_expression(expression.left)
        right = compile_expression(expression.right)

        def _and(row: RowContext, params: Sequence[Any]) -> Optional[bool]:
            a = _as_bool(left(row, params))
            if a is False:
                return False
            b = _as_bool(right(row, params))
            if b is False:
                return False
            if a is None or b is None:
                return None
            return True

        return _and

    if isinstance(expression, LogicalOr):
        left = compile_expression(expression.left)
        right = compile_expression(expression.right)

        def _or(row: RowContext, params: Sequence[Any]) -> Optional[bool]:
            a = _as_bool(left(row, params))
            if a is True:
                return True
            b = _as_bool(right(row, params))
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False

        return _or

    if isinstance(expression, LogicalNot):
        operand = compile_expression(expression.operand)

        def _not(row: RowContext, params: Sequence[Any]) -> Optional[bool]:
            value = _as_bool(operand(row, params))
            if value is None:
                return None
            return not value

        return _not

    if isinstance(expression, IsNull):
        operand = compile_expression(expression.operand)
        negated = expression.negated

        def _is_null(row: RowContext, params: Sequence[Any]) -> bool:
            is_null = operand(row, params) is None
            return not is_null if negated else is_null

        return _is_null

    if isinstance(expression, InList):
        operand = compile_expression(expression.operand)
        choices = tuple(compile_expression(c) for c in expression.choices)
        negated = expression.negated

        def _in(row: RowContext, params: Sequence[Any]) -> Optional[bool]:
            value = operand(row, params)
            if value is None:
                return None
            saw_null = False
            for choice in choices:
                candidate = choice(row, params)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return _in

    if isinstance(expression, Like):
        operand = compile_expression(expression.operand)
        pattern = compile_expression(expression.pattern)
        negated = expression.negated

        def _like(row: RowContext, params: Sequence[Any]) -> Optional[bool]:
            value = operand(row, params)
            pat = pattern(row, params)
            if value is None or pat is None:
                return None
            if not isinstance(value, str) or not isinstance(pat, str):
                raise ProgrammingError("LIKE requires text operands")
            result = bool(_like_regex(pat).match(value))
            return not result if negated else result

        return _like

    if isinstance(expression, Arithmetic):
        operator = _ARITHMETIC[expression.op]
        op = expression.op
        left = compile_expression(expression.left)
        right = compile_expression(expression.right)

        def _arith(row: RowContext, params: Sequence[Any]) -> Any:
            a = left(row, params)
            b = right(row, params)
            if a is None or b is None:
                return None
            if op == "/" and b == 0:
                return None
            try:
                return operator(a, b)
            except TypeError as exc:
                raise ProgrammingError(
                    f"invalid operands for {op!r}: "
                    f"{type(a).__name__}, {type(b).__name__}"
                ) from exc

        return _arith

    if isinstance(expression, FunctionCall):
        fn = _FUNCTIONS[expression.name.lower()]
        arg = compile_expression(expression.args[0])

        def _call(row: RowContext, params: Sequence[Any]) -> Any:
            value = arg(row, params)
            if value is None:
                return None
            return fn(value)

        return _call

    # Unknown subclass (AggregateCall and future nodes): interpret.
    return lambda row, params: expression.evaluate(row)


def _compile_column(ref: ColumnRef) -> CompiledExpr:
    key = ref.key
    unqualified = ref.table is None
    name = ref.name.lower()
    resolved = [key]  # single-site cache of the matching context key

    def _column(row: RowContext, params: Sequence[Any]) -> Any:
        try:
            return row[resolved[0]]
        except KeyError:
            pass
        if unqualified:
            suffix = "." + name
            matches = [k for k in row if k.endswith(suffix)]
            if len(matches) == 1:
                resolved[0] = matches[0]
                return row[matches[0]]
            if len(matches) > 1:
                raise ProgrammingError(f"ambiguous column {name!r}")
        raise ProgrammingError(f"unknown column {key!r}")

    return _column
