"""Regex-based annotators (Table 1, row 1).

"Simple; easy to implement" but with "limited expressiveness": these
annotators match surface patterns — email addresses, phone numbers,
contract-value bands, ISO dates — and attach normalized feature values.
Domain knowledge can be folded into the patterns (Table 1's suggested
improvement), which :func:`build_contact_annotator` demonstrates by
rejecting phone-like strings with implausible digit counts via the
normalizer.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Optional, Pattern, Sequence

from repro.annotators.base import EilAnnotator
from repro.text.normalize import normalize_email, normalize_phone
from repro.uima.cas import Cas

__all__ = [
    "RegexRule",
    "RegexAnnotator",
    "EMAIL_PATTERN",
    "PHONE_PATTERN",
    "MONEY_BAND_PATTERN",
    "ISO_DATE_PATTERN",
    "build_contact_annotator",
]

EMAIL_PATTERN = re.compile(
    r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b"
)
PHONE_PATTERN = re.compile(
    r"(?:\+?\d{1,2}[-\s.])?(?:\(\d{3}\)\s?|\d{3}[-\s.])\d{3}[-\s.]\d{4}"
)
MONEY_BAND_PATTERN = re.compile(
    r"\b(?:under|over)\s+\d+M\b|\b\d+\s+to\s+\d+M\b", re.IGNORECASE
)
ISO_DATE_PATTERN = re.compile(r"\b\d{4}-\d{2}-\d{2}\b")

# Feature factory: match -> feature dict, or None to reject the match.
FeatureFactory = Callable[[re.Match], Optional[Dict[str, object]]]


class RegexRule:
    """One pattern -> annotation-type rule.

    Args:
        type_name: Annotation type to emit.
        pattern: Compiled regular expression.
        features: Factory turning a match into feature values; returning
            None vetoes the match (domain-knowledge filtering).
    """

    def __init__(
        self,
        type_name: str,
        pattern: Pattern[str],
        features: Optional[FeatureFactory] = None,
    ) -> None:
        self.type_name = type_name
        self.pattern = pattern
        self.features = features or (lambda match: {})


class RegexAnnotator(EilAnnotator):
    """Applies a list of :class:`RegexRule` to the CAS text."""

    def __init__(self, rules: Sequence[RegexRule], name: str = "regex"):
        self.rules = list(rules)
        self.name = name

    def process(self, cas: Cas) -> None:
        for rule in self.rules:
            for match in rule.pattern.finditer(cas.text):
                features = rule.features(match)
                if features is None:
                    continue
                cas.annotate(
                    rule.type_name, match.start(), match.end(), **features
                )


def _email_features(match: re.Match) -> Dict[str, object]:
    return {"address": normalize_email(match.group(0))}


def _phone_features(match: re.Match) -> Optional[Dict[str, object]]:
    normalized = normalize_phone(match.group(0))
    if normalized is None:
        return None
    return {"number": normalized}


def _money_features(match: re.Match) -> Dict[str, object]:
    return {"band": match.group(0)}


def _date_features(match: re.Match) -> Dict[str, object]:
    return {"iso": match.group(0)}


def build_contact_annotator() -> RegexAnnotator:
    """The standard contact-detail annotator: emails, phones, money, dates."""
    return RegexAnnotator(
        [
            RegexRule("eil.Email", EMAIL_PATTERN, _email_features),
            RegexRule("eil.Phone", PHONE_PATTERN, _phone_features),
            RegexRule("eil.Money", MONEY_BAND_PATTERN, _money_features),
            RegexRule("eil.Date", ISO_DATE_PATTERN, _date_features),
        ],
        name="contact-details",
    )
