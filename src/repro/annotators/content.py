"""Content annotators: win strategies, technologies, client references,
and synopsis context fields.

These feed the non-People tabs of the deal synopsis (paper Figure 6):
Win Strategies, Technology Solutions, Client References, and the
Overview fields (customer, industry, consultant, contract term, value).
They are heuristics/structure-based — they read the ``doc.Section`` and
``doc.FormField`` structure annotations the parser produced, the payoff
of structure-preserving parsing (Section 3.3).
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence

from repro.annotators.base import EilAnnotator
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.uima.cas import Cas

__all__ = [
    "WinStrategyAnnotator",
    "TechnologyAnnotator",
    "ClientReferenceAnnotator",
    "ContextFieldAnnotator",
    "CONTEXT_FIELD_NAMES",
]

_STRATEGY_SENTENCE_RE = re.compile(r"Strategy:\s*([^.]+)\.")
_REFERENCE_SENTENCE_RE = re.compile(
    r"((?:Reference:|Client visit|Analyst citation)[^.]+)\."
)

# Overview-form fields promoted into the structured business context.
CONTEXT_FIELD_NAMES = (
    "Deal Name", "Customer", "Industry", "Out Sourcing Consultant",
    "Geography", "Contract Term Start", "Term Duration Months",
    "Total Contract Value", "International",
)


class WinStrategyAnnotator(EilAnnotator):
    """Extracts win-strategy statements from strategy sections."""

    name = "win-strategies"

    def process(self, cas: Cas) -> None:
        spans = self._strategy_spans(cas)
        for begin, end in spans:
            for match in _STRATEGY_SENTENCE_RE.finditer(cas.text[begin:end]):
                cas.annotate(
                    "eil.WinStrategy",
                    begin + match.start(1),
                    begin + match.end(1),
                    text=match.group(1).strip(),
                )

    def _strategy_spans(self, cas: Cas) -> List[tuple]:
        if "doc.Section" not in cas.type_system:
            return [(0, len(cas.text))]
        sections = [
            (s.begin, s.end)
            for s in cas.select("doc.Section")
            if "strateg" in str(s.get("heading", "")).lower()
        ]
        return sections or [(0, len(cas.text))]


class TechnologyAnnotator(EilAnnotator):
    """Marks taxonomy technology terms, linking them to their tower."""

    name = "technologies"

    def __init__(self, taxonomy: ServiceTaxonomy) -> None:
        self.taxonomy = taxonomy
        term_to_towers: Dict[str, List[str]] = {}
        for node in taxonomy.all_nodes:
            for tech in node.technologies:
                term_to_towers.setdefault(tech.lower(), []).append(node.name)
        self._term_to_towers = term_to_towers
        escaped = sorted(
            (re.escape(t) for t in term_to_towers), key=len, reverse=True
        )
        self._pattern = re.compile(
            r"\b(?:" + "|".join(escaped) + r")\b", re.IGNORECASE
        ) if escaped else None

    def process(self, cas: Cas) -> None:
        if self._pattern is None:
            return
        for match in self._pattern.finditer(cas.text):
            term = match.group(0)
            towers = self._term_to_towers.get(term.lower(), [])
            cas.annotate(
                "eil.Technology",
                match.start(),
                match.end(),
                term=term,
                # A technology may belong to several services; keep the
                # first registered (deterministic) and let the CPE refine
                # using the deal's actual scope.
                tower=towers[0] if towers else "",
            )


class ClientReferenceAnnotator(EilAnnotator):
    """Extracts client-reference statements."""

    name = "client-references"

    def process(self, cas: Cas) -> None:
        for match in _REFERENCE_SENTENCE_RE.finditer(cas.text):
            cas.annotate(
                "eil.ClientReference",
                match.start(1),
                match.end(1),
                text=match.group(1).strip(),
            )


class ContextFieldAnnotator(EilAnnotator):
    """Promotes overview-form fields into ``eil.ContextField``.

    Reads the parser's ``doc.FormField`` structure annotations — only
    non-empty fields whose names appear in :data:`CONTEXT_FIELD_NAMES`
    become context, so noise forms cannot pollute the synopsis.
    """

    name = "context-fields"

    def __init__(self, field_names: Sequence[str] = CONTEXT_FIELD_NAMES):
        self._wanted = {n.lower() for n in field_names}

    def process(self, cas: Cas) -> None:
        if "doc.FormField" not in cas.type_system:
            return
        for field in cas.select("doc.FormField"):
            name = str(field.get("name", ""))
            if name.lower() not in self._wanted or field.get("is_empty"):
                continue
            covered = cas.covered_text(field)
            # The span covers "Name: value"; strip the label part.
            value = covered.partition(":")[2].strip() or covered
            cas.annotate(
                "eil.ContextField",
                field.begin,
                field.end,
                name=name,
                value=value,
            )
