"""Learned candidate identification (the paper's stated future work).

Section 3.2.1: *"We could further leverage machine learning techniques
to help us identify the candidates for the annotator in order to
improve the quality."*  The shipped system uses hand-written candidacy
rules (:func:`repro.annotators.social.candidate_document`); this module
trains a Naive Bayes model to make the same decision from document text
and metadata, so the rule can be replaced — or audited — by a learned
one.

Usage::

    selector = LearnedCandidateSelector()
    selector.train_from_rule(cases, candidate_document)   # bootstrap
    aggregate = AggregateAnalysisEngine(
        "social", [(SocialNetworkingAnnotator(), selector.predicate())]
    )
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.annotators.classifier import NaiveBayesClassifier
from repro.errors import AnnotatorError
from repro.uima.cas import Cas

__all__ = ["LearnedCandidateSelector"]


def _featurize(cas: Cas) -> str:
    """The text the selector learns from: metadata tokens + the title.

    Candidacy is a property of what a document *is* (genre, naming
    conventions), not of its full content, so featurization sticks to
    the doc-type tag, the title words, and the first line — adding the
    whole body would drown the decisive title tokens in topical noise.
    """
    first_line = cas.text.split("\n", 1)[0][:120]
    # The doc-type token is repeated so it outweighs incidental title
    # tokens (deal names, numbering) under multinomial Naive Bayes.
    doctype = f"doctype_{cas.metadata.get('doc_type', 'unknown')}"
    return " ".join(
        (
            doctype, doctype, doctype,
            str(cas.metadata.get("title", "")),
            first_line,
        )
    )


class LearnedCandidateSelector:
    """Learns which documents are worth running an annotator on."""

    def __init__(self, classifier: Optional[NaiveBayesClassifier] = None):
        self.classifier = classifier or NaiveBayesClassifier()
        self._trained = False

    def train(
        self, examples: Iterable[tuple]
    ) -> None:
        """Train on ``(cas, is_candidate)`` pairs."""
        batch: List[tuple] = []
        for cas, is_candidate in examples:
            label = "candidate" if is_candidate else "skip"
            batch.append((_featurize(cas), label))
        if not batch:
            raise AnnotatorError("no training examples")
        self.classifier.train(batch)
        self._trained = True

    def train_from_rule(
        self,
        cases: Iterable[Cas],
        rule: Callable[[Cas], bool],
    ) -> int:
        """Bootstrap from an existing hand-written candidacy rule.

        This is the practical migration path the paper implies: use the
        deployed rule as a silver-standard labeler, then extend the
        training set with human corrections.  Returns the example count.
        """
        examples = [(cas, rule(cas)) for cas in cases]
        self.train(examples)
        return len(examples)

    def is_candidate(self, cas: Cas) -> bool:
        """Learned candidacy decision."""
        if not self._trained:
            raise AnnotatorError("selector is not trained")
        return self.classifier.predict(_featurize(cas)) == "candidate"

    def predicate(self) -> Callable[[Cas], bool]:
        """A flow-control predicate for AggregateAnalysisEngine."""
        return self.is_candidate

    def agreement_with(
        self, cases: Iterable[Cas], rule: Callable[[Cas], bool]
    ) -> float:
        """Fraction of documents where the model matches the rule."""
        cases = list(cases)
        if not cases:
            return 1.0
        matches = sum(
            1 for cas in cases if self.is_candidate(cas) == rule(cas)
        )
        return matches / len(cases)
