"""EIL annotators: the five Table 1 types plus the Fig. 3 social annotator."""

from repro.annotators.base import EIL_TYPE_NAMES, EilAnnotator, register_eil_types
from repro.annotators.classifier import (
    NaiveBayesClassifier,
    SectionClassifierAnnotator,
)
from repro.annotators.candidates import LearnedCandidateSelector
from repro.annotators.composite import build_eil_pipeline
from repro.annotators.cooccurrence import CooccurrenceSocialAnnotator
from repro.annotators.content import (
    CONTEXT_FIELD_NAMES,
    ClientReferenceAnnotator,
    ContextFieldAnnotator,
    TechnologyAnnotator,
    WinStrategyAnnotator,
)
from repro.annotators.heuristics import PersonHeuristicAnnotator
from repro.annotators.ontology import OntologyServiceAnnotator
from repro.annotators.regex import (
    RegexAnnotator,
    RegexRule,
    build_contact_annotator,
)
from repro.annotators.scope import (
    ScopeAggregator,
    ScopeEntry,
    scope_candidate_document,
)
from repro.annotators.social import (
    CATEGORY_FOR_ROLE,
    ContactRecord,
    ContactRollup,
    SocialNetworkingAnnotator,
    candidate_document,
)

__all__ = [
    "EilAnnotator",
    "register_eil_types",
    "EIL_TYPE_NAMES",
    "RegexAnnotator",
    "RegexRule",
    "build_contact_annotator",
    "PersonHeuristicAnnotator",
    "OntologyServiceAnnotator",
    "NaiveBayesClassifier",
    "SectionClassifierAnnotator",
    "WinStrategyAnnotator",
    "TechnologyAnnotator",
    "ClientReferenceAnnotator",
    "ContextFieldAnnotator",
    "CONTEXT_FIELD_NAMES",
    "SocialNetworkingAnnotator",
    "ContactRecord",
    "ContactRollup",
    "CATEGORY_FOR_ROLE",
    "candidate_document",
    "ScopeAggregator",
    "ScopeEntry",
    "scope_candidate_document",
    "build_eil_pipeline",
    "CooccurrenceSocialAnnotator",
    "LearnedCandidateSelector",
]
