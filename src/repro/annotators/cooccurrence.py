"""The "blob of text" alternative to the social annotator.

Paper Section 3.2.1 sketches an alternative EIL chose *not* to adopt:
*"use advanced entity analytics to identify names and use patterns to
annotate phone numbers, emails etc., and then use co-occurrence
techniques to connect them up"* — and argues that exploiting document
structure "would perform better than just blindly applying patterns
interpreting the entire data as a blob of text."

This module implements that alternative so the claim can be tested
(see ``benchmarks/bench_structure_ablation.py``): a pattern-based
entity recognizer over flat text (capitalized-name heuristic + the
regex contact patterns) followed by window-based co-occurrence linking
of names to emails, phones and role words.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.annotators.base import EilAnnotator
from repro.annotators.heuristics import ROLE_TERM_RE
from repro.annotators.regex import EMAIL_PATTERN, PHONE_PATTERN
from repro.text.normalize import (
    normalize_email,
    normalize_person_name,
    normalize_phone,
    normalize_role,
)
from repro.uima.cas import Cas

__all__ = ["CooccurrenceSocialAnnotator"]

# "Advanced entity analytics" stand-in: capitalized bigrams that are not
# sentence-initial common words.  Deliberately structure-blind.
_NAME_RE = re.compile(
    r"\b([A-Z][a-z]{2,})\s+([A-Z][a-z]{2,}(?:-[A-Z][a-z]+)?)\b"
)
_ROLE_RE = re.compile(ROLE_TERM_RE)

# Words that commonly start capitalized bigrams without being names —
# the precision leak the paper predicts for the blob approach.
_NOT_NAMES = frozenset(
    """
    The This That These Those There Here Standard Service Services
    Customer Client Delivery Contract Weekly Meeting Action Travel
    Storage Network Security Deal Total Win Technology Technical
    Disaster End User Data Human Application Asset Procurement
    Mainframe Midrange Voice Infrastructure Compliance Help Desk
    Solution Industry Phase Options Additional Scope
    """.split()
)


class CooccurrenceSocialAnnotator(EilAnnotator):
    """Structure-blind person extraction via windowed co-occurrence.

    Args:
        window: Character distance within which an email / phone / role
            is linked to a detected name.
    """

    name = "cooccurrence-social"

    def __init__(self, window: int = 120) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window

    def process(self, cas: Cas) -> None:
        text = cas.text
        names: List[Tuple[int, int, str]] = []
        for match in _NAME_RE.finditer(text):
            first, last = match.group(1), match.group(2)
            if first in _NOT_NAMES or last in _NOT_NAMES:
                continue
            names.append((match.start(), match.end(), match.group(0)))
        if not names:
            return
        emails = [
            (m.start(), normalize_email(m.group(0)))
            for m in EMAIL_PATTERN.finditer(text)
        ]
        phones = []
        for match in PHONE_PATTERN.finditer(text):
            normalized = normalize_phone(match.group(0))
            if normalized:
                phones.append((match.start(), normalized))
        roles = [
            (m.start(), normalize_role(m.group(0)))
            for m in _ROLE_RE.finditer(text)
        ]
        for begin, end, surface in names:
            features: Dict[str, object] = {
                "name": normalize_person_name(surface),
                "source": "cooccurrence",
            }
            email = self._nearest(emails, begin)
            if email is not None:
                features["email"] = email
            phone = self._nearest(phones, begin)
            if phone is not None:
                features["phone"] = phone
            role = self._nearest(roles, begin)
            if role is not None:
                features["role"] = role
            cas.annotate("eil.Person", begin, end, **features)

    def _nearest(
        self, items: List[Tuple[int, str]], position: int
    ) -> Optional[str]:
        """Closest item within the window, else None."""
        best_value: Optional[str] = None
        best_distance = self.window + 1
        for item_position, value in items:
            distance = abs(item_position - position)
            if distance < best_distance:
                best_distance = distance
                best_value = value
        return best_value
