"""Scope aggregation CPE (paper Section 3.4's worked example).

*"Scopes of business activities are first extracted by a document-level
annotator and then fed into a CPE, which aggregates them across a
business activity, counts their occurrences with regard to the activity
and identifies the ones that can be regarded as its scopes."*

:class:`ScopeAggregator` consumes the ``eil.Service`` annotations the
ontology annotator produced, but only from *candidate* documents
(scope decks and technology-solution write-ups — minutes, emails and
boilerplate appendices are not scope evidence), sums their evidence
weights per (deal, service), and declares a service in scope when its
total weight reaches the significance threshold.  The surviving services
are ordered by weight — the paper's Figure 5 tower ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.uima.cas import Cas
from repro.uima.cpe import CasConsumer

__all__ = ["ScopeEntry", "ScopeAggregator", "scope_candidate_document"]


def scope_candidate_document(cas: Cas) -> bool:
    """Is this document scope evidence?

    Candidates: presentations (scope decks live there) and technology-
    solution documents.  Everything else mentions services too freely.
    """
    doc_type = cas.metadata.get("doc_type")
    if doc_type == "presentation":
        return True
    title = str(cas.metadata.get("title", "")).lower()
    return doc_type == "text" and "technology solution" in title


@dataclass(frozen=True)
class ScopeEntry:
    """One service judged to be in a deal's scope.

    Attributes:
        canonical: Canonical service name.
        tower: Its top-level tower.
        weight: Accumulated evidence weight (drives ordering).
        mentions: Raw mention count across candidate documents.
    """

    canonical: str
    tower: str
    weight: float
    mentions: int


class ScopeAggregator(CasConsumer):
    """Counts service evidence per deal; thresholds into scopes.

    Args:
        min_weight: Significance threshold; a service below it is not
            reported as scope even if mentioned (filters passing
            mentions and weakly-phrased tails).
    """

    name = "scope-aggregator"

    def __init__(self, min_weight: float = 4.0) -> None:
        self.min_weight = min_weight
        self._weights: Dict[Tuple[str, str], float] = {}
        self._mentions: Dict[Tuple[str, str], int] = {}
        self._towers: Dict[str, str] = {}

    def process_cas(self, cas: Cas) -> None:
        if not scope_candidate_document(cas):
            return
        deal_id = str(cas.metadata.get("deal_id", ""))
        if not deal_id:
            return
        for service in cas.select("eil.Service"):
            canonical = str(service.get("canonical", ""))
            if not canonical:
                continue
            key = (deal_id, canonical)
            self._weights[key] = (
                self._weights.get(key, 0.0) + float(service.get("weight", 1.0))
            )
            self._mentions[key] = self._mentions.get(key, 0) + 1
            self._towers[canonical] = str(service.get("tower", canonical))

    def collection_process_complete(self) -> Dict[str, List[ScopeEntry]]:
        """deal_id -> significant scopes, most significant first."""
        by_deal: Dict[str, List[ScopeEntry]] = {}
        for (deal_id, canonical), weight in self._weights.items():
            if weight < self.min_weight:
                continue
            by_deal.setdefault(deal_id, []).append(
                ScopeEntry(
                    canonical=canonical,
                    tower=self._towers.get(canonical, canonical),
                    weight=weight,
                    mentions=self._mentions[(deal_id, canonical)],
                )
            )
        for entries in by_deal.values():
            entries.sort(key=lambda e: (-e.weight, e.canonical))
        return by_deal
