"""The Social Networking Annotator (paper Figure 3).

Two cooperating pieces implement the algorithm:

* :class:`SocialNetworkingAnnotator` — the *document-level* steps (3-7):
  identify candidate documents, extract person mentions from roster
  spreadsheets (structure-aware: cells keyed by column header), from
  service-detail forms (named TSA fields), from email headers, and from
  prose (delegating to the heuristics annotator's output), inferring
  missing fields from email-address conventions (step 6).
* :class:`ContactRollup` — the *collection-level* steps (8-14) as a CAS
  consumer: roll annotations up per business activity, de-duplicate
  (step 10), normalize fields (step 12), validate and refresh against
  the intranet personnel directory (step 13), and emit the per-deal
  contact lists the organized-information layer stores (step 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.annotators.base import EilAnnotator
from repro.errors import DatabaseError, TransientError
from repro.intranet.directory import PersonnelDirectory
from repro.obs import get_registry
from repro.text.normalize import (
    name_key,
    normalize_email,
    normalize_person_name,
    normalize_phone,
    normalize_role,
    person_from_email,
)
from repro.uima.cas import Cas
from repro.uima.cpe import CasConsumer

__all__ = [
    "SocialNetworkingAnnotator",
    "ContactRecord",
    "ContactRollup",
    "CATEGORY_FOR_ROLE",
    "candidate_document",
]

# Business heuristic: People-tab category by canonical role (paper
# Section 4, Meta-query 2: "core deal team, technical support team,
# delivery team, client team, third party consultant").
CATEGORY_FOR_ROLE: Dict[str, str] = {
    "Client Solution Executive": "core deal team",
    "Sales Leader": "core deal team",
    "Engagement Manager": "core deal team",
    "Pricer": "core deal team",
    "Financial Analyst": "core deal team",
    "Contracts Lead": "core deal team",
    "Legal Counsel": "core deal team",
    "Technical Solution Architect": "technical support team",
    "Cross Tower Technical Solution Architect": "technical support team",
    "Security Architect": "technical support team",
    "Delivery Project Executive": "delivery team",
    "Transition Manager": "delivery team",
    "HR Lead": "delivery team",
    "Chief Information Officer": "client team",
    "Procurement Director": "client team",
    "IT Director": "client team",
    "Client Executive": "client team",
    "Third Party Consultant": "third party consultant",
}

_ROSTER_HEADERS = {"name", "role", "email", "phone", "organization"}
_PERSON_FORM_FIELDS = {"cross tower tsa", "mainframe tsa", "lead tsa"}
# Fig. 3 step 2: documents excluded irrespective of candidacy —
# boilerplate appendices produce only false contacts.
_EXCLUDED_TITLE_MARKERS = ("appendix",)


def candidate_document(cas: Cas) -> bool:
    """Fig. 3 steps 1-2: is this document worth social analysis?

    Candidates are rosters (spreadsheets), forms, and emails; documents
    whose titles mark them as boilerplate are excluded outright.
    """
    title = str(cas.metadata.get("title", "")).lower()
    if any(marker in title for marker in _EXCLUDED_TITLE_MARKERS):
        return False
    return cas.metadata.get("doc_type") in (
        "spreadsheet", "form", "email", "text", "presentation",
    )


class SocialNetworkingAnnotator(EilAnnotator):
    """Document-level person extraction (Fig. 3 steps 3-7)."""

    name = "social-networking"

    def process(self, cas: Cas) -> None:
        if not candidate_document(cas):
            return
        doc_type = cas.metadata.get("doc_type")
        if doc_type == "spreadsheet":
            self._process_roster(cas)
        elif doc_type == "form":
            self._process_form(cas)
        elif doc_type == "email":
            self._process_email(cas)
        # Prose person mentions are the heuristics annotator's job; the
        # aggregate pipeline runs it alongside this engine.

    # -- rosters -----------------------------------------------------------

    def _process_roster(self, cas: Cas) -> None:
        if "doc.Cell" not in cas.type_system:
            return
        rows: Dict[Tuple[str, int], Dict[str, "object"]] = {}
        for cell in cas.select("doc.Cell"):
            header = str(cell.get("header", "")).lower()
            if header not in _ROSTER_HEADERS:
                continue
            key = (str(cell.get("sheet")), int(cell.get("row", 0)))
            rows.setdefault(key, {})[header] = cell
        for row_cells in rows.values():
            name_cell = row_cells.get("name")
            if name_cell is None:
                continue
            name_text = cas.covered_text(name_cell).strip()
            if not name_text:
                continue
            features = {"name": normalize_person_name(name_text),
                        "source": "roster"}
            email_cell = row_cells.get("email")
            email_text = (
                cas.covered_text(email_cell).strip() if email_cell else ""
            )
            if email_text:
                features["email"] = normalize_email(email_text)
            role_cell = row_cells.get("role")
            if role_cell is not None:
                role_text = cas.covered_text(role_cell).strip()
                if role_text:
                    features["role"] = normalize_role(role_text)
            phone_cell = row_cells.get("phone")
            if phone_cell is not None:
                phone = normalize_phone(cas.covered_text(phone_cell))
                if phone:
                    features["phone"] = phone
            org_cell = row_cells.get("organization")
            org_text = (
                cas.covered_text(org_cell).strip() if org_cell else ""
            )
            if org_text:
                features["organization"] = org_text
            # Step 6: infer missing fields from the email convention.
            if email_text and "organization" not in features:
                inferred = person_from_email(email_text)
                if inferred is not None:
                    features.setdefault("organization", inferred[1])
            cas.annotate(
                "eil.Person", name_cell.begin, name_cell.end, **features
            )

    # -- forms ---------------------------------------------------------------

    def _process_form(self, cas: Cas) -> None:
        if "doc.FormField" not in cas.type_system:
            return
        for form_field in cas.select("doc.FormField"):
            field_name = str(form_field.get("name", "")).lower()
            if field_name not in _PERSON_FORM_FIELDS:
                continue
            if form_field.get("is_empty"):
                continue
            covered = cas.covered_text(form_field)
            value = covered.partition(":")[2].strip()
            if not value:
                continue
            cas.annotate(
                "eil.Person",
                form_field.begin,
                form_field.end,
                name=normalize_person_name(value),
                role=normalize_role(str(form_field.get("name"))),
                source="form",
            )

    # -- emails --------------------------------------------------------------

    def _process_email(self, cas: Cas) -> None:
        if "doc.EmailHeader" not in cas.type_system:
            return
        for header in cas.select("doc.EmailHeader"):
            if header.get("kind") not in ("from", "to"):
                continue
            for address in cas.covered_text(header).split(","):
                address = normalize_email(address)
                if "@" not in address or address.startswith("sales-dl@"):
                    continue
                inferred = person_from_email(address)
                features = {"email": address, "source": "email"}
                if inferred is not None:
                    features["name"] = inferred[0]
                    features["organization"] = inferred[1]
                cas.annotate(
                    "eil.Person", header.begin, header.end, **features
                )


@dataclass
class ContactRecord:
    """One de-duplicated, normalized, validated contact (Fig. 3 output).

    Attributes:
        deal_id: Business activity the contact belongs to.
        name: Canonical display name.
        email: Best-known email ("" when unknown).
        phone: Best-known phone ("" when unknown).
        organization: Employer.
        role: Canonical role ("" when unknown).
        category: People-tab grouping derived from the role.
        mention_count: How many annotations merged into this record.
        validated: True when the intranet directory confirmed the person.
        active: Directory active flag (True when unknown).
    """

    deal_id: str
    name: str
    email: str = ""
    phone: str = ""
    organization: str = ""
    role: str = ""
    category: str = "other"
    mention_count: int = 1
    validated: bool = False
    active: bool = True


class ContactRollup(CasConsumer):
    """Collection-level steps of Fig. 3 (8-14)."""

    name = "contact-rollup"

    def __init__(self, directory: Optional[PersonnelDirectory] = None):
        self.directory = directory
        self._raw: List[ContactRecord] = []

    def process_cas(self, cas: Cas) -> None:
        """Step 8: write annotations into the roll-up."""
        deal_id = str(cas.metadata.get("deal_id", ""))
        if not deal_id:
            return
        for person in cas.select("eil.Person"):
            name = str(person.get("name", "")).strip()
            email = str(person.get("email", "")).strip()
            if not name and not email:
                continue
            role = str(person.get("role", "")).strip()
            self._raw.append(
                ContactRecord(
                    deal_id=deal_id,
                    name=name,
                    email=email,
                    phone=str(person.get("phone", "")).strip(),
                    organization=str(
                        person.get("organization", "")
                    ).strip(),
                    role=role,
                    category=CATEGORY_FOR_ROLE.get(role, "other"),
                )
            )

    def collection_process_complete(self) -> Dict[str, List[ContactRecord]]:
        """Steps 9-13: de-duplicate, normalize, validate; return by deal."""
        by_deal: Dict[str, Dict[str, ContactRecord]] = {}
        for record in self._raw:
            merged = by_deal.setdefault(record.deal_id, {})
            key = self._dedup_key(record)
            existing = merged.get(key)
            if existing is None:
                merged[key] = record
            else:
                self._merge(existing, record)
        results: Dict[str, List[ContactRecord]] = {}
        for deal_id, contacts in by_deal.items():
            validated = [self._validate(c) for c in contacts.values()]
            validated.sort(
                key=lambda c: (-c.mention_count, c.category, c.name)
            )
            results[deal_id] = validated
        return results

    @staticmethod
    def _dedup_key(record: ContactRecord) -> str:
        # Email is the strongest identity; fall back to the name key.
        if record.email:
            return f"email:{record.email}"
        return f"name:{name_key(record.name)}"

    @staticmethod
    def _merge(target: ContactRecord, other: ContactRecord) -> None:
        """Prefer filled fields; count mentions (step 10's priorities)."""
        target.mention_count += other.mention_count
        if not target.name and other.name:
            target.name = other.name
        if not target.phone and other.phone:
            target.phone = other.phone
        if not target.organization and other.organization:
            target.organization = other.organization
        if not target.role and other.role:
            target.role = other.role
            target.category = CATEGORY_FOR_ROLE.get(other.role, "other")

    def _validate(self, record: ContactRecord) -> ContactRecord:
        """Step 13: refresh from the personnel directory.

        The refresh is enrichment, not extraction: when the directory's
        backing store is down (its lookups are Database-backed and
        subject to the ``db`` fault point), the contact stands as
        extracted — unvalidated but present — rather than failing the
        whole rollup.
        """
        if self.directory is None:
            return record
        try:
            directory_record = None
            if record.email:
                directory_record = self.directory.lookup_email(
                    record.email
                )
            if directory_record is None and record.name:
                matches = self.directory.lookup_name(record.name)
                if len(matches) == 1:
                    directory_record = matches[0]
        except (DatabaseError, TransientError):
            get_registry().inc("contacts.directory_refresh_skipped")
            return record
        if directory_record is not None:
            record.validated = True
            record.active = directory_record.active
            record.name = directory_record.full_name
            record.email = record.email or directory_record.email
            # The directory's phone is authoritative (step 13 "update").
            if directory_record.phone:
                record.phone = directory_record.phone
            if directory_record.organization:
                record.organization = directory_record.organization
        return record
