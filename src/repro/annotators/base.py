"""Shared EIL annotation types and annotator base class.

All EIL annotators add annotations in the ``eil.*`` namespace; document
structure lives in ``doc.*`` (see :mod:`repro.docmodel.parsers`).  The
type definitions here are the contract between document-level annotators
and the collection-processing consumers that aggregate their output.
"""

from __future__ import annotations

from repro.uima.engine import AnalysisEngine
from repro.uima.typesystem import TypeSystem

__all__ = ["register_eil_types", "EilAnnotator", "EIL_TYPE_NAMES"]

EIL_TYPE_NAMES = (
    "eil.Service",
    "eil.Person",
    "eil.Email",
    "eil.Phone",
    "eil.Money",
    "eil.Date",
    "eil.Technology",
    "eil.WinStrategy",
    "eil.ClientReference",
    "eil.ContextField",
)

_DEFINITIONS = {
    # A mention of a service from the taxonomy.  ``canonical`` is the
    # resolved service name, ``tower`` its top-level ancestor, and
    # ``weight`` the evidence strength the producing annotator assigns
    # (scope decks outweigh passing mentions).
    "eil.Service": ["canonical", "surface", "tower", "weight"],
    # A person mention with whatever fields were recoverable.
    "eil.Person": [
        "name", "email", "phone", "organization", "role", "category",
        "source",
    ],
    "eil.Email": ["address"],
    "eil.Phone": ["number"],
    "eil.Money": ["band"],
    "eil.Date": ["iso"],
    "eil.Technology": ["term", "tower"],
    "eil.WinStrategy": ["text"],
    "eil.ClientReference": ["text"],
    # A structured synopsis field extracted from overview forms.
    "eil.ContextField": ["name", "value"],
}


def register_eil_types(type_system: TypeSystem) -> TypeSystem:
    """Register all ``eil.*`` annotation types (idempotent)."""
    for name, features in _DEFINITIONS.items():
        if name not in type_system:
            type_system.define(name, features)
    return type_system


class EilAnnotator(AnalysisEngine):
    """Base class wiring EIL type registration into every annotator."""

    def initialize_types(self, type_system: TypeSystem) -> None:
        register_eil_types(type_system)
