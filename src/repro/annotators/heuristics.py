"""Heuristics-based annotators (Table 1, row 2).

"Quickly identifying relevant pieces of information" via ad-hoc,
data-set-dependent rules.  The person-mention heuristic encodes how
people appear in business prose and semi-structured lines:

* ``<Role>: <Name>`` — form/heading style ("Lead TSA: Jane Doe"),
* ``<Name> is the <Role>`` / ``<Name>, our <Role>,`` — prose style,
* ``<Name> (<Role>)`` — roster shorthand.

As Table 1 warns, these are "highly dependent on the data sets": they
are tuned to engagement-workbook conventions and would need re-tuning
elsewhere, which is the documented limitation this row trades away for
implementation speed.
"""

from __future__ import annotations

import re
from typing import Tuple

from repro.annotators.base import EilAnnotator
from repro.text.normalize import normalize_person_name, normalize_role
from repro.uima.cas import Cas

__all__ = ["PersonHeuristicAnnotator", "ROLE_TERM_RE"]

# Role vocabulary the heuristics anchor on (acronyms and full names).
_ROLE_TERMS = (
    "CSE", "TSA", "DPE", "EM", "CE",
    "Cross Tower TSA", "cross tower TSA", "Mainframe TSA", "Lead TSA",
    "Client Solution Executive", "Technical Solution Architect",
    "Cross Tower Technical Solution Architect",
    "Delivery Project Executive", "Engagement Manager", "Sales Leader",
    "Pricer", "Financial Analyst", "Contracts Lead", "Transition Manager",
    "Client Executive", "Chief Information Officer", "IT Director",
    "Procurement Director",
)
ROLE_TERM_RE = (
    "(?:" + "|".join(
        re.escape(t) for t in sorted(_ROLE_TERMS, key=len, reverse=True)
    ) + ")"
)

# A capitalized first-last name, optionally with a middle initial.
_NAME = r"[A-Z][a-z]+(?:\s[A-Z]\.)?\s[A-Z][a-z]+(?:-[A-Z][a-z]+)?"

_PATTERNS: Tuple[Tuple[re.Pattern, str, str], ...] = (
    # Role: Name   (groups: role, name).  The separator must stay on one
    # line: an empty "Lead TSA:" field followed by the next field's
    # label must not be read as a person.
    (re.compile(rf"({ROLE_TERM_RE})[ \t]*[:\-][ \t]*({_NAME})"),
     "role", "name"),
    # Name is/was the Role
    (re.compile(rf"({_NAME})\s+(?:is|was|will be)\s+(?:the\s+|our\s+)?"
                rf"({ROLE_TERM_RE})"), "name", "role"),
    # Name (Role)
    (re.compile(rf"({_NAME})\s*\(({ROLE_TERM_RE})\)"), "name", "role"),
    # Name, our Role,
    (re.compile(rf"({_NAME}),\s+(?:our|the)\s+({ROLE_TERM_RE})"),
     "name", "role"),
)


class PersonHeuristicAnnotator(EilAnnotator):
    """Finds person+role pairs in free text via the patterns above."""

    name = "person-heuristics"

    def process(self, cas: Cas) -> None:
        seen_spans: set = set()
        for pattern, first_kind, _second_kind in _PATTERNS:
            for match in pattern.finditer(cas.text):
                if first_kind == "role":
                    role_text, name_text = match.group(1), match.group(2)
                    name_start = match.start(2)
                    name_end = match.end(2)
                else:
                    name_text, role_text = match.group(1), match.group(2)
                    name_start = match.start(1)
                    name_end = match.end(1)
                key = (name_start, name_end)
                if key in seen_spans:
                    continue
                seen_spans.add(key)
                cas.annotate(
                    "eil.Person",
                    name_start,
                    name_end,
                    name=normalize_person_name(name_text),
                    role=normalize_role(role_text),
                    source="heuristic",
                )
