"""Composite annotator (Table 1, row 5): the standard EIL pipeline.

Assembles the primitive annotators — regex contact details, ontology
services, heuristics person mentions, social networking, technologies,
win strategies, client references, context fields — into one aggregate
with the flow control EIL uses (social analysis only on candidate
documents, per paper Fig. 3 steps 1-2).
"""

from __future__ import annotations

from typing import Optional

from repro.annotators.classifier import (
    NaiveBayesClassifier,
    SectionClassifierAnnotator,
)
from repro.annotators.content import (
    ClientReferenceAnnotator,
    ContextFieldAnnotator,
    TechnologyAnnotator,
    WinStrategyAnnotator,
)
from repro.annotators.heuristics import PersonHeuristicAnnotator
from repro.annotators.ontology import OntologyServiceAnnotator
from repro.annotators.regex import build_contact_annotator
from repro.annotators.social import SocialNetworkingAnnotator, candidate_document
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.uima.engine import AggregateAnalysisEngine

__all__ = ["build_eil_pipeline"]


def build_eil_pipeline(
    taxonomy: ServiceTaxonomy,
    strategy_classifier: Optional[NaiveBayesClassifier] = None,
) -> AggregateAnalysisEngine:
    """The full document-level EIL annotation pipeline.

    Args:
        taxonomy: Services taxonomy for the ontology and technology
            annotators.
        strategy_classifier: Optional trained classifier; when given, a
            classifier-based win-strategy annotator runs *instead of*
            the pattern-based one (Table 1's classifier row in action).
    """
    strategy_engine = (
        SectionClassifierAnnotator(
            strategy_classifier, positive_label="strategy",
            name="win-strategies",
        )
        if strategy_classifier is not None
        else WinStrategyAnnotator()
    )
    return AggregateAnalysisEngine(
        "eil-pipeline",
        [
            build_contact_annotator(),
            OntologyServiceAnnotator(taxonomy),
            PersonHeuristicAnnotator(),
            (SocialNetworkingAnnotator(), candidate_document),
            TechnologyAnnotator(taxonomy),
            strategy_engine,
            ClientReferenceAnnotator(),
            ContextFieldAnnotator(),
        ],
    )
