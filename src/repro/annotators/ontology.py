"""Ontology-based annotator (Table 1, row 3): service mentions.

Walks the :class:`~repro.corpus.taxonomy.ServiceTaxonomy` and marks
every surface form (canonical name, acronym, alias) found in the text as
an ``eil.Service`` annotation carrying the resolved canonical name and
top-level tower.  Matching is longest-form-first so "Customer Service
Center" wins over a hypothetical shorter overlap, and acronyms are
matched case-sensitively (``CSC`` but not ``csc``) to keep precision —
exactly the "quality of the ontology drives quality of the annotator"
trade-off the paper's Table 1 calls out.

The ``weight`` feature encodes evidence strength by document context:
a mention inside a slide titled "Scope: ..." or a scope bullet counts
more than a passing mention in meeting minutes.  The downstream scope
CPE sums these weights per deal.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.annotators.base import EilAnnotator
from repro.corpus.taxonomy import ServiceNode, ServiceTaxonomy
from repro.uima.cas import Cas

__all__ = ["OntologyServiceAnnotator"]

_SCOPE_CONTEXT_RE = re.compile(
    r"\b(?:scope|included in the services|services scope)\b", re.IGNORECASE
)


class OntologyServiceAnnotator(EilAnnotator):
    """Annotates taxonomy service mentions with canonical names."""

    name = "ontology-services"

    def __init__(
        self,
        taxonomy: ServiceTaxonomy,
        scope_weight: float = 3.0,
        mention_weight: float = 1.0,
    ) -> None:
        self.taxonomy = taxonomy
        self.scope_weight = scope_weight
        self.mention_weight = mention_weight
        self._surface_to_node: Dict[str, ServiceNode] = {}
        case_sensitive: List[str] = []
        case_insensitive: List[str] = []
        for node in taxonomy.all_nodes:
            for surface in node.surface_forms:
                self._surface_to_node.setdefault(surface.lower(), node)
                if _is_acronym(surface):
                    case_sensitive.append(re.escape(surface))
                else:
                    case_insensitive.append(re.escape(surface))
        # Longest alternatives first so the regex engine prefers the
        # most specific (multi-word) form at each position.
        case_insensitive.sort(key=len, reverse=True)
        case_sensitive.sort(key=len, reverse=True)
        self._name_re = re.compile(
            r"\b(?:" + "|".join(case_insensitive) + r")\b", re.IGNORECASE
        ) if case_insensitive else None
        self._acronym_re = re.compile(
            r"\b(?:" + "|".join(case_sensitive) + r")\b"
        ) if case_sensitive else None

    def process(self, cas: Cas) -> None:
        spans: List[Tuple[int, int, str]] = []
        if self._name_re is not None:
            spans.extend(
                (m.start(), m.end(), m.group(0))
                for m in self._name_re.finditer(cas.text)
            )
        if self._acronym_re is not None:
            spans.extend(
                (m.start(), m.end(), m.group(0))
                for m in self._acronym_re.finditer(cas.text)
            )
        # Drop acronym matches nested inside longer name matches.
        spans.sort(key=lambda s: (s[0], -(s[1] - s[0])))
        kept: List[Tuple[int, int, str]] = []
        last_end = -1
        for begin, end, surface in spans:
            if begin < last_end:
                continue
            kept.append((begin, end, surface))
            last_end = end
        for begin, end, surface in kept:
            node = self._surface_to_node.get(surface.lower())
            if node is None:  # pragma: no cover - regex and map agree
                continue
            cas.annotate(
                "eil.Service",
                begin,
                end,
                canonical=node.name,
                surface=surface,
                tower=self._top_tower(node),
                weight=self._weight_for(cas, begin),
            )

    def _top_tower(self, node: ServiceNode) -> str:
        current = node
        while current.parent is not None:
            current = self.taxonomy.get(current.parent)
        return current.name

    def _weight_for(self, cas: Cas, begin: int) -> float:
        """Scope-context mentions count more than passing ones."""
        window = cas.text[max(0, begin - 80): begin + 80]
        if _SCOPE_CONTEXT_RE.search(window):
            return self.scope_weight
        return self.mention_weight


def _is_acronym(surface: str) -> bool:
    return len(surface) <= 5 and surface.isupper() and surface.isalnum()
