"""Classifier-based annotator (Table 1, row 4).

A multinomial Naive Bayes text classifier, built from scratch, that
annotators use to capture "complex and abstract concepts" simple
patterns cannot — e.g. whether a section of prose is a win-strategy
discussion.  As Table 1 notes, quality is "highly dependent on the
training data set"; the classifier therefore exposes its class priors
and vocabulary so callers can sanity-check what it learned.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.annotators.base import EilAnnotator
from repro.errors import AnnotatorError
from repro.search.analyzer import Analyzer
from repro.uima.cas import Cas

__all__ = ["NaiveBayesClassifier", "SectionClassifierAnnotator"]


class NaiveBayesClassifier:
    """Multinomial Naive Bayes with add-one smoothing.

    Tokens come from the shared search analyzer (stemmed, stopped) so
    the classifier generalizes across inflection ("pricing"/"price").
    """

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self._analyzer = analyzer or Analyzer()
        self._class_counts: Counter = Counter()
        self._term_counts: Dict[str, Counter] = defaultdict(Counter)
        self._class_totals: Counter = Counter()
        self._vocabulary: set = set()

    # -- training ------------------------------------------------------------

    def train(self, examples: Iterable[Tuple[str, str]]) -> None:
        """Add ``(text, label)`` examples; may be called repeatedly."""
        for text, label in examples:
            self._class_counts[label] += 1
            for term in self._analyzer.analyze_query_terms(text):
                self._term_counts[label][term] += 1
                self._class_totals[label] += 1
                self._vocabulary.add(term)

    @property
    def labels(self) -> List[str]:
        """Known class labels, sorted."""
        return sorted(self._class_counts)

    @property
    def vocabulary_size(self) -> int:
        """Distinct terms seen in training."""
        return len(self._vocabulary)

    def prior(self, label: str) -> float:
        """P(label) from training frequencies."""
        total = sum(self._class_counts.values())
        if total == 0:
            raise AnnotatorError("classifier has no training data")
        return self._class_counts[label] / total

    # -- prediction -----------------------------------------------------------

    def log_scores(self, text: str) -> Dict[str, float]:
        """Unnormalized log P(label | text) for every label."""
        if not self._class_counts:
            raise AnnotatorError("classifier has no training data")
        terms = self._analyzer.analyze_query_terms(text)
        vocab = max(len(self._vocabulary), 1)
        scores: Dict[str, float] = {}
        for label in self._class_counts:
            score = math.log(self.prior(label))
            denominator = self._class_totals[label] + vocab
            counts = self._term_counts[label]
            for term in terms:
                score += math.log((counts[term] + 1) / denominator)
            scores[label] = score
        return scores

    def predict(self, text: str) -> str:
        """Most probable label (ties broken lexicographically)."""
        scores = self.log_scores(text)
        return max(sorted(scores), key=lambda label: scores[label])

    def predict_proba(self, text: str) -> Dict[str, float]:
        """Normalized class probabilities."""
        scores = self.log_scores(text)
        peak = max(scores.values())
        exps = {label: math.exp(s - peak) for label, s in scores.items()}
        total = sum(exps.values())
        return {label: value / total for label, value in exps.items()}


class SectionClassifierAnnotator(EilAnnotator):
    """Annotates text sections the classifier assigns a target label.

    Runs the classifier over each ``doc.Section`` annotation (falling
    back to the whole document when no sections exist) and emits
    ``type_name`` annotations over sections predicted as
    ``positive_label``.
    """

    def __init__(
        self,
        classifier: NaiveBayesClassifier,
        positive_label: str,
        type_name: str = "eil.WinStrategy",
        feature_name: str = "text",
        name: str = "section-classifier",
    ) -> None:
        self.classifier = classifier
        self.positive_label = positive_label
        self.type_name = type_name
        self.feature_name = feature_name
        self.name = name

    def process(self, cas: Cas) -> None:
        sections = cas.select("doc.Section") if (
            "doc.Section" in cas.type_system
        ) else []
        spans = (
            [(s.begin, s.end) for s in sections]
            if sections
            else [(0, len(cas.text))]
        )
        for begin, end in spans:
            text = cas.text[begin:end]
            if not text.strip():
                continue
            if self.classifier.predict(text) == self.positive_label:
                cas.annotate(
                    self.type_name, begin, end,
                    **{self.feature_name: text.strip()},
                )
