"""Bounded LRU caching for the online query paths.

Production EIL answers the same queries over and over — the paper's
community of practice shares a small vocabulary of towers, roles and
technologies — so both online entry points
(:meth:`~repro.core.search.BusinessActivityDrivenSearch.execute` and
:meth:`~repro.search.engine.SearchEngine.search`) sit behind an
:class:`LruCache`.  Correctness is epoch-based: cache keys embed an
index/policy epoch that incremental maintenance bumps, so stale entries
die by key mismatch rather than by explicit eviction.

Each cache is obs-instrumented: ``<name>.hits`` / ``<name>.misses`` /
``<name>.evictions`` / ``<name>.bypassed`` counters and a
``<name>.size`` gauge land in the ambient
:class:`~repro.obs.metrics.MetricsRegistry`.

Degraded results never enter a cache: a value carrying a truthy
``degraded`` or ``partial`` attribute (the convention
:class:`~repro.core.search.EilResults` uses for the degradation
ladder) is *bypassed at the store* — not stored and later invalidated,
but never stored at all — so a momentary outage cannot pin its
thinned-out answers for the cache's whole lifetime.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

from repro.obs import get_registry

__all__ = ["LruCache"]


class LruCache:
    """A thread-safe, bounded, least-recently-used mapping.

    Args:
        name: Metrics prefix (``<name>.hits`` etc.).
        max_entries: Capacity; ``0`` disables storage entirely (every
            ``get`` misses, ``put`` stores nothing) — the knob
            benchmarks use to measure cold-path latency.  ``put`` still
            classifies its value first, so ``None`` is rejected and
            degraded/partial values count under ``<name>.bypassed`` at
            every capacity.

    Cached values must not be ``None`` (``None`` signals a miss); they
    are returned by reference, so callers that hand out mutable results
    should copy on the way out.
    """

    def __init__(self, name: str, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError(
                f"cache {name!r} capacity must be >= 0, got {max_entries}"
            )
        self.name = name
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or ``None``; refreshes LRU order on hit."""
        metrics = get_registry()
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
        if value is None:
            metrics.inc(f"{self.name}.misses")
            return None
        metrics.inc(f"{self.name}.hits")
        return value

    @staticmethod
    def storable(value: Any) -> bool:
        """False for degraded/partial values, which must never be cached."""
        return not (
            getattr(value, "degraded", None)
            or getattr(value, "partial", False)
        )

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting least-recently-used past capacity.

        Degraded/partial values (see :meth:`storable`) are bypassed —
        counted under ``<name>.bypassed`` and never stored — so callers
        can put unconditionally and still never serve a degraded answer
        from cache.
        """
        if value is None:
            raise ValueError(f"cache {self.name!r} cannot store None")
        metrics = get_registry()
        # Classify before the disabled-cache short-circuit: a degraded
        # value must count as bypassed (and None must raise) at every
        # capacity, so metric semantics do not depend on sizing.
        if not self.storable(value):
            metrics.inc(f"{self.name}.bypassed")
            return
        if self.max_entries == 0:
            return
        # The gauge is written while the lock is held: a put that
        # publishes its size after releasing the lock can interleave
        # with a concurrent put/evict and leave ``<name>.size``
        # permanently disagreeing with ``len(cache)``.
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            if evicted:
                metrics.inc(f"{self.name}.evictions", evicted)
            metrics.set_gauge(f"{self.name}.size", len(self._entries))

    def clear(self) -> None:
        """Drop every entry (capacity and counters are untouched)."""
        with self._lock:
            self._entries.clear()
            get_registry().set_gauge(f"{self.name}.size", 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
