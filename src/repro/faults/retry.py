"""Bounded retry with exponential backoff and deterministic jitter.

One :class:`RetryPolicy` instance is shared by every resilient call
site of a component (crawler fetches, per-document analysis, synopsis
and SIAPI queries).  The policy is deliberately *classifying*: only
exceptions in ``retryable`` — by default :class:`TransientError`, which
covers injected faults, timeouts and open breakers — are retried.
Programming errors (bad SQL, bad query syntax) and annotator bugs fail
immediately, because retrying a deterministic bug only burns the error
budget.

Jitter is deterministic: the jitter factor for attempt *n* comes from a
hash of ``(seed, n)``, not from global randomness, so two runs with the
same seed back off identically — the property the fault-matrix suite
asserts on.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type

from repro.errors import TransientError
from repro.faults.injection import _stable_uniform
from repro.obs import get_registry

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Bounded attempts, exponential backoff, deterministic jitter.

    Args:
        max_attempts: Total attempts including the first (>= 1).
        base_delay: Sleep after the first failure, in seconds.
        multiplier: Backoff multiplier per further failure.
        max_delay: Upper bound on any single sleep.
        jitter: Jitter width as a fraction of the delay: the actual
            sleep is ``delay * (1 - jitter/2 + jitter * u)`` with ``u``
            a deterministic uniform per attempt index.
        seed: Seed for the jitter stream.
        retryable: Exception classes worth retrying.
        sleep: Sleep function (injectable for tests).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.01,
        multiplier: float = 2.0,
        max_delay: float = 0.25,
        jitter: float = 0.5,
        seed: int = 0,
        retryable: Tuple[Type[BaseException], ...] = (TransientError,),
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.retryable = tuple(retryable)
        self.sleep = sleep

    def classify(self, exc: BaseException) -> bool:
        """True when ``exc`` is worth another attempt."""
        return isinstance(exc, self.retryable)

    def delay(self, attempt: int) -> float:
        """The backoff before attempt ``attempt + 1`` (attempts are 1-based)."""
        raw = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if not self.jitter:
            return raw
        u = _stable_uniform(self.seed, "retry", None, attempt, "jitter")
        return raw * (1.0 - self.jitter / 2.0 + self.jitter * u)

    def call(self, fn: Callable, *args, metric: Optional[str] = "retry",
             **kwargs):
        """Run ``fn`` under the policy; re-raises the final failure.

        Metrics (when ``metric`` is not None): ``retry.attempts`` counts
        *re*-attempts (a clean first try records nothing),
        ``retry.exhausted`` counts give-ups, ``retry.recovered`` counts
        calls that failed at least once but eventually succeeded.
        """
        metrics = get_registry()
        retried = False
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:
                if not self.classify(exc) or attempt >= self.max_attempts:
                    if metric and retried:
                        metrics.inc(f"{metric}.exhausted")
                    raise
                retried = True
                if metric:
                    metrics.inc(f"{metric}.attempts")
                self.sleep(self.delay(attempt))
            else:
                if metric and retried:
                    metrics.inc(f"{metric}.recovered")
                return result
        raise AssertionError("unreachable")  # pragma: no cover
