"""Circuit breaker protecting the synopsis store and the SIAPI index.

Classic closed → open → half-open state machine: after
``failure_threshold`` consecutive classified failures the breaker
*opens* and every call is rejected instantly with
:class:`CircuitOpenError` (no load lands on the struggling substrate,
and the caller degrades immediately instead of waiting out retries).
After ``recovery_seconds`` the next call is let through as a
*half-open* probe; success closes the breaker, failure re-opens it.

The clock is injectable so tests drive recovery without sleeping, and
:class:`CircuitOpenError` subclasses :class:`TransientError`, so an open
breaker lands in the same degradation handling as the outage that
tripped it.

Metrics: ``breaker.open`` counts trips (plus ``breaker.open.<name>``),
``breaker.rejected.<name>`` counts fast-failed calls, and the gauge
``breaker.state.<name>`` exports 0 = closed, 1 = half-open, 2 = open.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Tuple, Type

from repro.errors import CircuitOpenError, TransientError
from repro.obs import get_registry

__all__ = ["CircuitBreaker"]

CLOSED, HALF_OPEN, OPEN = "closed", "half-open", "open"
_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """A thread-safe circuit breaker around one substrate.

    Args:
        name: Metrics suffix and error-message label.
        failure_threshold: Consecutive classified failures that trip
            the breaker.
        recovery_seconds: How long the breaker stays open before it
            allows a half-open probe.
        trip_on: Exception classes that count as substrate failures;
            anything else propagates without touching the failure count
            (a user's bad query must not black out the service).
        ignore: Exception classes never counted even when they match
            ``trip_on`` (checked first).
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        trip_on: Tuple[Type[BaseException], ...] = (TransientError,),
        ignore: Tuple[Type[BaseException], ...] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.trip_on = tuple(trip_on)
        self.ignore = tuple(ignore)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        """``closed``, ``half-open`` or ``open`` (recovery-aware)."""
        with self._lock:
            return self._current_state()

    def _current_state(self) -> str:
        if self._state == OPEN and (
            self.clock() - self._opened_at >= self.recovery_seconds
        ):
            return HALF_OPEN
        return self._state

    def _set_state(self, state: str) -> None:
        self._state = state
        get_registry().set_gauge(
            f"breaker.state.{self.name}", _STATE_GAUGE[state]
        )

    # -- bookkeeping --------------------------------------------------------

    def record_success(self) -> None:
        """A protected call succeeded; close and reset."""
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._set_state(CLOSED)

    def record_failure(self) -> None:
        """A classified failure; trips the breaker at the threshold."""
        metrics = get_registry()
        with self._lock:
            if self._current_state() == HALF_OPEN:
                # The probe failed: straight back to open.
                self._set_state(OPEN)
                self._opened_at = self.clock()
                metrics.inc("breaker.open")
                metrics.inc(f"breaker.open.{self.name}")
                return
            self._failures += 1
            if (self._state == CLOSED
                    and self._failures >= self.failure_threshold):
                self._set_state(OPEN)
                self._opened_at = self.clock()
                metrics.inc("breaker.open")
                metrics.inc(f"breaker.open.{self.name}")

    # -- the protected call -------------------------------------------------

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` under the breaker.

        Raises:
            CircuitOpenError: Without calling ``fn``, when the breaker
                is open and the recovery window has not elapsed.
        """
        with self._lock:
            state = self._current_state()
            if state == OPEN:
                get_registry().inc(f"breaker.rejected.{self.name}")
                raise CircuitOpenError(
                    f"circuit {self.name!r} is open "
                    f"({self._failures} consecutive failures)"
                )
        try:
            result = fn(*args, **kwargs)
        except self.ignore:
            raise
        except self.trip_on:
            self.record_failure()
            raise
        self.record_success()
        return result
