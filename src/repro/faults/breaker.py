"""Circuit breaker protecting the synopsis store and the SIAPI index.

Classic closed → open → half-open state machine: after
``failure_threshold`` consecutive classified failures the breaker
*opens* and every call is rejected instantly with
:class:`CircuitOpenError` (no load lands on the struggling substrate,
and the caller degrades immediately instead of waiting out retries).
After ``recovery_seconds`` the breaker goes *half-open* and admits
exactly **one** probe call; success closes the breaker, failure
re-opens it.

Half-open is single-flight: under concurrent load, every caller beyond
the probe fast-fails with :class:`CircuitOpenError` (counted under
``breaker.rejected.<name>``) instead of stampeding a substrate that is
still getting back on its feet.  Re-opening after a failed probe counts
as **one** trip regardless of how many threads observed the failure —
``breaker.open`` counts open *transitions*, so one outage reads as one
trip in ``repro stats``.

The clock is injectable so tests drive recovery without sleeping, and
:class:`CircuitOpenError` subclasses :class:`TransientError`, so an open
breaker lands in the same degradation handling as the outage that
tripped it.

Metrics: ``breaker.open`` counts trips (plus ``breaker.open.<name>``),
``breaker.rejected.<name>`` counts fast-failed calls (open rejections
and crowded half-open probes alike), and the gauge
``breaker.state.<name>`` exports 0 = closed, 1 = half-open, 2 = open —
the half-open value is exported as soon as the recovery window is
first observed to have elapsed, so dashboards see the 2 → 1 → 0 (or
2 → 1 → 2) walk rather than an inexplicable 2 → 0 jump.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Tuple, Type

from repro.errors import CircuitOpenError, TransientError
from repro.obs import get_registry

__all__ = ["CircuitBreaker"]

CLOSED, HALF_OPEN, OPEN = "closed", "half-open", "open"
_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """A thread-safe circuit breaker around one substrate.

    Args:
        name: Metrics suffix and error-message label.
        failure_threshold: Consecutive classified failures that trip
            the breaker.
        recovery_seconds: How long the breaker stays open before it
            allows a half-open probe.
        trip_on: Exception classes that count as substrate failures;
            anything else propagates without touching the failure count
            (a user's bad query must not black out the service).
        ignore: Exception classes never counted even when they match
            ``trip_on`` (checked first).
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        trip_on: Tuple[Type[BaseException], ...] = (TransientError,),
        ignore: Tuple[Type[BaseException], ...] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.trip_on = tuple(trip_on)
        self.ignore = tuple(ignore)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        # Half-open admits exactly one probe; True while it is in
        # flight.  Cleared by whichever of record_success /
        # record_failure / probe-release runs first.
        self._probe_in_flight = False

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        """``closed``, ``half-open`` or ``open`` (recovery-aware)."""
        with self._lock:
            return self._observe_state()

    def _observe_state(self) -> str:
        """Current state; transitions OPEN → HALF_OPEN when the window
        has elapsed (exporting the gauge), so half-open is a real,
        observable state rather than a value derived in passing.
        Caller must hold the lock.
        """
        if self._state == OPEN and (
            self.clock() - self._opened_at >= self.recovery_seconds
        ):
            self._set_state(HALF_OPEN)
        return self._state

    def _set_state(self, state: str) -> None:
        self._state = state
        get_registry().set_gauge(
            f"breaker.state.{self.name}", _STATE_GAUGE[state]
        )

    def _trip(self) -> None:
        """Transition to OPEN and count it (caller must hold the lock)."""
        metrics = get_registry()
        self._set_state(OPEN)
        self._opened_at = self.clock()
        metrics.inc("breaker.open")
        metrics.inc(f"breaker.open.{self.name}")

    # -- bookkeeping --------------------------------------------------------

    def record_success(self) -> None:
        """A protected call succeeded; close and reset."""
        with self._lock:
            self._probe_in_flight = False
            self._failures = 0
            if self._state != CLOSED:
                self._set_state(CLOSED)

    def record_failure(self) -> None:
        """A classified failure; trips the breaker at the threshold.

        Re-opening from half-open counts exactly one trip per open
        transition: the first failure re-opens (and restarts the
        recovery window); any further concurrent failures land in the
        already-open state and only bump the failure count.
        """
        with self._lock:
            self._probe_in_flight = False
            if self._observe_state() == HALF_OPEN:
                # The probe failed: straight back to open, counted once.
                self._trip()
                return
            self._failures += 1
            if (self._state == CLOSED
                    and self._failures >= self.failure_threshold):
                self._trip()

    def _release_probe(self, held: bool) -> None:
        """Free the probe slot after an unclassified/ignored exception.

        The substrate neither succeeded nor classifiedly failed, so the
        breaker stays half-open and the next caller may probe.
        """
        if held:
            with self._lock:
                self._probe_in_flight = False

    # -- the protected call -------------------------------------------------

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` under the breaker.

        Raises:
            CircuitOpenError: Without calling ``fn``, when the breaker
                is open and the recovery window has not elapsed — or
                when it is half-open and another caller already holds
                the single probe slot.
        """
        probe = False
        with self._lock:
            state = self._observe_state()
            if state == OPEN:
                get_registry().inc(f"breaker.rejected.{self.name}")
                raise CircuitOpenError(
                    f"circuit {self.name!r} is open "
                    f"({self._failures} consecutive failures)"
                )
            if state == HALF_OPEN:
                if self._probe_in_flight:
                    get_registry().inc(f"breaker.rejected.{self.name}")
                    raise CircuitOpenError(
                        f"circuit {self.name!r} is half-open and its "
                        f"recovery probe is already in flight"
                    )
                self._probe_in_flight = True
                probe = True
        try:
            result = fn(*args, **kwargs)
        except self.ignore:
            self._release_probe(probe)
            raise
        except self.trip_on:
            self.record_failure()
            raise
        except BaseException:
            self._release_probe(probe)
            raise
        self.record_success()
        return result
