"""Deterministic, seedable fault injection for the EIL substrates.

The paper's production EIL ran on flaky enterprise substrates — crawls
over unreliable repositories, a DB2 synopsis store, an OmniFind index —
each of which can fail independently.  This module reproduces that
operational reality on demand: a :class:`FaultInjector` installed via
:func:`repro.faults.use_injector` makes the named *fault points* inside
the pipelines raise errors, overrun deadlines, or slow down, at
configurable rates.

Fault points and the component names that address them:

========== ==========================================================
component  fault point
========== ==========================================================
repository :meth:`EngagementWorkbook.documents` / ``iter_documents``
           (one keyed check per workbook read, key = deal id)
crawler    :meth:`Crawler.crawl` (one keyed check per document fetch)
db         :meth:`Database.execute` (every SQL statement)
index      :meth:`SearchEngine.search` / ``count`` (every query)
analysis   per-document parse+annotate (keyed check, key = doc id)
========== ==========================================================

Determinism is the design center, because the fault-matrix tests assert
exact outcomes and the PR 2 invariant (parallel build == serial build)
must keep holding *under injection*:

* **Keyed checks** (``check(component, key=...)``) decide from a stable
  hash of ``(seed, component, key, nth-call-for-that-key)`` — never from
  global call order — so the same documents fail no matter how many
  workers raced to process them, and a retry of the same key redraws.
* **Unkeyed checks** draw from a per-component ``random.Random`` stream
  seeded from ``(seed, component)``, deterministic for any serial call
  sequence (the online query path).

Process-sharded builds extend the contract: worker processes must
**never inherit injector state via fork** (an inherited per-key call
count or stream position would make decisions depend on what the
parent had already drawn).  Instead each shard task reconstructs a
fresh injector from the parent's ``(profile, seed)``; because keyed
draws hash only ``(seed, component, key, nth-call-for-that-key)``,
the rebuilt injector makes exactly the decisions the serial run would,
no matter which process draws them.  The injector itself is
deliberately not picklable (it carries a lock and live decision
streams) — ship ``injector.profile`` and ``injector.seed``, as
:meth:`repro.uima.cpe.CollectionProcessingEngine` does.

An injector with an empty profile is a no-op and costs one attribute
read per fault point, so production code paths keep their speed when no
faults are configured.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    InjectedFaultError,
)
from repro.obs import get_registry

__all__ = ["FaultRule", "FaultProfile", "FaultInjector"]


@dataclass(frozen=True)
class FaultRule:
    """Fault behaviour of one component.

    Attributes:
        error_rate: Probability a check raises :class:`InjectedFaultError`.
        timeout_rate: Probability a check raises
            :class:`DeadlineExceededError` (an injected timeout).
        latency_rate: Probability a check sleeps for ``latency`` seconds.
        latency: Injected delay in seconds when the latency draw hits.
    """

    error_rate: float = 0.0
    timeout_rate: float = 0.0
    latency_rate: float = 0.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        for name in ("error_rate", "timeout_rate", "latency_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"fault {name} must be in [0, 1], got {value}"
                )
        if self.latency < 0:
            raise ConfigurationError(
                f"fault latency must be >= 0, got {self.latency}"
            )

    @property
    def active(self) -> bool:
        """True when this rule can ever fire."""
        return bool(
            self.error_rate or self.timeout_rate
            or (self.latency_rate and self.latency)
        )


class FaultProfile:
    """A named set of :class:`FaultRule` objects, one per component."""

    def __init__(self, rules: Optional[Mapping[str, FaultRule]] = None):
        self.rules: Dict[str, FaultRule] = {
            component: rule
            for component, rule in (rules or {}).items()
            if rule.active
        }

    @classmethod
    def parse(cls, spec: str) -> "FaultProfile":
        """Parse a CLI profile spec into a profile.

        Grammar (components split on ``;``, knobs on ``,``)::

            db:error=0.2;index:error=0.1,latency=0.05,latency_rate=1
            repository:0.2          # shorthand for error=0.2

        Knob names: ``error`` (rate), ``timeout`` (rate), ``latency``
        (seconds), ``latency_rate``.
        """
        rules: Dict[str, FaultRule] = {}
        for part in filter(None, (p.strip() for p in spec.split(";"))):
            component, sep, knobs = part.partition(":")
            component = component.strip()
            if not sep or not component:
                raise ConfigurationError(
                    f"fault profile entry {part!r} is not "
                    f"'component:knob=value,...'"
                )
            kwargs: Dict[str, float] = {}
            for knob in filter(None, (k.strip() for k in knobs.split(","))):
                name, eq, raw = knob.partition("=")
                if not eq:  # bare number shorthand: error rate
                    name, raw = "error", name
                try:
                    value = float(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"fault knob {knob!r} has a non-numeric value"
                    ) from None
                key = {"error": "error_rate", "timeout": "timeout_rate"}.get(
                    name.strip(), name.strip()
                )
                if key not in (
                    "error_rate", "timeout_rate", "latency_rate", "latency"
                ):
                    raise ConfigurationError(f"unknown fault knob {name!r}")
                kwargs[key] = value
            if "latency" in kwargs and "latency_rate" not in kwargs:
                kwargs["latency_rate"] = 1.0
            rules[component] = FaultRule(**kwargs)
        return cls(rules)

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultProfile({self.rules!r})"


def _stable_uniform(seed: int, component: str, key: Hashable, n: int,
                    draw: str) -> float:
    """A uniform [0, 1) value from a stable, process-independent hash."""
    token = f"{seed}\x1f{component}\x1f{key!r}\x1f{n}\x1f{draw}"
    digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


class FaultInjector:
    """Injects faults at the named fault points, deterministically.

    Args:
        profile: Component rules (a :class:`FaultProfile`, or a plain
            mapping of component name to :class:`FaultRule`).  Empty
            means no faults: every check is a no-op.
        seed: Seed for the decision streams; two injectors with the same
            profile and seed make identical decisions.
        sleep: Sleep function for latency injection (injectable so tests
            can observe delays without waiting them out).
    """

    def __init__(
        self,
        profile: Optional[object] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if profile is None:
            profile = FaultProfile()
        elif not isinstance(profile, FaultProfile):
            profile = FaultProfile(profile)
        self.profile = profile
        self.seed = seed
        self.sleep = sleep
        self._lock = threading.Lock()
        self._streams: Dict[str, random.Random] = {}
        self._key_calls: Dict[tuple, int] = {}

    @property
    def active(self) -> bool:
        """True when any component has an active rule."""
        return bool(self.profile)

    # -- decision streams ---------------------------------------------------

    def _draws(self, component: str, key: Optional[Hashable]):
        """Three uniforms (error, timeout, latency) for one check."""
        if key is None:
            with self._lock:
                stream = self._streams.get(component)
                if stream is None:
                    stream = random.Random(f"{self.seed}\x1f{component}")
                    self._streams[component] = stream
                return stream.random(), stream.random(), stream.random()
        with self._lock:
            n = self._key_calls.get((component, key), 0)
            self._key_calls[(component, key)] = n + 1
        return tuple(
            _stable_uniform(self.seed, component, key, n, draw)
            for draw in ("error", "timeout", "latency")
        )

    # -- the fault point API ------------------------------------------------

    def check(self, component: str, key: Optional[Hashable] = None) -> None:
        """Maybe delay, then maybe raise, per the component's rule.

        Args:
            component: Fault-point name (see the module docstring).
            key: Stable identity of the unit of work (doc id, deal id).
                Keyed decisions are order-independent — required where
                the check runs inside a worker pool — and each repeat
                call for the same key redraws, so retries can succeed.
        """
        rule = self.profile.rules.get(component)
        if rule is None:
            return
        error_u, timeout_u, latency_u = self._draws(component, key)
        metrics = get_registry()
        if rule.latency_rate and rule.latency and latency_u < rule.latency_rate:
            metrics.inc("faults.injected")
            metrics.inc(f"faults.injected.{component}.latency")
            self.sleep(rule.latency)
        if rule.error_rate and error_u < rule.error_rate:
            metrics.inc("faults.injected")
            metrics.inc(f"faults.injected.{component}.error")
            raise InjectedFaultError(
                f"injected fault in {component}"
                + (f" (key={key!r})" if key is not None else "")
            )
        if rule.timeout_rate and timeout_u < rule.timeout_rate:
            metrics.inc("faults.injected")
            metrics.inc(f"faults.injected.{component}.timeout")
            raise DeadlineExceededError(
                f"injected timeout in {component}"
                + (f" (key={key!r})" if key is not None else "")
            )

    def wrap(self, component: str, fn: Callable, key_fn: Optional[Callable] = None):
        """A callable running ``check`` before ``fn`` (for ad-hoc wrapping).

        Args:
            component: Fault-point name for the check.
            fn: The callable to protect.
            key_fn: Optional ``(*args, **kwargs) -> key`` for keyed checks.
        """
        def wrapped(*args, **kwargs):
            key = key_fn(*args, **kwargs) if key_fn is not None else None
            self.check(component, key=key)
            return fn(*args, **kwargs)

        return wrapped
