"""Fault injection + the resilience machinery it exercises.

Three pieces, designed to be used together (see docs/OPERATIONS.md):

* :class:`FaultInjector` / :class:`FaultProfile` / :class:`FaultRule` —
  deterministic, seedable error/latency/timeout injection at named
  fault points inside the pipelines (repository reads, crawler fetches,
  DB calls, index queries, per-document analysis).
* :class:`RetryPolicy` — bounded attempts, exponential backoff with
  deterministic jitter, retryable-exception classification.
* :class:`CircuitBreaker` — fast-fail protection around the synopsis
  store and the SIAPI index.

The injector follows the same *global default, injectable override*
pattern as :mod:`repro.obs`: fault points resolve :func:`get_injector`
at call time, the default injector has an empty profile (a no-op), and
tests, benchmarks and the CLI's ``--fault-profile`` flag install a real
one with :func:`use_injector` / :func:`set_injector`::

    from repro import faults

    profile = faults.FaultProfile.parse("db:error=0.2")
    with faults.use_injector(faults.FaultInjector(profile, seed=7)):
        results = eil.search(form, user)   # degrades, never crashes
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faults.breaker import CircuitBreaker
from repro.faults.injection import FaultInjector, FaultProfile, FaultRule
from repro.faults.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "FaultProfile",
    "FaultRule",
    "RetryPolicy",
    "get_injector",
    "set_injector",
    "use_injector",
]


_injector = FaultInjector()


def get_injector() -> FaultInjector:
    """The process-wide default fault injector (a no-op by default)."""
    return _injector


def set_injector(injector: Optional[FaultInjector]) -> FaultInjector:
    """Install ``injector`` as the default (None installs a no-op).

    Returns the *previously* installed injector so callers can restore
    it — ``set_injector(set_injector(armed))`` is a no-op.
    """
    global _injector
    previous = _injector
    _injector = injector if injector is not None else FaultInjector()
    return previous


@contextmanager
def use_injector(
    injector: Optional[FaultInjector] = None,
) -> Iterator[FaultInjector]:
    """Temporarily install an injector; restores the previous on exit."""
    previous = set_injector(injector)
    try:
        yield get_injector()
    finally:
        set_injector(previous)
