"""Enterprise document model: the content of engagement workbooks.

The paper's corpus mixes document genres, and EIL's annotators exploit
each genre's structure (Section 3.3): PowerPoint titles carry the key
point, team rosters live in spreadsheet rows, service-detail forms have
schema fields that are often *empty* (the ``cross tower TSA`` problem in
Meta-query 3).  The model therefore keeps structure explicit instead of
flattening to text at load time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import CorpusError

__all__ = [
    "EnterpriseDocument",
    "Slide",
    "Presentation",
    "Sheet",
    "Spreadsheet",
    "EmailMessage",
    "FormDocument",
    "TextDocument",
]


@dataclass(frozen=True)
class EnterpriseDocument:
    """Common identity and provenance of every workbook document.

    Attributes:
        doc_id: Globally unique id.
        title: Display title.
        deal_id: Owning business activity (engagement).
        repository: The workbook/repository the document lives in.
        doc_type: Genre tag (``presentation``, ``spreadsheet``, ...).
        author: Author's display name (may be empty — workbooks are
            inconsistently maintained, which the annotators must survive).
    """

    doc_id: str
    title: str
    deal_id: str
    repository: str = ""
    doc_type: str = "document"
    author: str = ""

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise CorpusError("document needs a doc_id")
        if not self.deal_id:
            raise CorpusError(f"document {self.doc_id!r} needs a deal_id")


@dataclass(frozen=True)
class Slide:
    """One presentation slide."""

    title: str
    subtitle: str = ""
    bullets: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "bullets", tuple(self.bullets))


@dataclass(frozen=True)
class Presentation(EnterpriseDocument):
    """A PowerPoint-like deck."""

    slides: Tuple[Slide, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "slides", tuple(self.slides))
        object.__setattr__(self, "doc_type", "presentation")


@dataclass(frozen=True)
class Sheet:
    """One spreadsheet tab: a header row plus data rows."""

    name: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "headers", tuple(self.headers))
        object.__setattr__(
            self, "rows", tuple(tuple(row) for row in self.rows)
        )
        for row in self.rows:
            if len(row) != len(self.headers):
                raise CorpusError(
                    f"sheet {self.name!r}: row width {len(row)} != "
                    f"{len(self.headers)} headers"
                )


@dataclass(frozen=True)
class Spreadsheet(EnterpriseDocument):
    """An Excel-like workbook of sheets."""

    sheets: Tuple[Sheet, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "sheets", tuple(self.sheets))
        object.__setattr__(self, "doc_type", "spreadsheet")


@dataclass(frozen=True)
class EmailMessage(EnterpriseDocument):
    """An email kept in the workbook (or a distribution-list thread)."""

    sender: str = ""
    recipients: Tuple[str, ...] = ()
    subject: str = ""
    body: str = ""
    thread_id: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "recipients", tuple(self.recipients))
        object.__setattr__(self, "doc_type", "email")


@dataclass(frozen=True)
class FormDocument(EnterpriseDocument):
    """A semi-structured application record with a fixed field schema.

    ``fields`` preserves schema order; values may be empty strings —
    the form *schema* mentions e.g. ``Cross Tower TSA`` even when nobody
    filled it in, which is exactly what misleads keyword search in the
    paper's Meta-query 3.
    """

    form_name: str = ""
    fields: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self, "fields", tuple((str(k), str(v)) for k, v in self.fields)
        )
        object.__setattr__(self, "doc_type", "form")

    def field_value(self, name: str) -> Optional[str]:
        """Value of the first field named ``name`` (case-insensitive)."""
        lowered = name.lower()
        for key, value in self.fields:
            if key.lower() == lowered:
                return value
        return None


@dataclass(frozen=True)
class TextDocument(EnterpriseDocument):
    """Free text (meeting minutes, proposals, strategy write-ups)."""

    sections: Tuple[Tuple[str, str], ...] = ()  # (heading, body) pairs

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self,
            "sections",
            tuple((str(h), str(b)) for h, b in self.sections),
        )
        object.__setattr__(self, "doc_type", "text")
