"""Enterprise document model, structure-preserving parsers, workbooks."""

from repro.docmodel.documents import (
    EmailMessage,
    EnterpriseDocument,
    FormDocument,
    Presentation,
    Sheet,
    Slide,
    Spreadsheet,
    TextDocument,
)
from repro.docmodel.parsers import (
    STRUCTURE_TYPE_NAMES,
    DocumentParser,
    register_structure_types,
)
from repro.docmodel.repository import EngagementWorkbook, WorkbookCollection

__all__ = [
    "EnterpriseDocument",
    "Presentation",
    "Slide",
    "Spreadsheet",
    "Sheet",
    "EmailMessage",
    "FormDocument",
    "TextDocument",
    "DocumentParser",
    "register_structure_types",
    "STRUCTURE_TYPE_NAMES",
    "EngagementWorkbook",
    "WorkbookCollection",
]
