"""Structure-preserving parsers: documents -> CAS / indexable form.

Paper Section 3.3 ("Custom Parsing"): *"It is important to preserve the
structure of documents during the parsing phase so that our annotators
can make use of it in the phase of information analysis."*  The parser
renders each document genre to flat text — what the keyword index and
the annotators read — while emitting structure annotations (slide
titles, sheet cells with their column headers, form fields with an
``is_empty`` flag) that point back into that text.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.docmodel.documents import (
    EmailMessage,
    EnterpriseDocument,
    FormDocument,
    Presentation,
    Spreadsheet,
    TextDocument,
)
from repro.errors import CorpusError
from repro.search.document import IndexableDocument
from repro.uima.cas import Cas
from repro.uima.typesystem import TypeSystem

__all__ = [
    "register_structure_types",
    "DocumentParser",
    "STRUCTURE_TYPE_NAMES",
]

STRUCTURE_TYPE_NAMES = (
    "doc.SlideTitle",
    "doc.SlideSubtitle",
    "doc.Bullet",
    "doc.SheetHeader",
    "doc.Cell",
    "doc.FormField",
    "doc.EmailHeader",
    "doc.Section",
)


def register_structure_types(type_system: TypeSystem) -> TypeSystem:
    """Register the structural annotation types (idempotent)."""
    definitions = {
        "doc.SlideTitle": ["slide_index"],
        "doc.SlideSubtitle": ["slide_index"],
        "doc.Bullet": ["slide_index"],
        "doc.SheetHeader": ["sheet", "col"],
        "doc.Cell": ["sheet", "row", "col", "header"],
        "doc.FormField": ["name", "is_empty"],
        "doc.EmailHeader": ["kind"],
        "doc.Section": ["heading"],
    }
    for name, features in definitions.items():
        if name not in type_system:
            type_system.define(name, features)
    return type_system


class _TextBuilder:
    """Accumulates rendered text while tracking spans."""

    def __init__(self) -> None:
        self._parts: List[str] = []
        self._length = 0

    def add(self, text: str) -> Tuple[int, int]:
        """Append ``text``; returns its (begin, end) span."""
        begin = self._length
        self._parts.append(text)
        self._length += len(text)
        return begin, self._length

    def newline(self) -> None:
        self.add("\n")

    @property
    def text(self) -> str:
        return "".join(self._parts)


class DocumentParser:
    """Renders enterprise documents to CAS and indexable form."""

    def __init__(self, type_system: Optional[TypeSystem] = None) -> None:
        self.type_system = register_structure_types(
            type_system or TypeSystem()
        )

    # -- CAS ------------------------------------------------------------

    def to_cas(self, document: EnterpriseDocument) -> Cas:
        """Render ``document`` with structure annotations attached."""
        builder = _TextBuilder()
        pending: List[Tuple[str, int, int, Dict[str, Any]]] = []

        if isinstance(document, Presentation):
            self._render_presentation(document, builder, pending)
        elif isinstance(document, Spreadsheet):
            self._render_spreadsheet(document, builder, pending)
        elif isinstance(document, EmailMessage):
            self._render_email(document, builder, pending)
        elif isinstance(document, FormDocument):
            self._render_form(document, builder, pending)
        elif isinstance(document, TextDocument):
            self._render_text(document, builder, pending)
        else:
            raise CorpusError(
                f"unknown document class {type(document).__name__}"
            )

        cas = Cas(
            builder.text,
            self.type_system,
            metadata={
                "doc_id": document.doc_id,
                "title": document.title,
                "deal_id": document.deal_id,
                "repository": document.repository,
                "doc_type": document.doc_type,
                "author": document.author,
            },
        )
        for type_name, begin, end, features in pending:
            cas.annotate(type_name, begin, end, **features)
        return cas

    # -- indexable -----------------------------------------------------------

    def to_indexable(self, document: EnterpriseDocument) -> IndexableDocument:
        """Render ``document`` for the keyword index.

        The body is the same flat rendering the CAS uses — the keyword
        baseline deliberately sees forms "as a blob of text", empty
        schema fields included, reproducing the paper's noise source.
        """
        cas = self.to_cas(document)
        return IndexableDocument(
            doc_id=document.doc_id,
            fields={"title": document.title, "body": cas.text},
            metadata=dict(cas.metadata),
        )

    # -- per-genre renderers --------------------------------------------------

    def _render_presentation(self, document, builder, pending) -> None:
        for index, slide in enumerate(document.slides):
            begin, end = builder.add(slide.title)
            pending.append(("doc.SlideTitle", begin, end,
                            {"slide_index": index}))
            builder.newline()
            if slide.subtitle:
                begin, end = builder.add(slide.subtitle)
                pending.append(("doc.SlideSubtitle", begin, end,
                                {"slide_index": index}))
                builder.newline()
            for bullet in slide.bullets:
                begin, end = builder.add(bullet)
                pending.append(("doc.Bullet", begin, end,
                                {"slide_index": index}))
                builder.newline()
            builder.newline()

    def _render_spreadsheet(self, document, builder, pending) -> None:
        for sheet in document.sheets:
            builder.add(sheet.name)
            builder.newline()
            for col, header in enumerate(sheet.headers):
                begin, end = builder.add(header)
                pending.append(("doc.SheetHeader", begin, end,
                                {"sheet": sheet.name, "col": col}))
                builder.add("\t")
            builder.newline()
            for row_index, row in enumerate(sheet.rows):
                for col, value in enumerate(row):
                    begin, end = builder.add(value)
                    pending.append(
                        ("doc.Cell", begin, end,
                         {"sheet": sheet.name, "row": row_index,
                          "col": col, "header": sheet.headers[col]})
                    )
                    builder.add("\t")
                builder.newline()
            builder.newline()

    def _render_email(self, document, builder, pending) -> None:
        for kind, value in (
            ("from", document.sender),
            ("to", ", ".join(document.recipients)),
            ("subject", document.subject),
        ):
            builder.add(f"{kind.capitalize()}: ")
            begin, end = builder.add(value)
            pending.append(("doc.EmailHeader", begin, end, {"kind": kind}))
            builder.newline()
        builder.newline()
        builder.add(document.body)

    def _render_form(self, document, builder, pending) -> None:
        builder.add(document.form_name)
        builder.newline()
        for name, value in document.fields:
            field_begin, _ = builder.add(name)
            builder.add(": ")
            _, field_end = builder.add(value)
            pending.append(
                ("doc.FormField", field_begin, field_end,
                 {"name": name, "is_empty": not value.strip()})
            )
            builder.newline()

    def _render_text(self, document, builder, pending) -> None:
        for heading, body in document.sections:
            if heading:
                builder.add(heading)
                builder.newline()
            begin, end = builder.add(body)
            pending.append(("doc.Section", begin, end, {"heading": heading}))
            builder.newline()
            builder.newline()
