"""Engagement workbooks: the data repositories EIL crawls.

An :class:`EngagementWorkbook` holds one deal's documents; a
:class:`WorkbookCollection` holds many workbooks and is the unit the
offline pipeline (crawler + CPE) processes.  Workbooks implement the
crawler's ``DocumentSource`` protocol by rendering their documents
through the structure-preserving parser.

Workbook reads are a ``repository`` fault point (the paper's EIL
crawled notoriously flaky enterprise repositories): each bulk read
passes one keyed :meth:`~repro.faults.FaultInjector.check` — key = the
deal id, so injected outages hit whole workbooks deterministically —
before any document is returned.  Resilience lives in the callers:
:class:`~repro.core.analysis.InformationAnalysis` retries and then
quarantines an unreadable workbook; the crawler records an aborted
source and carries on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.docmodel.documents import EnterpriseDocument
from repro.docmodel.parsers import DocumentParser
from repro.errors import CorpusError
from repro.faults import get_injector
from repro.search.document import IndexableDocument

__all__ = ["EngagementWorkbook", "WorkbookCollection"]


class EngagementWorkbook:
    """One deal's document repository.

    Args:
        deal_id: The owning business activity.
        name: Display name of the repository.
        documents: Initial documents (all must belong to ``deal_id``).
    """

    def __init__(
        self,
        deal_id: str,
        name: str = "",
        documents: Iterable[EnterpriseDocument] = (),
    ) -> None:
        if not deal_id:
            raise CorpusError("workbook needs a deal_id")
        self.deal_id = deal_id
        self.name = name or f"EWB-{deal_id}"
        self._documents: Dict[str, EnterpriseDocument] = {}
        self._parser = DocumentParser()
        for document in documents:
            self.add(document)

    def add(self, document: EnterpriseDocument) -> None:
        """Add one document; deal mismatch or duplicate id raises."""
        if document.deal_id != self.deal_id:
            raise CorpusError(
                f"document {document.doc_id!r} belongs to "
                f"{document.deal_id!r}, not {self.deal_id!r}"
            )
        if document.doc_id in self._documents:
            raise CorpusError(f"duplicate doc_id {document.doc_id!r}")
        self._documents[document.doc_id] = document

    def get(self, doc_id: str) -> EnterpriseDocument:
        """Look up a document by id."""
        document = self._documents.get(doc_id)
        if document is None:
            raise CorpusError(f"no document {doc_id!r} in {self.name!r}")
        return document

    def documents(
        self, doc_type: Optional[str] = None
    ) -> List[EnterpriseDocument]:
        """All documents (optionally one genre), in insertion order.

        Raises:
            TransientError: When the ``repository`` fault point fires
                (the whole workbook read fails, as a repository outage
                would); callers retry or quarantine the workbook.
        """
        get_injector().check("repository", key=self.deal_id)
        docs = list(self._documents.values())
        if doc_type is not None:
            docs = [d for d in docs if d.doc_type == doc_type]
        return docs

    def iter_documents(self) -> Iterator[IndexableDocument]:
        """DocumentSource protocol: rendered, indexable documents.

        The ``repository`` fault point fires on the first ``next()``
        (generator semantics), aborting the whole source — the crawler
        records the aborted source and continues with the next one.
        """
        get_injector().check("repository", key=self.deal_id)
        for document in self._documents.values():
            yield self._parser.to_indexable(document)

    def __len__(self) -> int:
        return len(self._documents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngagementWorkbook({self.deal_id!r}, docs={len(self)})"


class WorkbookCollection:
    """All workbooks the EIL deployment covers."""

    def __init__(self, workbooks: Iterable[EngagementWorkbook] = ()) -> None:
        self._workbooks: Dict[str, EngagementWorkbook] = {}
        for workbook in workbooks:
            self.add(workbook)

    def add(self, workbook: EngagementWorkbook) -> None:
        """Register one workbook; duplicate deal ids raise."""
        if workbook.deal_id in self._workbooks:
            raise CorpusError(
                f"workbook for deal {workbook.deal_id!r} already present"
            )
        self._workbooks[workbook.deal_id] = workbook

    def upsert(self, workbook: EngagementWorkbook) -> bool:
        """Register or replace the workbook of ``workbook.deal_id``.

        Returns True when an existing workbook was replaced.  Insertion
        order (and therefore ``all_documents`` order, which is sorted by
        deal id anyway) is preserved for replacements.
        """
        replaced = workbook.deal_id in self._workbooks
        self._workbooks[workbook.deal_id] = workbook
        return replaced

    def __contains__(self, deal_id: str) -> bool:
        return deal_id in self._workbooks

    def workbook(self, deal_id: str) -> EngagementWorkbook:
        """The workbook of one deal."""
        workbook = self._workbooks.get(deal_id)
        if workbook is None:
            raise CorpusError(f"no workbook for deal {deal_id!r}")
        return workbook

    @property
    def deal_ids(self) -> List[str]:
        """Sorted deal ids."""
        return sorted(self._workbooks)

    def all_documents(self) -> List[EnterpriseDocument]:
        """Every raw document across all workbooks."""
        return [
            document
            for deal_id in self.deal_ids
            for document in self._workbooks[deal_id].documents()
        ]

    def iter_documents(self) -> Iterator[IndexableDocument]:
        """DocumentSource protocol across all workbooks."""
        for deal_id in self.deal_ids:
            yield from self._workbooks[deal_id].iter_documents()

    def document_count(self) -> int:
        """Total documents across workbooks."""
        return sum(len(w) for w in self._workbooks.values())

    def __len__(self) -> int:
        return len(self._workbooks)

    def __iter__(self) -> Iterator[EngagementWorkbook]:
        for deal_id in self.deal_ids:
            yield self._workbooks[deal_id]
