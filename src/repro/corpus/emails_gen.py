"""The sales community's email distribution list (paper Section 2).

The paper's requirements study monitored 120 email threads over nine
months and classified them against four meta-queries:

* MQ1 — scope ("which engagements include <service>?"): ~38%
* MQ2 — worked-with ("who in <role> worked with <person> at <org>?"): ~17%
* MQ3 — role capacity ("who has worked as <role>?"): ~36%
* MQ4 — service + keyword ("who did <service> involving <keyword>?"): ~29%

and found 63/120 threads soliciting social-networking information.  The
percentages sum past 100% because meta-queries are "sometimes an
inherent part of a larger query" — some threads carry two.  The
generator reproduces the exact counts: 46 MQ1, 20 MQ2, 43 MQ3 and 35
MQ4 labels over 120 threads (24 threads are MQ1+MQ4 compounds), and the
63 social threads are exactly the MQ2 and MQ3 ones (20 + 43 = 63).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.corpus.deals import DealSpec
from repro.corpus.people import VENDOR_DOMAIN
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.docmodel.documents import EmailMessage
from repro.errors import CorpusError

__all__ = ["MetaQueryType", "EmailThread", "ThreadGenerator",
           "PAPER_THREAD_COUNTS"]

# Exact label counts reproducing the paper's Section 2 percentages.
PAPER_THREAD_COUNTS = {
    "mq1": 46,  # 46/120 = 38.3%  (paper: ~38%)
    "mq2": 20,  # 20/120 = 16.7%  (paper: ~17%)
    "mq3": 43,  # 43/120 = 35.8%  (paper: ~36%)
    "mq4": 35,  # 35/120 = 29.2%  (paper: ~29%)
}

MetaQueryType = str  # 'mq1' | 'mq2' | 'mq3' | 'mq4'

_ROLES = (
    "Client Solution Executive", "Technical Solution Architect",
    "Cross Tower Technical Solution Architect",
    "Delivery Project Executive", "Engagement Manager", "Pricer",
)

_REPLY_BODIES = (
    "Try reaching out to the team on the coast deal; they did something "
    "similar last year.",
    "I think the delivery organization has a contact list for that.",
    "Adding a couple of folks who might know.",
    "We struggled with the same question last quarter - no central "
    "answer, sadly.",
)


@dataclass(frozen=True)
class EmailThread:
    """One distribution-list thread with its ground-truth labels.

    Attributes:
        thread_id: Stable identifier.
        messages: The thread's emails, question first.
        true_types: Which meta-queries the thread expresses.
        asks_social: True when the thread solicits people/contact info.
    """

    thread_id: str
    messages: Tuple[EmailMessage, ...]
    true_types: FrozenSet[MetaQueryType]
    asks_social: bool


class ThreadGenerator:
    """Seeded generator of the 120-thread (configurable) study corpus."""

    def __init__(
        self,
        taxonomy: ServiceTaxonomy,
        deals: Sequence[DealSpec],
        seed: int = 2008,
    ) -> None:
        if not deals:
            raise CorpusError("thread generation needs at least one deal")
        self.taxonomy = taxonomy
        self.deals = list(deals)
        self._rng = random.Random(seed)

    # -- label allocation -----------------------------------------------------

    def _allocate_labels(self, total: int) -> List[FrozenSet[str]]:
        """Distribute meta-query labels over ``total`` threads.

        Counts scale proportionally from the paper's 120-thread
        allocation; MQ4 labels beyond the primary budget ride along as
        secondary labels on MQ1 threads (scope + keyword compounds).
        """
        scale = total / 120.0
        mq1 = round(PAPER_THREAD_COUNTS["mq1"] * scale)
        mq2 = round(PAPER_THREAD_COUNTS["mq2"] * scale)
        mq3 = round(PAPER_THREAD_COUNTS["mq3"] * scale)
        mq4 = round(PAPER_THREAD_COUNTS["mq4"] * scale)
        primary_mq4 = max(total - (mq1 + mq2 + mq3), 0)
        compound_mq4 = mq4 - primary_mq4
        if compound_mq4 < 0 or compound_mq4 > mq1:
            raise CorpusError(
                f"cannot allocate labels for {total} threads"
            )
        labels: List[FrozenSet[str]] = []
        for i in range(mq1):
            if i < compound_mq4:
                labels.append(frozenset({"mq1", "mq4"}))
            else:
                labels.append(frozenset({"mq1"}))
        labels.extend(frozenset({"mq2"}) for _ in range(mq2))
        labels.extend(frozenset({"mq3"}) for _ in range(mq3))
        labels.extend(frozenset({"mq4"}) for _ in range(primary_mq4))
        # Trim/pad for rounding drift at non-multiples of 120.
        while len(labels) > total:
            labels.pop()
        while len(labels) < total:
            labels.append(frozenset({"mq1"}))
        self._rng.shuffle(labels)
        return labels

    # -- thread construction --------------------------------------------------

    def generate(self, total: int = 120) -> List[EmailThread]:
        """Generate ``total`` threads with paper-shaped label counts."""
        threads = []
        for index, label_set in enumerate(self._allocate_labels(total)):
            threads.append(self._build_thread(index, label_set))
        return threads

    def _build_thread(
        self, index: int, types: FrozenSet[str]
    ) -> EmailThread:
        rng = self._rng
        deal = rng.choice(self.deals)
        subject, body = self._question_for(types, deal)
        thread_id = f"thread-{index:04d}"
        asker = rng.choice(deal.team).person
        messages = [
            EmailMessage(
                doc_id=f"{thread_id}/msg-000",
                title=subject,
                deal_id=deal.deal_id,
                repository="sales-dl",
                sender=asker.email,
                recipients=(f"sales-dl@{VENDOR_DOMAIN}",),
                subject=subject,
                body=body,
                thread_id=thread_id,
            )
        ]
        for reply_index in range(rng.randint(0, 2)):
            responder = rng.choice(rng.choice(self.deals).team).person
            messages.append(
                EmailMessage(
                    doc_id=f"{thread_id}/msg-{reply_index + 1:03d}",
                    title=f"RE: {subject}",
                    deal_id=deal.deal_id,
                    repository="sales-dl",
                    sender=responder.email,
                    recipients=(f"sales-dl@{VENDOR_DOMAIN}",),
                    subject=f"RE: {subject}",
                    body=rng.choice(_REPLY_BODIES),
                    thread_id=thread_id,
                )
            )
        asks_social = bool(types & {"mq2", "mq3"})
        return EmailThread(
            thread_id=thread_id,
            messages=tuple(messages),
            true_types=types,
            asks_social=asks_social,
        )

    def _question_for(
        self, types: FrozenSet[str], deal: DealSpec
    ) -> Tuple[str, str]:
        rng = self._rng
        service = rng.choice(
            [n.name for n in self.taxonomy.towers]
        )
        parts = []
        if "mq1" in types:
            parts.append(
                f"Which business engagements have a scope that involves "
                f"{service}? Trying to build a reference list."
            )
        if "mq2" in types:
            contact = rng.choice(deal.team).person
            role = rng.choice(_ROLES)
            parts.append(
                f"Who in the {role} role has worked with "
                f"{contact.full_name} in {contact.organization}? Need an "
                "introduction and their contact details."
            )
        if "mq3" in types:
            role = rng.choice(_ROLES)
            parts.append(
                f"Who has worked in the capacity of {role} on a recent "
                "engagement? Looking for someone to talk to."
            )
        if "mq4" in types:
            tower, tech = (
                rng.choice(deal.technologies)
                if deal.technologies
                else (service, "automation")
            )
            parts.append(
                f"Who has worked on {tower} that involved {tech}? Any "
                "pointers to the engagement workbooks appreciated."
            )
        subject = parts[0].split("?")[0][:70] + "?"
        return subject, " ".join(parts)
