"""Top-level corpus generation: deals + workbooks + emails + directory.

One :class:`CorpusGenerator` call produces a complete, self-consistent
synthetic world — the substitute for the paper's proprietary IBM data:

* ground-truth :class:`DealSpec` objects (scope, team, technologies),
* one engagement workbook per deal with the paper's noise phenomena,
* the sales distribution list (120 threads by default), and
* the intranet personnel directory covering every person that appears.

Everything derives from a single seed; the paper-scale configuration
(23 deals / ~15,000 documents, Section 4) is available via
:meth:`CorpusConfig.paper_scale`, while tests default to a small fast
profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.corpus.deals import DealGenerator, DealSpec
from repro.corpus.documents_gen import MIN_DOCS_PER_DEAL, WorkbookFactory
from repro.corpus.emails_gen import EmailThread, ThreadGenerator
from repro.corpus.taxonomy import ServiceTaxonomy, build_default_taxonomy
from repro.docmodel.repository import WorkbookCollection
from repro.errors import CorpusError
from repro.intranet.directory import PersonnelDirectory

__all__ = ["CorpusConfig", "Corpus", "CorpusGenerator"]


@dataclass(frozen=True)
class CorpusConfig:
    """Generation parameters.

    Attributes:
        seed: Master seed; all randomness derives from it.
        n_deals: Number of engagements.
        docs_per_deal: Workbook size per deal (min 12).
        n_threads: Distribution-list threads.
        staff_pool_size: Shared vendor staff pool (drives cross-deal
            people overlap).
    """

    seed: int = 2008
    n_deals: int = 6
    docs_per_deal: int = 24
    n_threads: int = 120
    staff_pool_size: int = 150

    def __post_init__(self) -> None:
        if self.n_deals < 1:
            raise CorpusError("n_deals must be >= 1")
        if self.docs_per_deal < MIN_DOCS_PER_DEAL:
            raise CorpusError(
                f"docs_per_deal must be >= {MIN_DOCS_PER_DEAL}"
            )

    @staticmethod
    def paper_scale(seed: int = 2008) -> "CorpusConfig":
        """The paper's evaluation corpus: 23 deals, ~15,000 documents."""
        return CorpusConfig(seed=seed, n_deals=23, docs_per_deal=652)

    @staticmethod
    def table2_scale(seed: int = 2008) -> "CorpusConfig":
        """The Table 2 experiment subset: 12 deals, moderate workbooks."""
        return CorpusConfig(seed=seed, n_deals=12, docs_per_deal=80)


@dataclass
class Corpus:
    """A generated synthetic world.

    Attributes:
        config: Parameters it was generated with.
        taxonomy: Shared services taxonomy.
        deals: Ground-truth deal specs (index = generation order).
        collection: All engagement workbooks.
        threads: The distribution-list threads with labels.
        directory: The intranet personnel directory.
    """

    config: CorpusConfig
    taxonomy: ServiceTaxonomy
    deals: List[DealSpec]
    collection: WorkbookCollection
    threads: List[EmailThread]
    directory: PersonnelDirectory

    def deal_by_id(self, deal_id: str) -> DealSpec:
        """Ground truth for one deal."""
        for deal in self.deals:
            if deal.deal_id == deal_id:
                return deal
        raise CorpusError(f"no deal {deal_id!r}")

    def deals_with_service(self, service: str) -> List[DealSpec]:
        """Truth set for Meta-query 1: deals whose scope covers service."""
        return [
            deal for deal in self.deals
            if deal.has_service(self.taxonomy, service)
        ]

    @property
    def document_count(self) -> int:
        """Total workbook documents."""
        return self.collection.document_count()


class CorpusGenerator:
    """Deterministic factory for :class:`Corpus` instances."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusConfig()

    def generate(self) -> Corpus:
        """Build the complete synthetic world."""
        config = self.config
        taxonomy = build_default_taxonomy()
        deal_generator = DealGenerator(
            seed=config.seed,
            taxonomy=taxonomy,
            staff_pool_size=config.staff_pool_size,
        )
        deals = deal_generator.generate(config.n_deals)

        factory = WorkbookFactory(taxonomy, seed=config.seed + 1)
        collection = WorkbookCollection(
            factory.build_workbook(deal, config.docs_per_deal)
            for deal in deals
        )

        threads = ThreadGenerator(
            taxonomy, deals, seed=config.seed + 2
        ).generate(config.n_threads)

        directory = PersonnelDirectory()
        directory.load_people(deal_generator.staff)
        for deal in deals:
            directory.load_people(m.person for m in deal.team)

        return Corpus(
            config=config,
            taxonomy=taxonomy,
            deals=deals,
            collection=collection,
            threads=threads,
            directory=directory,
        )

    def iter_workbooks(self) -> Iterator[object]:
        """Stream the engagement workbooks one deal at a time.

        For 100k+ document builds the full :class:`Corpus` (every
        workbook's documents resident at once) dominates memory.  This
        yields each workbook as it is generated so the caller can
        index it and drop it — peak memory is one workbook, not the
        corpus.

        Determinism contract: the yielded sequence is bit-identical to
        ``generate().collection`` for the same config — the deal specs
        and the factory's seed derivation (``seed + 1``) are exactly
        those of :meth:`generate`.  Only the workbooks stream; callers
        needing deal ground truth or the email threads use
        :meth:`generate`.
        """
        config = self.config
        taxonomy = build_default_taxonomy()
        deal_generator = DealGenerator(
            seed=config.seed,
            taxonomy=taxonomy,
            staff_pool_size=config.staff_pool_size,
        )
        deals = deal_generator.generate(config.n_deals)
        factory = WorkbookFactory(taxonomy, seed=config.seed + 1)
        for deal in deals:
            yield factory.build_workbook(deal, config.docs_per_deal)
