"""Deal (engagement) ground-truth generation.

A :class:`DealSpec` is the *truth* about one engagement: its real scope
(ordered by significance), team, technologies, financial context, and —
critically for evaluation — which services are merely *mentioned
incidentally* in its documents without being in scope.  The document
generator plants exactly these facts (plus noise) into the workbook, so
precision/recall of any search strategy can be computed against the
spec (this replaces the paper's human domain expert).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.corpus.people import (
    CLIENT_ORGS,
    CLIENT_ROLES,
    CONSULTANT_ORGS,
    FIRST_NAMES,
    GEOGRAPHIES,
    INDUSTRIES,
    LAST_NAMES,
    VALUE_BANDS,
    VENDOR_DOMAIN,
    VENDOR_ORG,
    VENDOR_ROLES,
    Person,
)
from repro.corpus.taxonomy import ServiceTaxonomy, build_default_taxonomy
from repro.errors import CorpusError

__all__ = ["TeamMember", "DealSpec", "DealGenerator", "deal_name_for"]


@dataclass(frozen=True)
class TeamMember:
    """One person's involvement in a deal.

    Attributes:
        person: The person.
        role: Canonical role name.
        category: People-tab category (core deal team, delivery, ...).
    """

    person: Person
    role: str
    category: str


@dataclass(frozen=True)
class DealSpec:
    """Ground truth for one engagement."""

    deal_id: str
    name: str
    customer: str
    industry: str
    consultant: str
    geography: str
    contract_start: str  # ISO date
    term_months: int
    value_band: str
    is_international: bool
    towers: Tuple[str, ...]  # canonical names, most significant first
    technologies: Tuple[Tuple[str, str], ...]  # (tower, technology)
    team: Tuple[TeamMember, ...]
    incidental_services: Tuple[str, ...]  # mentioned but NOT in scope
    win_strategies: Tuple[str, ...]
    client_references: Tuple[str, ...]

    def has_service(self, taxonomy: ServiceTaxonomy, service: str) -> bool:
        """True if ``service`` (or any descendant) is in scope."""
        expanded = {n.name for n in taxonomy.expand(service)}
        return any(t in expanded for t in self.towers)

    def members_with_role(self, role: str) -> List[TeamMember]:
        """Team members holding ``role`` (case-insensitive)."""
        lowered = role.lower()
        return [m for m in self.team if m.role.lower() == lowered]

    def technologies_for(self, tower: str) -> List[str]:
        """Technology terms planted under ``tower``."""
        return [tech for t, tech in self.technologies if t == tower]


_WIN_STRATEGY_THEMES = (
    "price-to-win with aggressive year-one credits",
    "co-location of the transition team at the client site",
    "early executive alignment with the client CIO",
    "bundling transformation projects into the base contract",
    "re-badging the incumbent staff to protect continuity",
    "offshore delivery mix to hit the target cost case",
    "jointly funded innovation lab as a sweetener",
    "benchmark-based pricing clauses to counter the consultant",
)

_REFERENCE_TEMPLATES = (
    "Reference: similar {industry} engagement completed in {year}",
    "Client visit hosted with a comparable {industry} account",
    "Analyst citation covering our {industry} delivery record",
)


def deal_name_for(index: int) -> str:
    """``DEAL A`` ... ``DEAL Z``, then ``DEAL AA`` and so on."""
    letters = ""
    remaining = index
    while True:
        letters = chr(ord("A") + remaining % 26) + letters
        remaining = remaining // 26 - 1
        if remaining < 0:
            break
    return f"DEAL {letters}"


class DealGenerator:
    """Seeded generator of :class:`DealSpec` ground truth.

    People are drawn from a shared staff pool so the same individual
    works several deals — Meta-query 2 ("who has worked with <person>")
    needs cross-deal co-occurrence to be meaningful.
    """

    def __init__(
        self,
        seed: int = 2008,
        taxonomy: Optional[ServiceTaxonomy] = None,
        staff_pool_size: int = 150,
    ) -> None:
        if staff_pool_size < 20:
            raise CorpusError("staff_pool_size must be at least 20")
        self._rng = random.Random(seed)
        self.taxonomy = taxonomy or build_default_taxonomy()
        self._used_emails: Dict[str, int] = {}
        self._phone_counter = 100
        self._staff: List[Person] = [
            self._make_person(VENDOR_ORG, VENDOR_DOMAIN)
            for _ in range(staff_pool_size)
        ]

    # -- people ------------------------------------------------------------

    def _make_person(self, organization: str, domain: str) -> Person:
        first = self._rng.choice(FIRST_NAMES)
        last = self._rng.choice(LAST_NAMES)
        local = f"{first.lower()}.{last.lower()}"
        suffix = self._used_emails.get(local, 0)
        self._used_emails[local] = suffix + 1
        if suffix:
            local = f"{local}{suffix + 1}"
        self._phone_counter += 1
        phone = f"+1-914-555-{self._phone_counter:04d}"
        return Person(first, last, organization, f"{local}@{domain}", phone)

    def _client_person(self, customer: str) -> Person:
        domain = customer.split()[0].lower().replace("/", "") + ".com"
        return self._make_person(customer, domain)

    # -- deals ---------------------------------------------------------------

    def generate(self, count: int) -> List[DealSpec]:
        """Generate ``count`` deal specs deterministically."""
        return [self._generate_one(i) for i in range(count)]

    def _generate_one(self, index: int) -> DealSpec:
        rng = self._rng
        customer = CLIENT_ORGS[index % len(CLIENT_ORGS)]
        industry = rng.choice(INDUSTRIES)
        consultant = (
            rng.choice(CONSULTANT_ORGS) if rng.random() < 0.6 else ""
        )
        year = rng.choice((2004, 2005, 2006))
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)

        # Scope: 4-10 services; bias toward including tower families the
        # meta-queries exercise so every corpus size supports them.
        candidates = [n.name for n in self.taxonomy.all_nodes
                      if n.name != "End User Services"]
        rng.shuffle(candidates)
        scope_size = rng.randint(4, 10)
        towers = candidates[:scope_size]
        # Scope parents implied by subtowers join the scope's tail (a
        # deal with CSC in scope *is* an End User Services deal).
        implied = []
        for tower in towers:
            parent = self.taxonomy.get(tower).parent
            if parent and parent not in towers and parent not in implied:
                implied.append(parent)
        towers = tuple(towers + implied)

        # Technologies: 1-2 per scoped service that has any.
        technologies: List[Tuple[str, str]] = []
        for tower in towers:
            available = list(self.taxonomy.get(tower).technologies)
            rng.shuffle(available)
            for tech in available[: rng.randint(1, 2)]:
                technologies.append((tower, tech))

        # Incidental services: talked about, not in scope.
        out_of_scope = [c for c in candidates[scope_size:]
                        if c not in towers]
        incidental = tuple(out_of_scope[: rng.randint(2, 5)])

        # Team: a sample of vendor roles from the shared staff pool,
        # plus client-side contacts and possibly the consultant.
        team: List[TeamMember] = []
        used_people: set = set()
        vendor_roles = list(VENDOR_ROLES)
        rng.shuffle(vendor_roles)
        for role, category in vendor_roles[: rng.randint(7, len(vendor_roles))]:
            person = rng.choice(self._staff)
            while person.email in used_people:
                person = rng.choice(self._staff)
            used_people.add(person.email)
            team.append(TeamMember(person, role, category))
        for role, category in rng.sample(CLIENT_ROLES,
                                         rng.randint(2, len(CLIENT_ROLES))):
            team.append(TeamMember(self._client_person(customer), role,
                                   category))
        if consultant:
            consultant_person = self._make_person(
                consultant, consultant.split()[0].lower() + ".com"
            )
            team.append(
                TeamMember(consultant_person, "Third Party Consultant",
                           "third party consultant")
            )

        strategies = tuple(
            rng.sample(_WIN_STRATEGY_THEMES, rng.randint(2, 4))
        )
        references = tuple(
            template.format(industry=industry, year=year - 1)
            for template in rng.sample(_REFERENCE_TEMPLATES,
                                       rng.randint(1, 2))
        )

        return DealSpec(
            deal_id=f"deal-{index:04d}",
            name=deal_name_for(index),
            customer=customer,
            industry=industry,
            consultant=consultant,
            geography=rng.choice(GEOGRAPHIES),
            contract_start=f"{year}-{month:02d}-{day:02d}",
            term_months=rng.choice((36, 48, 60, 84)),
            value_band=rng.choice(VALUE_BANDS),
            is_international=rng.random() < 0.4,
            towers=towers,
            technologies=tuple(technologies),
            team=tuple(team),
            incidental_services=incidental,
            win_strategies=strategies,
            client_references=references,
        )

    @property
    def staff(self) -> List[Person]:
        """The shared vendor staff pool."""
        return list(self._staff)
