"""The IT-services taxonomy: towers, subtowers, aliases, technologies.

Paper terminology: a *tower* is a service area in an engagement's scope
("Customer Service Center", "Storage Management Services", ...).  The
taxonomy mirrors the service names visible in the paper's Figures 4-9,
including the crucial structure behind Meta-query 1: **End User
Services** is a parent with subtowers **Customer Service Center** and
**Distributed Client Services**, and every service has inconsistent
surface forms ("CSC", "Customer Services Center") — the paper notes the
phrase is "not used consistently throughout the organization", which is
why naive keyword search over-matches.

The ontology-based annotator (:mod:`repro.annotators.ontology`) walks
this same structure, so taxonomy quality directly drives annotation
quality (Table 1's "ontology-based" row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CorpusError

__all__ = ["ServiceNode", "ServiceTaxonomy", "build_default_taxonomy"]


@dataclass(frozen=True)
class ServiceNode:
    """One service in the taxonomy.

    Attributes:
        name: Canonical name ("Customer Service Center").
        acronym: Common acronym ("CSC"), empty when none.
        aliases: Other surface forms seen in documents.
        parent: Canonical name of the parent tower, None for top level.
        technologies: Technology terms typical for this service; used by
            the corpus generator and the technology-solution annotator.
    """

    name: str
    acronym: str = ""
    aliases: Tuple[str, ...] = ()
    parent: Optional[str] = None
    technologies: Tuple[str, ...] = ()

    @property
    def surface_forms(self) -> Tuple[str, ...]:
        """All ways this service appears in text, canonical first."""
        forms = [self.name]
        if self.acronym:
            forms.append(self.acronym)
        forms.extend(self.aliases)
        return tuple(forms)


class ServiceTaxonomy:
    """Lookup structure over service nodes."""

    def __init__(self, nodes: List[ServiceNode]) -> None:
        self._nodes: Dict[str, ServiceNode] = {}
        self._by_surface: Dict[str, ServiceNode] = {}
        for node in nodes:
            if node.name.lower() in self._nodes:
                raise CorpusError(f"duplicate service {node.name!r}")
            self._nodes[node.name.lower()] = node
        for node in nodes:
            if node.parent is not None and node.parent.lower() not in self._nodes:
                raise CorpusError(
                    f"service {node.name!r} has unknown parent "
                    f"{node.parent!r}"
                )
            for surface in node.surface_forms:
                # First registration wins so canonical names cannot be
                # shadowed by another node's alias.
                self._by_surface.setdefault(surface.lower(), node)

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> ServiceNode:
        """Node by canonical name."""
        node = self._nodes.get(name.lower())
        if node is None:
            raise CorpusError(f"unknown service {name!r}")
        return node

    def resolve(self, surface: str) -> Optional[ServiceNode]:
        """Node whose canonical name/acronym/alias equals ``surface``."""
        return self._by_surface.get(surface.strip().lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._nodes

    # -- structure -----------------------------------------------------------

    @property
    def towers(self) -> List[ServiceNode]:
        """Top-level services, in registration order."""
        return [n for n in self._nodes.values() if n.parent is None]

    @property
    def all_nodes(self) -> List[ServiceNode]:
        """Every node, towers first then subtowers, registration order."""
        return list(self._nodes.values())

    def subtowers(self, name: str) -> List[ServiceNode]:
        """Direct children of the named tower."""
        self.get(name)
        return [
            n
            for n in self._nodes.values()
            if n.parent is not None and n.parent.lower() == name.lower()
        ]

    def expand(self, name: str) -> List[ServiceNode]:
        """The node plus all its descendants (Meta-query 1's expansion)."""
        node = self.get(name)
        expanded = [node]
        for child in self.subtowers(name):
            expanded.extend(self.expand(child.name))
        return expanded

    def canonical(self, surface: str) -> Optional[str]:
        """Canonical service name for any surface form, or None."""
        node = self.resolve(surface)
        return node.name if node is not None else None

    def suggest(self, surface: str, limit: int = 3,
                min_similarity: float = 0.75) -> List[str]:
        """Closest canonical names for a misspelled/unknown concept.

        Used by the search front-end for a "did you mean" affordance
        when the tower criterion resolves to nothing.  Similarity is the
        best Jaro-Winkler score over each node's surface forms.
        """
        from repro.text.similarity import jaro_winkler

        surface = surface.strip().lower()
        if not surface:
            return []
        scored = []
        for node in self._nodes.values():
            best = max(
                jaro_winkler(surface, form.lower())
                for form in node.surface_forms
            )
            if best >= min_similarity:
                scored.append((best, node.name))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [name for _, name in scored[:limit]]


def build_default_taxonomy() -> ServiceTaxonomy:
    """The taxonomy used throughout the reproduction.

    Tower and subtower names follow the paper's screenshots (Figures
    4-9); technologies are plausible mid-2000s IT-services vocabulary
    chosen so each tower has distinctive terms ("data replication" lives
    under Storage Management Services, as in Meta-query 4).
    """
    nodes = [
        ServiceNode(
            "End User Services", "EUS",
            aliases=("End-User Services",),
            technologies=("desktop imaging", "service desk tooling"),
        ),
        ServiceNode(
            "Customer Service Center", "CSC",
            aliases=("Customer Services Center", "Call Center Services"),
            parent="End User Services",
            technologies=("call routing", "IVR scripting",
                          "ticket tracking"),
        ),
        ServiceNode(
            "Distributed Client Services", "DCS",
            aliases=("Distributed Computing Services", "Desktop Services"),
            parent="End User Services",
            technologies=("software distribution", "patch management",
                          "desktop imaging"),
        ),
        ServiceNode(
            "Storage Management Services", "SMS",
            aliases=("Storage Services",),
            technologies=("data replication", "SAN fabric design",
                          "tape backup automation", "snapshot mirroring"),
        ),
        ServiceNode(
            "Server Systems Management", "SSM",
            aliases=("Server Management",),
            technologies=("server consolidation", "capacity monitoring",
                          "blade provisioning"),
        ),
        ServiceNode(
            "Network Services", "",
            technologies=("MPLS routing", "network monitoring"),
        ),
        ServiceNode(
            "LAN", "",
            parent="Network Services",
            technologies=("switch fabric", "VLAN segmentation"),
        ),
        ServiceNode(
            "WAN", "",
            parent="Network Services",
            technologies=("MPLS routing", "bandwidth shaping"),
        ),
        ServiceNode(
            "Voice Services", "",
            parent="Network Services",
            technologies=("VoIP migration", "PBX consolidation"),
        ),
        ServiceNode(
            "Data Network Services", "DNS",
            parent="Network Services",
            technologies=("network monitoring", "firewall management"),
        ),
        ServiceNode(
            "Mainframe Services", "",
            aliases=("Mainframe TSA Services",),
            technologies=("LPAR tuning", "batch scheduling",
                          "sysplex management"),
        ),
        ServiceNode(
            "Midrange Services", "",
            technologies=("AIX administration", "cluster failover"),
        ),
        ServiceNode(
            "AS400", "",
            aliases=("AS/400",),
            technologies=("RPG maintenance", "iSeries consolidation"),
        ),
        ServiceNode(
            "Data Center Services", "DCS2",
            aliases=("Data Center Operations",),
            technologies=("facility consolidation", "power management"),
        ),
        ServiceNode(
            "Disaster Recovery Services", "DRS",
            aliases=("BCRS", "Business Continuity and Recovery Services"),
            technologies=("data replication", "hot-site failover",
                          "recovery time objectives"),
        ),
        ServiceNode(
            "eBusiness Services", "",
            aliases=("e-Business Services",),
            technologies=("web hosting", "portal integration"),
        ),
        ServiceNode(
            "Application Management Services", "AMS",
            technologies=("code remediation", "release management"),
        ),
        ServiceNode(
            "Asset Management", "",
            technologies=("license tracking", "asset discovery"),
        ),
        ServiceNode(
            "Procurement Services", "",
            technologies=("supplier catalogs", "purchase order workflow"),
        ),
        ServiceNode(
            "Security Services", "",
            technologies=("intrusion detection", "identity management",
                          "firewall management"),
        ),
        ServiceNode(
            "Groupware", "",
            technologies=("mail migration", "collaboration tooling"),
        ),
        ServiceNode(
            "Infrastructure Services", "",
            technologies=("middleware support", "monitoring framework"),
        ),
        ServiceNode(
            "Human Resources", "HR",
            aliases=("HR Services",),
            technologies=("payroll interfaces", "benefits administration"),
        ),
        ServiceNode(
            "Compliance And Regulatory", "",
            technologies=("audit trail reporting", "records retention"),
        ),
        ServiceNode(
            "Help Desk Services", "",
            aliases=("Helpdesk",),
            parent="End User Services",
            technologies=("ticket tracking", "knowledge base tooling"),
        ),
    ]
    return ServiceTaxonomy(nodes)
