"""Name, organization and role pools for the synthetic corpus.

All pools are fixed lists so that generation is fully deterministic
given a seed.  The vendor organization (the paper's IBM) is the neutral
"Vantage Global Services"; client organizations, sourcing consultants
and geographies echo the paper's synopsis fields (Figure 6: industry,
outsourcing consultant "TPI", contract value bands, international flag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "Person",
    "FIRST_NAMES",
    "LAST_NAMES",
    "CLIENT_ORGS",
    "CONSULTANT_ORGS",
    "VENDOR_ORG",
    "VENDOR_DOMAIN",
    "INDUSTRIES",
    "GEOGRAPHIES",
    "VALUE_BANDS",
    "VENDOR_ROLES",
    "CLIENT_ROLES",
    "ROLE_CATEGORIES",
]

FIRST_NAMES: Tuple[str, ...] = (
    "Sam", "Jane", "Carlos", "Priya", "Wei", "Elena", "Marcus", "Aisha",
    "Viktor", "Naomi", "Oliver", "Grace", "Hector", "Ingrid", "Tariq",
    "Beatriz", "Dmitri", "Yuki", "Leon", "Fatima", "Andre", "Sofia",
    "Rajesh", "Hannah", "Pedro", "Linnea", "Omar", "Clara", "Feng",
    "Amara", "Gustav", "Noor", "Mateo", "Ivy", "Kenji", "Paula",
    "Stefan", "Leila", "Bruno", "Mei",
)

LAST_NAMES: Tuple[str, ...] = (
    "White", "Doe", "Ramirez", "Patel", "Chen", "Petrova", "Hall",
    "Okafor", "Ivanov", "Tanaka", "Brown", "Kim", "Silva", "Larsson",
    "Hassan", "Costa", "Volkov", "Sato", "Fischer", "Rahman", "Dubois",
    "Rossi", "Iyer", "Schmidt", "Alves", "Nilsson", "Farouk", "Weber",
    "Liang", "Diallo", "Berg", "Karim", "Vargas", "Quinn", "Mori",
    "Santos", "Keller", "Nasser", "Moreau", "Zhang",
)

CLIENT_ORGS: Tuple[str, ...] = (
    "ABC", "Initech", "Globex", "Stellar Insurance", "Northbank",
    "Meridian Health", "Quantum Retail", "Apex Manufacturing",
    "TransContinental Air", "Heliotrope Energy", "Crestline Bank",
    "Pinnacle Life", "Orchard Foods", "Vector Telecom", "Summit Mutual",
    "Ironwood Logistics", "BlueRiver Utilities", "Falcon Media",
    "Greenfield Pharma", "Atlas Freight", "Cobalt Chemicals",
    "Silverlake Securities", "Harborview Hotels",
)

CONSULTANT_ORGS: Tuple[str, ...] = ("TPI", "Everest Group", "Gartner Advisory")

VENDOR_ORG = "Vantage Global Services"
VENDOR_DOMAIN = "vantagegs.com"

INDUSTRIES: Tuple[str, ...] = (
    "Banking", "Insurance", "Financial Services", "Financial Markets",
    "Industrial", "Communications", "Distribution", "Retail Products",
    "Healthcare", "Public Sector", "Travel and Transportation",
)

GEOGRAPHIES: Tuple[str, ...] = (
    "Americas (AM), United States", "Americas (AM), Canada",
    "EMEA, United Kingdom", "EMEA, Germany", "AP, Japan", "AP, Australia",
    "Americas (AM), Brazil", "EMEA, Nordics",
)

VALUE_BANDS: Tuple[str, ...] = (
    "under 25M", "25 to 50M", "50 to 100M", "over 100M",
)

# (role, People-tab category) for the vendor side; categories follow the
# paper's People tab: core deal team, technical support team, delivery
# team, client team, third party consultant.
VENDOR_ROLES: Tuple[Tuple[str, str], ...] = (
    ("Client Solution Executive", "core deal team"),
    ("Sales Leader", "core deal team"),
    ("Engagement Manager", "core deal team"),
    ("Pricer", "core deal team"),
    ("Financial Analyst", "core deal team"),
    ("Contracts Lead", "core deal team"),
    ("Technical Solution Architect", "technical support team"),
    ("Cross Tower Technical Solution Architect", "technical support team"),
    ("Security Architect", "technical support team"),
    ("Delivery Project Executive", "delivery team"),
    ("Transition Manager", "delivery team"),
    ("HR Lead", "delivery team"),
)

CLIENT_ROLES: Tuple[Tuple[str, str], ...] = (
    ("Chief Information Officer", "client team"),
    ("Procurement Director", "client team"),
    ("IT Director", "client team"),
    ("Client Executive", "client team"),
)

ROLE_CATEGORIES: Tuple[str, ...] = (
    "core deal team",
    "technical support team",
    "delivery team",
    "client team",
    "third party consultant",
)


@dataclass(frozen=True)
class Person:
    """One person in the synthetic world.

    Attributes:
        first: Given name.
        last: Family name.
        organization: Employer display name.
        email: Corporate address (firstname.lastname@domain).
        phone: Normalized phone number.
    """

    first: str
    last: str
    organization: str
    email: str
    phone: str

    @property
    def full_name(self) -> str:
        """``First Last`` display form."""
        return f"{self.first} {self.last}"

    @property
    def reversed_name(self) -> str:
        """``Last, First`` form, as badly-maintained rosters write it."""
        return f"{self.last}, {self.first}"
