"""Per-deal workbook generation: planting facts and noise.

The factory turns one :class:`~repro.corpus.deals.DealSpec` into an
engagement workbook whose documents exhibit the phenomena the paper's
evaluation hinges on:

* **Scope decks** state the true scope, with inconsistent surface forms
  (canonical names, acronyms, aliases) and significance expressed as
  mention frequency — the CPE later counts mentions to order towers
  (Figure 5's ordering).
* **Team rosters** are messy spreadsheets: reversed names, missing
  emails/phones, duplicate rows with conflicting values — the inputs the
  social networking annotator (Figure 3) must survive.
* **Service-detail forms** carry schema fields like ``Cross Tower TSA``
  that are usually *empty*, so keyword search hits the field name with
  no value behind it (Meta-query 3's 149 mostly-useless documents).
* **Boilerplate appendices** and **meeting minutes** mention services
  that are NOT in scope (Figure 4's precision collapse), and emails
  scatter people and service names through free text.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.corpus.deals import DealSpec
from repro.corpus.taxonomy import ServiceNode, ServiceTaxonomy
from repro.docmodel.documents import (
    EmailMessage,
    EnterpriseDocument,
    FormDocument,
    Presentation,
    Sheet,
    Slide,
    Spreadsheet,
    TextDocument,
)
from repro.docmodel.repository import EngagementWorkbook
from repro.errors import CorpusError

__all__ = ["WorkbookFactory", "MIN_DOCS_PER_DEAL"]

MIN_DOCS_PER_DEAL = 12

_STATUS_SENTENCES = (
    "Weekly status call held with the client stakeholders.",
    "Pricing model iteration four was circulated for review.",
    "Transition planning workshop scheduled for next month.",
    "Contract redlines returned from legal with minor comments.",
    "Due diligence data room access was granted to the team.",
    "Benchmarking data requested by the sourcing consultant.",
    "Solution assurance review passed with two open actions.",
    "Executive sponsor briefing deck updated for the steering committee.",
)

_GENERIC_SENTENCES = (
    "Travel arrangements for the onsite workshop were confirmed.",
    "Meeting minutes were distributed to all attendees.",
    "The action-item tracker was updated after the call.",
    "Room bookings for the proposal war room were extended.",
    "Printing and binding of the executive summary was arranged.",
)

_INCIDENTAL_TEMPLATES = (
    "The client asked in passing whether {service} could be added in a "
    "later phase; no commitment was made.",
    "For context, the incumbent provider also runs {service} for an "
    "affiliate, which is out of scope here.",
    "A question about {service} was parked in the issues log; it is not "
    "part of this engagement.",
    "The {service} organization at the client was mentioned during "
    "introductions.",
)

_BOILERPLATE_LEAD = (
    "Standard appendix: service catalog reference. The following service "
    "lines are listed for completeness only: "
)

_EMAIL_BODIES = (
    "Can you review the attached draft before the client call?",
    "The numbers in the cost case moved; see the delta tab.",
    "We need the reference slide updated before Thursday.",
    "Following up on the open action from the workshop.",
)


class WorkbookFactory:
    """Builds one workbook per deal, deterministically from a seed."""

    def __init__(self, taxonomy: ServiceTaxonomy, seed: int = 2008) -> None:
        self.taxonomy = taxonomy
        self._rng = random.Random(seed)

    # -- public --------------------------------------------------------------

    def build_workbook(
        self, deal: DealSpec, docs_target: int = 40
    ) -> EngagementWorkbook:
        """Generate ``docs_target`` documents for ``deal``.

        The core documents (scope deck, roster, forms, win strategy,
        technology solutions, overview, references) always exist;
        filler documents pad up to the target.
        """
        if docs_target < MIN_DOCS_PER_DEAL:
            raise CorpusError(
                f"docs_target must be >= {MIN_DOCS_PER_DEAL}"
            )
        documents: List[EnterpriseDocument] = []
        documents.append(self._scope_deck(deal))
        documents.append(self._team_roster(deal))
        documents.extend(self._service_forms(deal))
        documents.append(self._win_strategy_doc(deal))
        documents.extend(self._technology_docs(deal))
        documents.append(self._overview_doc(deal))
        documents.append(self._references_doc(deal))
        filler_needed = docs_target - len(documents)
        documents.extend(self._filler_docs(deal, max(filler_needed, 0)))
        workbook = EngagementWorkbook(
            deal.deal_id, name=f"EWB {deal.name}", documents=documents
        )
        return workbook

    # -- helpers ------------------------------------------------------------

    def _doc_id(self, deal: DealSpec, kind: str, index: int = 0) -> str:
        return f"{deal.deal_id}/{kind}-{index:03d}"

    def _surface(self, node: ServiceNode) -> str:
        """A surface form for a service, mostly canonical, often not."""
        forms = node.surface_forms
        roll = self._rng.random()
        if roll < 0.6 or len(forms) == 1:
            return forms[0]
        return self._rng.choice(forms[1:])

    def _team_author(self, deal: DealSpec) -> str:
        return self._rng.choice(deal.team).person.full_name

    # -- core documents ----------------------------------------------------------

    def _scope_deck(self, deal: DealSpec) -> Presentation:
        """The deck stating the true scope, significance-weighted."""
        rng = self._rng
        slides = [
            Slide(
                title=f"{deal.name} Engagement Scope",
                subtitle=f"Prepared for {deal.customer}",
                bullets=(f"Industry: {deal.industry}",
                         f"Total contract value: {deal.value_band}"),
            )
        ]
        node_count = len(deal.towers)
        for rank, tower in enumerate(deal.towers):
            node = self.taxonomy.get(tower)
            # More significant towers get repeated mentions; the CPE's
            # occurrence counting turns this back into the Figure 5
            # ordering.
            mentions = max(1, (node_count - rank + 1) // 2) + 1
            if rank >= (2 * node_count) // 3 and rng.random() < 0.3:
                # Real decks sometimes describe tail-of-scope services
                # only in passing, on a vaguely-titled slide — the
                # phrasing that makes EIL's significance analysis miss a
                # true scope item (Table 2's sub-1.0 EIL recall rows).
                slides.append(
                    Slide(
                        title="Additional Considerations",
                        bullets=(
                            f"Also covering {self._surface(node)} "
                            "operations for the client",
                        ),
                    )
                )
                continue
            bullets = []
            for _ in range(mentions):
                bullets.append(
                    f"{self._surface(node)} is included in the "
                    "services scope"
                )
            for tech in deal.technologies_for(tower)[:1]:
                bullets.append(f"Solution approach includes {tech}")
            slides.append(
                Slide(title=f"Scope: {node.name}", bullets=tuple(bullets))
            )
        if deal.incidental_services and rng.random() < 0.5:
            # "Phase 2 options" pollute the scope context with services
            # that are NOT in scope — EIL's bounded precision loss.
            options = deal.incidental_services[: rng.randint(1, 2)]
            option_bullets = []
            for option in options:
                surface = self._surface(self.taxonomy.get(option))
                option_bullets.append(
                    f"{surface} is under evaluation for inclusion in "
                    "the services scope in a later phase"
                )
                option_bullets.append(
                    f"Client to decide on {surface} scope by contract "
                    "signature"
                )
            slides.append(
                Slide(title="Phase 2 Options", bullets=tuple(option_bullets))
            )
        return Presentation(
            doc_id=self._doc_id(deal, "scope"),
            title=f"{deal.name} Scope Overview",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            author=self._team_author(deal),
            slides=tuple(slides),
        )

    def _team_roster(self, deal: DealSpec) -> Spreadsheet:
        """The messy roster the social annotator must clean up."""
        rng = self._rng
        rows: List[Tuple[str, ...]] = []
        for member in deal.team:
            person = member.person
            name = (
                person.reversed_name if rng.random() < 0.3
                else person.full_name
            )
            role = member.role
            if rng.random() < 0.35:
                role = _role_variant(role)
            email = person.email if rng.random() < 0.8 else ""
            phone = person.phone if rng.random() < 0.6 else ""
            org = person.organization if rng.random() < 0.85 else ""
            rows.append((name, role, email, phone, org))
            if rng.random() < 0.15:
                # Duplicate entry with conflicting phone and casing —
                # Fig. 3 step 10's de-duplication target.
                rows.append(
                    (person.full_name.upper(), role, person.email,
                     f"+1-914-555-{rng.randint(9000, 9999)}", org)
                )
        return Spreadsheet(
            doc_id=self._doc_id(deal, "roster"),
            title=f"{deal.name} Deal Team Roster",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            author=self._team_author(deal),
            sheets=(
                Sheet(
                    "Deal Team",
                    ("Name", "Role", "Email", "Phone", "Organization"),
                    tuple(rows),
                ),
            ),
        )

    def _service_forms(self, deal: DealSpec) -> List[FormDocument]:
        """Service-detail forms with mostly-empty schema fields."""
        rng = self._rng
        forms = []
        cross_tower_members = deal.members_with_role(
            "Cross Tower Technical Solution Architect"
        )
        tsa_members = deal.members_with_role("Technical Solution Architect")
        for index, tower in enumerate(deal.towers[:6]):
            # The schema always names the fields; values are mostly blank.
            cross_value = ""
            if cross_tower_members and rng.random() < 0.25:
                cross_value = cross_tower_members[0].person.full_name
            tsa_value = ""
            if tsa_members and rng.random() < 0.35:
                tsa_value = tsa_members[0].person.full_name
            forms.append(
                FormDocument(
                    doc_id=self._doc_id(deal, "form", index),
                    title=f"Service Details: {tower}",
                    deal_id=deal.deal_id,
                    repository=f"EWB {deal.name}",
                    form_name="Service Delivery Record",
                    fields=(
                        ("Tower", tower),
                        ("Cross Tower TSA", cross_value),
                        ("Mainframe TSA", ""),
                        ("Lead TSA", tsa_value),
                        ("Delivery Location", rng.choice(
                            ("Onshore", "Offshore", "Blended", ""))),
                        ("Service Details",
                         f"Delivery record for {tower} under {deal.name}."),
                    ),
                )
            )
        return forms

    def _win_strategy_doc(self, deal: DealSpec) -> TextDocument:
        sections = [("Win Strategy",
                     " ".join(f"Strategy: {s}." for s in deal.win_strategies))]
        return TextDocument(
            doc_id=self._doc_id(deal, "winstrat"),
            title=f"{deal.name} Win Strategies",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            author=self._team_author(deal),
            sections=tuple(sections),
        )

    def _technology_docs(self, deal: DealSpec) -> List[TextDocument]:
        """One consolidated technology-solution document per deal.

        Every scoped tower with planted technologies gets a section, so
        each (tower, technology) ground-truth pair is guaranteed to
        appear in exactly this document (plus possibly the scope deck).
        """
        sections = []
        for tower in deal.towers:
            node = self.taxonomy.get(tower)
            techs = deal.technologies_for(tower)
            if not techs:
                continue
            body = (
                f"Technical solution overview for {self._surface(node)}. "
                + " ".join(
                    f"The design relies on {tech} to meet the service "
                    "levels." for tech in techs
                )
            )
            sections.append((f"Technology Solutions: {tower}", body))
        if not sections:
            return []
        return [
            TextDocument(
                doc_id=self._doc_id(deal, "tech"),
                title=f"{deal.name} Technology Solution Overview",
                deal_id=deal.deal_id,
                repository=f"EWB {deal.name}",
                author=self._team_author(deal),
                sections=tuple(sections),
            )
        ]

    def _overview_doc(self, deal: DealSpec) -> FormDocument:
        return FormDocument(
            doc_id=self._doc_id(deal, "overview"),
            title=f"{deal.name} Opportunity Overview",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            form_name="Opportunity Profile",
            fields=(
                ("Deal Name", deal.name),
                ("Customer", deal.customer),
                ("Industry", deal.industry),
                ("Out Sourcing Consultant", deal.consultant),
                ("Geography", deal.geography),
                ("Contract Term Start", deal.contract_start),
                ("Term Duration Months", str(deal.term_months)),
                ("Total Contract Value", deal.value_band),
                ("International",
                 "Y" if deal.is_international else "N"),
            ),
        )

    def _references_doc(self, deal: DealSpec) -> TextDocument:
        return TextDocument(
            doc_id=self._doc_id(deal, "refs"),
            title=f"{deal.name} Client References",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            sections=(("Client References",
                       " ".join(f"{r}." for r in deal.client_references)),),
        )

    # -- filler ------------------------------------------------------------------

    def _filler_docs(
        self, deal: DealSpec, count: int
    ) -> List[EnterpriseDocument]:
        rng = self._rng
        docs: List[EnterpriseDocument] = []
        for index in range(count):
            roll = rng.random()
            if roll < 0.28 and deal.incidental_services:
                docs.append(self._incidental_minutes(deal, index))
            elif roll < 0.42:
                docs.append(self._boilerplate_appendix(deal, index))
            elif roll < 0.65:
                docs.append(self._team_email(deal, index))
            else:
                docs.append(self._generic_status(deal, index))
        return docs

    def _incidental_minutes(self, deal: DealSpec, index: int) -> TextDocument:
        rng = self._rng
        service = rng.choice(deal.incidental_services)
        node = self.taxonomy.get(service)
        sentences = [
            rng.choice(_STATUS_SENTENCES),
            rng.choice(_INCIDENTAL_TEMPLATES).format(
                service=self._surface(node)
            ),
            rng.choice(_GENERIC_SENTENCES),
        ]
        return TextDocument(
            doc_id=self._doc_id(deal, "minutes", index),
            title=f"{deal.name} Meeting Minutes {index}",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            author=self._team_author(deal),
            sections=(("Minutes", " ".join(sentences)),),
        )

    def _boilerplate_appendix(self, deal: DealSpec, index: int) -> TextDocument:
        rng = self._rng
        # Catalog boilerplate names several services regardless of scope.
        mentioned = rng.sample(
            [n.name for n in self.taxonomy.all_nodes],
            k=rng.randint(3, 6),
        )
        body = _BOILERPLATE_LEAD + "; ".join(
            self._surface(self.taxonomy.get(name)) for name in mentioned
        ) + "."
        return TextDocument(
            doc_id=self._doc_id(deal, "appendix", index),
            title=f"{deal.name} Appendix {index}",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            sections=(("Appendix", body),),
        )

    def _team_email(self, deal: DealSpec, index: int) -> EmailMessage:
        rng = self._rng
        sender = rng.choice(deal.team).person
        recipients = tuple(
            m.person.email
            for m in rng.sample(deal.team, min(2, len(deal.team)))
        )
        body = rng.choice(_EMAIL_BODIES)
        if rng.random() < 0.3 and deal.towers:
            tower = rng.choice(deal.towers)
            body += (
                f" This touches the {self._surface(self.taxonomy.get(tower))}"
                " workstream."
            )
        return EmailMessage(
            doc_id=self._doc_id(deal, "mail", index),
            title=f"{deal.name} email {index}",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            sender=sender.email,
            recipients=recipients,
            subject=f"RE: {deal.name} workstream update",
            body=body,
        )

    def _generic_status(self, deal: DealSpec, index: int) -> TextDocument:
        rng = self._rng
        sentences = rng.sample(_STATUS_SENTENCES, 2) + rng.sample(
            _GENERIC_SENTENCES, 2
        )
        return TextDocument(
            doc_id=self._doc_id(deal, "status", index),
            title=f"{deal.name} Status Report {index}",
            deal_id=deal.deal_id,
            repository=f"EWB {deal.name}",
            author=self._team_author(deal),
            sections=(("Status", " ".join(sentences)),),
        )


_ROLE_VARIANTS = {
    "Client Solution Executive": ("CSE", "Client Solution Exec."),
    "Technical Solution Architect": ("TSA",),
    "Cross Tower Technical Solution Architect": (
        "Cross Tower TSA", "cross tower TSA",
    ),
    "Delivery Project Executive": ("DPE",),
    "Engagement Manager": ("EM",),
    "Client Executive": ("CE",),
}


def _role_variant(role: str) -> str:
    variants = _ROLE_VARIANTS.get(role)
    if not variants:
        return role
    # Deterministic pick: first variant keeps generation reproducible
    # without threading the RNG through.
    return variants[0]
