"""Synthetic enterprise corpus (substitute for the proprietary data)."""

from repro.corpus.deals import DealGenerator, DealSpec, TeamMember, deal_name_for
from repro.corpus.documents_gen import MIN_DOCS_PER_DEAL, WorkbookFactory
from repro.corpus.emails_gen import (
    PAPER_THREAD_COUNTS,
    EmailThread,
    ThreadGenerator,
)
from repro.corpus.generator import Corpus, CorpusConfig, CorpusGenerator
from repro.corpus.people import (
    CLIENT_ORGS,
    INDUSTRIES,
    VENDOR_DOMAIN,
    VENDOR_ORG,
    Person,
)
from repro.corpus.taxonomy import (
    ServiceNode,
    ServiceTaxonomy,
    build_default_taxonomy,
)

__all__ = [
    "Corpus",
    "CorpusConfig",
    "CorpusGenerator",
    "DealGenerator",
    "DealSpec",
    "TeamMember",
    "deal_name_for",
    "WorkbookFactory",
    "MIN_DOCS_PER_DEAL",
    "EmailThread",
    "ThreadGenerator",
    "PAPER_THREAD_COUNTS",
    "Person",
    "VENDOR_ORG",
    "VENDOR_DOMAIN",
    "CLIENT_ORGS",
    "INDUSTRIES",
    "ServiceNode",
    "ServiceTaxonomy",
    "build_default_taxonomy",
]
