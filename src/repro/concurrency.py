"""Shared concurrency primitives for the online serving path.

The serving layer (:mod:`repro.serving`) lets many threads query one
engine while incremental maintenance mutates it.  Two primitives make
that safe without giving up read concurrency:

* :class:`ReadWriteLock` — many concurrent readers or one writer, with
  writer preference (a waiting writer blocks new readers, so continuous
  query traffic can never starve ``add_workbook``/``remove_deal``).
  :class:`~repro.search.engine.SearchEngine` runs every search under
  the read side and every index mutation + epoch bump under the write
  side, which is what makes a query's view of (epoch, index state) a
  consistent snapshot.
* :class:`AtomicCounter` — a lock-protected integer for epoch and
  admission accounting, where the plain ``+= 1`` read-modify-write
  would lose increments under contention.

This module sits below both ``search`` and ``serving`` in the layering
(it imports nothing from either), so the engine can use the lock
without depending on the serving package above it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ReadWriteLock", "AtomicCounter"]


class ReadWriteLock:
    """Many readers / one writer, writer-preferring.

    ``read()`` and ``write()`` return context managers::

        lock = ReadWriteLock()
        with lock.read():
            ...  # shared with other readers
        with lock.write():
            ...  # exclusive

    A thread must not upgrade (acquire the write side while holding the
    read side) — that deadlocks by design, as it would for any
    non-reentrant lock.  Writer preference: once a writer is waiting,
    new readers queue behind it, so sustained query load cannot starve
    index maintenance.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Acquire the shared (reader) side for the ``with`` block."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Acquire the exclusive (writer) side for the ``with`` block."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class AtomicCounter:
    """A lock-protected integer counter.

    ``value += 1`` on a shared attribute is a three-step
    read-modify-write in CPython and loses increments under thread
    contention; this wraps the same operation in a lock and returns the
    post-increment value so callers can use it as a sequence.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, initial: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = initial

    @property
    def value(self) -> int:
        """The current value."""
        with self._lock:
            return self._value

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` atomically; returns the new value."""
        with self._lock:
            self._value += amount
            return self._value

    def decrement(self, amount: int = 1) -> int:
        """Subtract ``amount`` atomically; returns the new value."""
        return self.increment(-amount)
