"""Persistent segmented index storage (delta-varint + LSM lifecycle).

Public surface:

* :class:`~repro.storage.store.SegmentBackedIndex` — the drop-in
  ``InvertedIndex`` replacement layering a memtable over immutable
  delta-varint segments with tombstones and tiered merge, plus
  ``save``/``load`` for cold-start-from-disk.
* :class:`~repro.storage.segment.Segment` and the codec helpers in
  :mod:`repro.storage.varint` for direct format access.
* :func:`~repro.storage.atomic.atomic_write_bytes` /
  ``atomic_write_text`` — the crash-safe write primitive shared with
  :mod:`repro.db.persistence`.

See docs/ARCHITECTURE.md ("Persistent index storage") for the on-disk
layout and merge policy, and docs/OPERATIONS.md for the snapshot /
restore runbook.
"""

from repro.storage.atomic import atomic_write_bytes, atomic_write_text
from repro.storage.segment import (
    FORMAT_VERSION,
    MAGIC,
    Segment,
    encode_from_index,
    merge_segments,
)
from repro.storage.store import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    SegmentBackedIndex,
)

__all__ = [
    "SegmentBackedIndex",
    "Segment",
    "encode_from_index",
    "merge_segments",
    "atomic_write_bytes",
    "atomic_write_text",
    "MAGIC",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "MANIFEST_FORMAT",
]
