"""LEB128 variable-length integer codec for index segment files.

Every integer in a segment file — document-ordinal gaps, term
frequencies, position deltas, section lengths — is an unsigned LEB128
varint: 7 payload bits per byte, high bit set on every byte except the
last.  Small numbers (the overwhelmingly common case once doc ids are
gap-encoded) take one byte, which is where the bytes/doc win over the
JSON baseline comes from.

The module exposes two call styles:

* ``write_uint(out, value)`` appending to a ``bytearray`` — encoding.
* ``read_uint(buf, offset) -> (value, next_offset)`` over any
  bytes-like object — decoding.  The offset-threading style avoids
  allocating a stream wrapper per posting list on the hot decode path.

Strings are length-prefixed UTF-8 (``write_str``/``read_str``).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import StorageError

__all__ = [
    "write_uint",
    "read_uint",
    "write_str",
    "read_str",
    "encode_uint",
    "skip_uint",
]


def write_uint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative int) to ``out`` as LEB128."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def encode_uint(value: int) -> bytes:
    """Encode a single non-negative int to LEB128 bytes."""
    out = bytearray()
    write_uint(out, value)
    return bytes(out)


def read_uint(buf, offset: int) -> Tuple[int, int]:
    """Decode one varint from ``buf`` at ``offset``.

    Returns ``(value, next_offset)``.  Raises :class:`StorageError` on
    truncation (the high bit never clears before the buffer ends).
    """
    result = 0
    shift = 0
    end = len(buf)
    while True:
        if offset >= end:
            raise StorageError("truncated varint in segment data")
        byte = buf[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def skip_uint(buf, offset: int) -> int:
    """Advance past one varint without materializing its value."""
    end = len(buf)
    while True:
        if offset >= end:
            raise StorageError("truncated varint in segment data")
        if not buf[offset] & 0x80:
            return offset + 1
        offset += 1


def write_str(out: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string to ``out``."""
    data = text.encode("utf-8")
    write_uint(out, len(data))
    out.extend(data)


def read_str(buf, offset: int) -> Tuple[str, int]:
    """Decode one length-prefixed UTF-8 string at ``offset``."""
    length, offset = read_uint(buf, offset)
    end = offset + length
    if end > len(buf):
        raise StorageError("truncated string in segment data")
    return bytes(buf[offset:end]).decode("utf-8"), end
