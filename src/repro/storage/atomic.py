"""Crash-safe file writes: temp file + fsync + atomic rename.

A snapshot or manifest write that dies mid-``write()`` must never
destroy the last good copy.  The only portable way to get that on POSIX
is the classic dance: write the full payload to a temporary file *in
the same directory* (rename across filesystems is not atomic), flush
and ``fsync`` the file so the bytes are durable before the name flips,
``os.replace`` onto the final path (atomic within a directory), then
fsync the directory so the rename itself survives a power cut.

Used by :mod:`repro.db.persistence` for synopsis snapshots and by
:mod:`repro.storage.store` for segment files and manifests.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``.

    On any failure the target file is untouched and the temp file is
    removed; a reader can never observe a partial write under the
    final name.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (see bytes variant)."""
    atomic_write_bytes(path, text.encode(encoding))


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry; best-effort on filesystems without it."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
