"""LSM-style segmented index store, drop-in for ``InvertedIndex``.

:class:`SegmentBackedIndex` layers a mutable in-memory *memtable* (a
plain :class:`~repro.search.inverted_index.InvertedIndex`) over a list
of immutable :class:`~repro.storage.segment.Segment` files:

* ``add`` writes to the memtable; when it reaches ``memtable_limit``
  documents it *flushes* — the memtable is encoded into one compact
  delta-varint segment and replaced with a fresh empty one.
* ``remove`` of a memtable document is a plain in-memory remove; for a
  segment document it writes a *tombstone* (the segment stays
  immutable; live statistics are adjusted incrementally).
* After each flush a *tiered merge* runs: segments are bucketed by
  live-document-count tier (powers of ``merge_fanout``), and any tier
  holding ``merge_fanout`` or more segments is structurally merged into
  one — posting bytes and docstore records are copied, never
  re-analyzed — dropping tombstones along the way.

Query-path equivalence is exact: every statistic BM25 and the MaxScore
planner consume (N, df, tf, field lengths, integer token totals
divided once for avgdl) is computed live across memtable + segments,
so a segment-backed engine returns **bit-identical rankings** to the
all-in-memory engine (enforced by the execution-equivalence suite).
Two bound-side details make MaxScore stay sound: ``df`` is always the
exact live count (a tombstoned segment decode-counts once and caches),
and ``max_tf`` only ever over-estimates (stored encode-time maxima, or
``None`` when the memtable's contribution is unknown — a loose bound
never prunes wrongly).

Concurrency matches ``InvertedIndex``: the store itself is unlocked
and relies on the owning engine's writer-preferring ReadWriteLock —
flushes and merges happen inside ``add`` calls, which the engine
already runs under its write lock, so queries never observe a
half-merged segment list.

Persistence (``save``/``load``) writes a manifest (format-versioned,
checksummed, atomically replaced) plus one file per segment.  While a
directory is attached, flushed and merged segments spill straight to
disk (docstores leave RAM — this is what bounds build memory at 100k+
docs); the manifest is only rewritten by ``save``, so a crash leaves
the previous manifest's consistent view intact and ``save`` sweeps any
unreferenced segment files.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SearchError, StorageError
from repro.obs import get_registry
from repro.search.analyzer import Analyzer
from repro.search.document import IndexableDocument
from repro.search.inverted_index import InvertedIndex, TermPostings
from repro.storage.atomic import atomic_write_bytes, atomic_write_text
from repro.storage.segment import (
    Segment,
    encode_from_index,
    merge_segments,
)

__all__ = ["SegmentBackedIndex", "MANIFEST_NAME", "MANIFEST_FORMAT"]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-segment-index"
MANIFEST_VERSION = 1

#: Documents held in the memtable before an automatic flush.
DEFAULT_MEMTABLE_LIMIT = 4096
#: Segments per size tier before a tiered merge compacts them.
DEFAULT_MERGE_FANOUT = 4

_DOC_CACHE_SIZE = 256


def _checksum(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _manifest_checksum(body: Dict[str, Any]) -> str:
    canonical = json.dumps(
        {key: body[key] for key in body if key != "checksum"},
        sort_keys=True,
    )
    return _checksum(canonical.encode("utf-8"))


class SegmentBackedIndex:
    """Memtable + immutable segments behind the ``InvertedIndex`` API."""

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        memtable_limit: int = DEFAULT_MEMTABLE_LIMIT,
        merge_fanout: int = DEFAULT_MERGE_FANOUT,
    ) -> None:
        if memtable_limit < 1:
            raise ValueError(
                f"memtable_limit must be >= 1, got {memtable_limit}"
            )
        if merge_fanout < 2:
            raise ValueError(
                f"merge_fanout must be >= 2, got {merge_fanout}"
            )
        self.analyzer = analyzer or Analyzer()
        self.memtable = InvertedIndex(self.analyzer)
        self.segments: List[Segment] = []
        self.memtable_limit = memtable_limit
        self.merge_fanout = merge_fanout
        self.directory: Optional[str] = None
        #: Mutation counter, mirroring ``InvertedIndex.epoch`` — flushes
        #: and merges do NOT bump it (they are content-preserving).
        self.epoch = 0
        # Merged (segments + memtable) posting arrays; content-stable
        # across flush/merge, invalidated per touched (field, term) on
        # add and remove.
        self._compiled: Dict[Tuple[str, str], TermPostings] = {}
        # Merged positional postings for phrase matching, same policy.
        self._positional: Dict[Tuple[str, str], Dict[str, List[int]]] = {}
        # Small decoded-document cache in front of the on-disk docstore.
        self._doc_cache: "OrderedDict[str, IndexableDocument]" = OrderedDict()
        self._checksums: Dict[str, str] = {}
        self._next_segment = 1

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_inverted(
        cls,
        index: InvertedIndex,
        memtable_limit: int = DEFAULT_MEMTABLE_LIMIT,
        merge_fanout: int = DEFAULT_MERGE_FANOUT,
    ) -> "SegmentBackedIndex":
        """Adopt an existing in-memory index as the initial memtable.

        The index is taken over, not copied — the caller must stop
        using it directly.
        """
        store = cls(
            analyzer=index.analyzer,
            memtable_limit=memtable_limit,
            merge_fanout=merge_fanout,
        )
        store.memtable = index
        store.epoch = index.epoch
        store._refresh_gauges()
        return store

    # -- mutation -----------------------------------------------------------

    def add(self, document: IndexableDocument) -> None:
        """Index ``document`` into the memtable (auto-flush at limit)."""
        if self.has_document(document.doc_id):
            raise SearchError(
                f"document {document.doc_id!r} already indexed"
            )
        self.memtable.add(document)
        for field, terms in self.memtable.terms_of(
            document.doc_id
        ).items():
            for term in terms:
                self._compiled.pop((field, term), None)
                self._positional.pop((field, term), None)
        self.epoch += 1
        if len(self.memtable) >= self.memtable_limit:
            self.flush()
            self.maybe_merge()
        else:
            get_registry().set_gauge(
                "storage.memtable_docs", len(self.memtable)
            )

    def remove(self, doc_id: str) -> IndexableDocument:
        """Remove a document: memtable delete or segment tombstone."""
        if self.memtable.has_document(doc_id):
            touched = self.memtable.terms_of(doc_id)
            document = self.memtable.remove(doc_id)
            for field, terms in touched.items():
                for term in terms:
                    self._compiled.pop((field, term), None)
                    self._positional.pop((field, term), None)
            self._doc_cache.pop(doc_id, None)
            self.epoch += 1
            get_registry().set_gauge(
                "storage.memtable_docs", len(self.memtable)
            )
            return document
        for segment in self.segments:
            if not segment.has_doc(doc_id):
                continue
            document = segment.document(doc_id)
            segment.tombstone(doc_id)
            # The segment has no reverse term map; re-analyzing this one
            # document recovers exactly the touched (field, term) pairs
            # so cache invalidation stays per-term, like the memtable's.
            terms_touched = 0
            for field, text in document.fields.items():
                for term in {
                    analyzed.term
                    for analyzed in self.analyzer.analyze(text)
                }:
                    terms_touched += 1
                    self._compiled.pop((field, term), None)
                    self._positional.pop((field, term), None)
            self._doc_cache.pop(doc_id, None)
            self.epoch += 1
            metrics = get_registry()
            metrics.inc("index.removals")
            metrics.observe("index.remove_terms_touched", terms_touched)
            metrics.set_gauge("storage.tombstones", self._tombstone_count())
            return document
        raise SearchError(f"document {doc_id!r} not indexed")

    # -- segment lifecycle --------------------------------------------------

    def flush(self) -> bool:
        """Encode the memtable into a segment; True if one was written.

        Content-preserving: merged posting caches stay valid (segments
        are ordered oldest-first with the memtable logically last, and
        a flush moves the memtable's documents to the new last
        segment without reordering anything).
        """
        if len(self.memtable) == 0:
            return False
        data = encode_from_index(self.memtable)
        self._append_segment(data)
        self.memtable = InvertedIndex(self.analyzer)
        metrics = get_registry()
        metrics.inc("storage.flushes")
        self._refresh_gauges()
        return True

    def _append_segment(self, data: bytes) -> Segment:
        segment = Segment.from_bytes(data)
        if self.directory is not None:
            path = self._new_segment_path()
            atomic_write_bytes(path, data)
            self._checksums[path] = _checksum(data)
            segment.attach_file(path)
        self.segments.append(segment)
        return segment

    def _new_segment_path(self) -> str:
        assert self.directory is not None
        name = f"seg-{self._next_segment:06d}.rsg"
        self._next_segment += 1
        return os.path.join(self.directory, name)

    def maybe_merge(self) -> int:
        """Run the tiered merge policy; returns merges performed.

        Dead segments (every document tombstoned) are dropped outright.
        Then, while any live-doc-count tier (powers of
        ``merge_fanout``) holds ``merge_fanout`` or more segments, that
        tier is merged into one tombstone-free segment, placed at the
        oldest member's position so segment order stays oldest-first.
        """
        merges = 0
        for segment in [s for s in self.segments if s.live_count == 0]:
            self.segments.remove(segment)
            segment.close()
        while True:
            tiers: Dict[int, List[int]] = {}
            for position, segment in enumerate(self.segments):
                tiers.setdefault(self._tier(segment), []).append(position)
            group = next(
                (
                    positions
                    for _, positions in sorted(tiers.items())
                    if len(positions) >= self.merge_fanout
                ),
                None,
            )
            if group is None:
                break
            self._merge_positions(group)
            merges += 1
        if merges:
            self._refresh_gauges()
        return merges

    def _tier(self, segment: Segment) -> int:
        tier = 0
        size = max(1, segment.live_count)
        while size >= self.merge_fanout:
            size //= self.merge_fanout
            tier += 1
        return tier

    def _merge_positions(self, positions: List[int]) -> None:
        group = [self.segments[i] for i in positions]
        start = time.monotonic()
        data = merge_segments(group)
        merged = Segment.from_bytes(data)
        if self.directory is not None:
            path = self._new_segment_path()
            atomic_write_bytes(path, data)
            self._checksums[path] = _checksum(data)
            merged.attach_file(path)
        insert_at = positions[0]
        for position in sorted(positions, reverse=True):
            segment = self.segments.pop(position)
            if segment.path is not None:
                self._checksums.pop(segment.path, None)
            segment.close()
        self.segments.insert(insert_at, merged)
        elapsed = time.monotonic() - start
        metrics = get_registry()
        metrics.inc("storage.merges")
        metrics.observe("storage.merge_seconds", elapsed)

    def compact(self) -> None:
        """Flush, then merge everything into one tombstone-free segment."""
        self.flush()
        if len(self.segments) > 1 or any(
            segment.tombstones for segment in self.segments
        ):
            self._merge_positions(list(range(len(self.segments))))
        self.maybe_merge()
        self._refresh_gauges()

    def _tombstone_count(self) -> int:
        return sum(len(segment.tombstones) for segment in self.segments)

    def _refresh_gauges(self) -> None:
        metrics = get_registry()
        metrics.set_gauge("storage.segments", len(self.segments))
        metrics.set_gauge("storage.memtable_docs", len(self.memtable))
        metrics.set_gauge("storage.tombstones", self._tombstone_count())

    # -- persistence --------------------------------------------------------

    def save(self, directory: str) -> Dict[str, Any]:
        """Flush + write every segment and an atomic manifest.

        Returns the storage stats recorded (also exported as gauges).
        Any ``seg-*.rsg`` file in the directory that the new manifest
        does not reference (older merged-away segments, files from a
        crashed run) is deleted — the manifest is the source of truth.
        """
        directory = os.path.abspath(directory)
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.flush()
        entries: List[Dict[str, Any]] = []
        for segment in self.segments:
            if (
                segment.path is None
                or os.path.dirname(os.path.abspath(segment.path))
                != directory
            ):
                data = segment.raw_bytes()
                path = self._new_segment_path()
                atomic_write_bytes(path, data)
                self._checksums[path] = _checksum(data)
                segment.attach_file(path)
            checksum = self._checksums.get(segment.path)
            if checksum is None:
                checksum = _checksum(segment.raw_bytes())
                self._checksums[segment.path] = checksum
            entries.append(
                {
                    "file": os.path.basename(segment.path),
                    "checksum": checksum,
                    "bytes": segment.size_bytes,
                    "docs": segment.doc_count,
                    "tombstones": sorted(
                        segment.doc_ids[ordinal]
                        for ordinal in segment.tombstones
                    ),
                }
            )
        body: Dict[str, Any] = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "segments": entries,
            "next_segment": self._next_segment,
        }
        body["checksum"] = _manifest_checksum(body)
        atomic_write_text(
            os.path.join(directory, MANIFEST_NAME),
            json.dumps(body, indent=2, sort_keys=True) + "\n",
        )
        referenced = {entry["file"] for entry in entries}
        for name in os.listdir(directory):
            if (
                name.startswith("seg-")
                and name.endswith(".rsg")
                and name not in referenced
            ):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:
                    pass
        stats = self.storage_stats()
        metrics = get_registry()
        metrics.set_gauge("storage.bytes_per_doc", stats["bytes_per_doc"])
        self._refresh_gauges()
        return stats

    @classmethod
    def load(
        cls,
        directory: str,
        analyzer: Optional[Analyzer] = None,
        memtable_limit: int = DEFAULT_MEMTABLE_LIMIT,
        merge_fanout: int = DEFAULT_MERGE_FANOUT,
        verify: bool = True,
    ) -> "SegmentBackedIndex":
        """Cold-start a store from a saved directory.

        Rejects foreign or damaged state with :class:`StorageError`:
        missing/unparseable manifest, wrong format marker or version,
        manifest checksum mismatch, missing segment files, and (with
        ``verify=True``) segment checksum mismatches.
        """
        directory = os.path.abspath(directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise StorageError(
                f"cannot read index manifest {manifest_path}: {exc}"
            ) from exc
        try:
            body = json.loads(text)
        except ValueError as exc:
            raise StorageError(
                f"index manifest {manifest_path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(body, dict) or body.get("format") != MANIFEST_FORMAT:
            raise StorageError(
                f"{manifest_path} is not a segment index manifest"
            )
        version = body.get("version")
        if version != MANIFEST_VERSION:
            raise StorageError(
                f"index manifest version {version!r} unsupported "
                f"(expected {MANIFEST_VERSION})"
            )
        if body.get("checksum") != _manifest_checksum(body):
            raise StorageError(
                f"index manifest {manifest_path} failed its checksum "
                f"(partial or corrupted write)"
            )
        store = cls(
            analyzer=analyzer,
            memtable_limit=memtable_limit,
            merge_fanout=merge_fanout,
        )
        store.directory = directory
        store._next_segment = int(body.get("next_segment", 1))
        for entry in body["segments"]:
            path = os.path.join(directory, entry["file"])
            if not os.path.isfile(path):
                raise StorageError(f"missing segment file {path}")
            if verify:
                with open(path, "rb") as handle:
                    data = handle.read()
                if _checksum(data) != entry["checksum"]:
                    raise StorageError(
                        f"segment {path} failed its checksum"
                    )
                if len(data) != entry["bytes"]:
                    raise StorageError(
                        f"segment {path} has {len(data)} bytes, "
                        f"manifest says {entry['bytes']}"
                    )
                segment = Segment.from_bytes(data)
                segment.attach_file(path)
            else:
                segment = Segment.open(path)
            for doc_id in entry.get("tombstones", ()):
                segment.tombstone(doc_id)
            store._checksums[path] = entry["checksum"]
            store.segments.append(segment)
        store._refresh_gauges()
        get_registry().set_gauge(
            "storage.bytes_per_doc",
            store.storage_stats()["bytes_per_doc"],
        )
        return store

    def storage_stats(self) -> Dict[str, Any]:
        """Byte and document accounting across all segments."""
        size_bytes = sum(s.size_bytes for s in self.segments)
        postings_bytes = sum(s.postings_bytes for s in self.segments)
        docstore_bytes = sum(s.docstore_bytes for s in self.segments)
        docs = len(self)
        return {
            "segments": len(self.segments),
            "memtable_docs": len(self.memtable),
            "docs": docs,
            "tombstones": self._tombstone_count(),
            "size_bytes": size_bytes,
            "postings_bytes": postings_bytes,
            "docstore_bytes": docstore_bytes,
            "bytes_per_doc": (size_bytes / docs) if docs else 0.0,
        }

    def close(self) -> None:
        """Release every segment's file descriptor."""
        for segment in self.segments:
            segment.close()

    # -- lookup (InvertedIndex-compatible) ----------------------------------

    def document(self, doc_id: str) -> IndexableDocument:
        """Fetch a stored document by id (memtable, then segments)."""
        if self.memtable.has_document(doc_id):
            return self.memtable.document(doc_id)
        cached = self._doc_cache.get(doc_id)
        if cached is not None:
            self._doc_cache.move_to_end(doc_id)
            return cached
        for segment in self.segments:
            document = segment.document(doc_id)
            if document is not None:
                self._doc_cache[doc_id] = document
                if len(self._doc_cache) > _DOC_CACHE_SIZE:
                    self._doc_cache.popitem(last=False)
                return document
        raise SearchError(f"document {doc_id!r} not indexed")

    def has_document(self, doc_id: str) -> bool:
        """True if ``doc_id`` is live anywhere in the store."""
        if self.memtable.has_document(doc_id):
            return True
        return any(segment.has_doc(doc_id) for segment in self.segments)

    def __len__(self) -> int:
        return len(self.memtable) + sum(
            segment.live_count for segment in self.segments
        )

    @property
    def doc_ids(self) -> Set[str]:
        """Ids of all live documents."""
        ids = self.memtable.doc_ids
        for segment in self.segments:
            ids.update(segment.live_doc_ids())
        return ids

    @property
    def fields(self) -> List[str]:
        """Field names with live content, sorted."""
        names = set(self.memtable.fields)
        for segment in self.segments:
            for field in segment.posting_fields():
                if segment.live_field_docs(field) > 0:
                    names.add(field)
        return sorted(names)

    def postings(
        self, term: str, field: Optional[str] = None
    ) -> Dict[str, List[int]]:
        """doc_id -> positions (merged across fields when field=None)."""
        if field is not None:
            return dict(self._merged_positions(field, term))
        merged: Dict[str, List[int]] = {}
        for field_name in self.fields:
            for doc_id, positions in self._merged_positions(
                field_name, term
            ).items():
                merged.setdefault(doc_id, []).extend(positions)
        return merged

    def _merged_positions(
        self, field: str, term: str
    ) -> Dict[str, List[int]]:
        key = (field, term)
        cached = self._positional.get(key)
        if cached is not None:
            return cached
        merged: Dict[str, List[int]] = {}
        for segment in self.segments:
            merged.update(segment.positions(field, term))
        merged.update(self.memtable.postings(term, field))
        self._positional[key] = merged
        return merged

    def term_postings(
        self, term: str, field: str
    ) -> Optional[TermPostings]:
        """Merged compiled postings (segments oldest-first, then
        memtable), or None when no live document matches."""
        key = (field, term)
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = TermPostings()
            for segment in self.segments:
                for doc_id, tf, length in segment.iter_term(field, term):
                    compiled.append(doc_id, tf, length)
            memtable = self.memtable.term_postings(term, field)
            if memtable is not None:
                for i, doc_id in enumerate(memtable.doc_ids):
                    compiled.append(
                        doc_id, memtable.tfs[i], memtable.lengths[i]
                    )
            if len(compiled) == 0:
                return None
            self._compiled[key] = compiled
            get_registry().inc("index.postings_compiled")
        return compiled

    def max_tf(self, term: str, field: str) -> Optional[int]:
        """O(1) upper bound on the live max tf, or None if unknown.

        Soundness rule for MaxScore: the returned value must never be
        *below* the true live maximum.  Stored segment maxima only ever
        over-estimate (tombstones can't raise a max); the memtable's
        contribution is exact when compiled and unknown otherwise — in
        the unknown case the whole answer is None and the planner falls
        back to its loose bound.
        """
        compiled = self._compiled.get((field, term))
        if compiled is not None:
            return compiled.max_tf
        best: Optional[int] = None
        for segment in self.segments:
            stored = segment.stored_max_tf(field, term)
            if stored is not None and (best is None or stored > best):
                best = stored
        if self.memtable.df(term, field) > 0:
            memtable_max = self.memtable.max_tf(term, field)
            if memtable_max is None:
                return None
            if best is None or memtable_max > best:
                best = memtable_max
        return best

    def matching_docs(
        self, term: str, field: Optional[str] = None
    ) -> Set[str]:
        """Ids of live documents containing ``term``."""
        matches = self.memtable.matching_docs(term, field)
        for segment in self.segments:
            fields = (
                [field] if field is not None else segment.posting_fields()
            )
            for field_name in fields:
                for doc_id, _, _ in segment.iter_term(field_name, term):
                    matches.add(doc_id)
        return matches

    def docs_with_metadata(
        self, key: str, values: Iterable[Any]
    ) -> Set[str]:
        """Ids of live documents whose metadata ``key`` is in ``values``."""
        values = list(values)
        matches = self.memtable.docs_with_metadata(key, values)
        for segment in self.segments:
            for value in values:
                matches |= segment.meta_docs(key, value)
        return matches

    def phrase_docs(
        self, terms: List[str], field: Optional[str] = None
    ) -> Set[str]:
        """Live documents containing ``terms`` consecutively in a field."""
        if not terms:
            return set()
        fields = [field] if field is not None else self.fields
        matches: Set[str] = set()
        for field_name in fields:
            maps = []
            empty = False
            candidate_docs: Optional[Set[str]] = None
            for term in terms:
                positions = self._merged_positions(field_name, term)
                maps.append(positions)
                docs = set(positions)
                candidate_docs = (
                    docs
                    if candidate_docs is None
                    else candidate_docs & docs
                )
                if not candidate_docs:
                    empty = True
                    break
            if empty or not candidate_docs:
                continue
            for doc_id in candidate_docs:
                starts = set(maps[0][doc_id])
                for offset in range(1, len(terms)):
                    positions = maps[offset][doc_id]
                    starts &= {p - offset for p in positions}
                    if not starts:
                        break
                if starts:
                    matches.add(doc_id)
        return matches

    # -- statistics (live-exact) --------------------------------------------

    def document_frequency(
        self, term: str, field: Optional[str] = None
    ) -> int:
        """Exact number of live documents containing ``term``."""
        return len(self.matching_docs(term, field))

    def df(self, term: str, field: Optional[str] = None) -> int:
        """Live document frequency; per-field exact, summed otherwise.

        Matches ``InvertedIndex.df`` semantics: with ``field=None`` the
        per-field counts are summed (an upper bound used only for AND
        ordering).  The per-field value is exact even under tombstones
        — MaxScore bound soundness requires it (see module docstring).
        """
        if field is not None:
            total = self.memtable.df(term, field)
            for segment in self.segments:
                total += segment.df(field, term)
            return total
        total = self.memtable.df(term, None)
        for segment in self.segments:
            for field_name in segment.posting_fields():
                total += segment.df(field_name, term)
        return total

    def term_frequency(
        self, term: str, doc_id: str, field: Optional[str] = None
    ) -> int:
        """Occurrences of ``term`` in a live ``doc_id``."""
        if self.memtable.has_document(doc_id):
            return self.memtable.term_frequency(term, doc_id, field)
        for segment in self.segments:
            if not segment.has_doc(doc_id):
                continue
            if field is not None:
                return segment.term_frequency(field, term, doc_id)
            return sum(
                segment.term_frequency(field_name, term, doc_id)
                for field_name in segment.posting_fields()
            )
        return 0

    def field_length(self, field: str, doc_id: str) -> int:
        """Token count of ``field`` in ``doc_id`` (0 if absent)."""
        if self.memtable.has_document(doc_id):
            return self.memtable.field_length(field, doc_id)
        for segment in self.segments:
            if segment.has_doc(doc_id):
                return segment.field_length(field, doc_id)
        return 0

    def field_lengths(self, field: str) -> Dict[str, int]:
        """doc_id -> token count for live documents having ``field``."""
        lengths = self.memtable.field_lengths(field)
        for segment in self.segments:
            for doc_id in segment.live_doc_ids():
                ordinal = segment._ord[doc_id]
                array_ = segment._length_arrays.get(field)
                if array_ is None:
                    continue
                value = array_[ordinal]
                if value >= 0:
                    lengths[doc_id] = value
        return lengths

    def terms_of(self, doc_id: str) -> Dict[str, Set[str]]:
        """field -> distinct terms of one live document."""
        if self.memtable.has_document(doc_id):
            return self.memtable.terms_of(doc_id)
        document = self.document(doc_id)
        return {
            field: {
                analyzed.term
                for analyzed in self.analyzer.analyze(text)
            }
            for field, text in document.fields.items()
        }

    def total_length(self, doc_id: str) -> int:
        """Token count across all fields of ``doc_id``."""
        if self.memtable.has_document(doc_id):
            return self.memtable.total_length(doc_id)
        for segment in self.segments:
            if segment.has_doc(doc_id):
                return segment.total_length(doc_id)
        return 0

    def average_length(self, field: Optional[str] = None) -> float:
        """Average field length over live documents.

        Integer token totals and document counts are summed across the
        memtable and every segment first, then divided once — the same
        float the all-in-memory index computes (bit-identical BM25
        avgdl), exactly like the sharded view's global statistics.
        """
        if len(self) == 0:
            return 0.0
        if field is not None:
            docs = self.field_document_count(field)
            if docs == 0:
                return 0.0
            return self.field_token_total(field) / docs
        return self.token_total() / len(self)

    def field_document_count(self, field: str) -> int:
        """Live documents having ``field``."""
        return self.memtable.field_document_count(field) + sum(
            segment.live_field_docs(field) for segment in self.segments
        )

    def field_token_total(self, field: str) -> int:
        """Exact live token total of ``field`` (integer)."""
        return self.memtable.field_token_total(field) + sum(
            segment.live_field_tokens(field) for segment in self.segments
        )

    def token_total(self) -> int:
        """Exact live token total across all fields (integer)."""
        return self.memtable.token_total() + sum(
            segment.live_token_total() for segment in self.segments
        )

    def vocabulary(self, field: Optional[str] = None) -> Set[str]:
        """Distinct terms with at least one live posting."""
        terms = self.memtable.vocabulary(field)
        for segment in self.segments:
            fields = (
                [field] if field is not None else segment.posting_fields()
            )
            for field_name in fields:
                if segment.tombstones:
                    terms.update(
                        term
                        for term in segment.terms(field_name)
                        if segment.df(field_name, term) > 0
                    )
                else:
                    terms.update(segment.terms(field_name))
        return terms
