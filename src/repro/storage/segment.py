"""Immutable on-disk index segments: delta-varint postings + docstore.

One segment file holds a self-contained slice of the inverted index —
documents, per-field lengths, the metadata value index, and positional
postings — in a compact delta-varint layout:

::

    +--------+-----------+----------------------+--------------------+
    | "RSG1" | head_len  |  head (statistics +  |  docstore (lazily  |
    | magic  | (varint)  |  postings, in RAM)   |  read from disk)   |
    +--------+-----------+----------------------+--------------------+

    head := n_docs, then per doc: doc_id, docstore offset, length
            length fields: name, token_total, n, (ord-gap, len)*
            meta index:    key, n_values, (value_json, n, ord-gap*)*
            posting fields: name, n_terms, then per (sorted) term:
                term, df, max_tf, blob_len, blob
    blob := per doc (ascending ordinal):
                ord-gap, rest_len, rest
    rest := tf, then position deltas (first absolute, then gaps)

Document ids are mapped to dense ordinals (sorted order at encode
time), so posting entries store tiny ordinal *gaps* instead of repeated
string ids — the source of the bytes/doc win over a JSON dump.  Each
posting's ``rest`` (tf + positions) is length-prefixed, which buys two
things: the scoring path decodes ``(ordinal, tf)`` and *skips*
positions, and the structural merge copies ``rest`` bytes verbatim —
compaction never re-analyzes text or even decodes a position.

A segment is immutable once written; deletes are *tombstones* (a set of
dead ordinals held by the owning store and applied here), and live
statistics (df, token totals, field document counts) are maintained
incrementally so BM25 inputs stay exact without rescanning.

``Segment.open`` keeps only the head in memory and serves
``document()`` reads straight from the file via ``os.pread`` (safe
under concurrent reader threads); ``Segment.from_bytes`` keeps the
whole buffer (the memtable-flush path before a save).
"""

from __future__ import annotations

import json
import os
from array import array
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StorageError
from repro.search.document import IndexableDocument
from repro.storage.varint import (
    read_str,
    read_uint,
    skip_uint,
    write_str,
    write_uint,
)

__all__ = ["Segment", "MAGIC", "FORMAT_VERSION", "encode_from_index", "merge_segments"]

MAGIC = b"RSG1"
#: Bump on any layout change; readers reject other versions.
FORMAT_VERSION = 1


class Segment:
    """One decoded segment: parsed head + lazily-read docstore."""

    __slots__ = (
        "path",
        "_data",
        "_head",
        "_docstore_base",
        "_fd",
        "size_bytes",
        "postings_bytes",
        "docstore_bytes",
        "doc_ids",
        "_ord",
        "_doc_offs",
        "_doc_lens",
        "_length_arrays",
        "_field_token_totals",
        "_field_doc_counts",
        "_live_field_tokens",
        "_live_field_docs",
        "_meta",
        "_terms",
        "tombstones",
        "_live_df",
    )

    def __init__(self) -> None:
        self.path: Optional[str] = None
        self._data: Optional[bytes] = None
        self._head: bytes = b""
        self._docstore_base = 0
        self._fd: Optional[int] = None
        self.size_bytes = 0
        self.postings_bytes = 0
        self.docstore_bytes = 0
        self.doc_ids: List[str] = []
        self._ord: Dict[str, int] = {}
        self._doc_offs: List[int] = []
        self._doc_lens: List[int] = []
        # field -> array of per-ordinal token counts, -1 = field absent.
        self._length_arrays: Dict[str, array] = {}
        self._field_token_totals: Dict[str, int] = {}
        self._field_doc_counts: Dict[str, int] = {}
        self._live_field_tokens: Dict[str, int] = {}
        self._live_field_docs: Dict[str, int] = {}
        # key -> value_json -> ascending ordinals.
        self._meta: Dict[str, Dict[str, Tuple[int, ...]]] = {}
        # field -> term -> (stored_df, stored_max_tf, blob_off, blob_len)
        self._terms: Dict[str, Dict[str, Tuple[int, int, int, int]]] = {}
        self.tombstones: Set[int] = set()
        self._live_df: Dict[Tuple[str, str], int] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes) -> "Segment":
        """Decode an in-memory segment (keeps the docstore in RAM)."""
        if data[:4] != MAGIC:
            raise StorageError("not a segment file (bad magic)")
        version, off = read_uint(data, 4)
        if version != FORMAT_VERSION:
            raise StorageError(
                f"segment format version {version} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        head_len, off = read_uint(data, off)
        head = bytes(data[off : off + head_len])
        if len(head) != head_len:
            raise StorageError("truncated segment head")
        segment = cls()
        segment._data = bytes(data)
        segment._docstore_base = off + head_len
        segment.size_bytes = len(data)
        segment._parse_head(head)
        return segment

    @classmethod
    def open(cls, path: str) -> "Segment":
        """Open a file-backed segment; only the head is loaded."""
        try:
            with open(path, "rb") as handle:
                prefix = handle.read(24)
                if prefix[:4] != MAGIC:
                    raise StorageError(
                        f"{path}: not a segment file (bad magic)"
                    )
                version, off = read_uint(prefix, 4)
                if version != FORMAT_VERSION:
                    raise StorageError(
                        f"{path}: segment format version {version} "
                        f"unsupported (expected {FORMAT_VERSION})"
                    )
                head_len, off = read_uint(prefix, off)
                handle.seek(off)
                head = handle.read(head_len)
                if len(head) != head_len:
                    raise StorageError(f"{path}: truncated segment head")
        except OSError as exc:
            raise StorageError(f"cannot read segment {path}: {exc}") from exc
        segment = cls()
        segment.path = path
        segment._docstore_base = off + head_len
        segment.size_bytes = os.path.getsize(path)
        segment._parse_head(head)
        return segment

    def close(self) -> None:
        """Release the cached file descriptor (file-backed mode)."""
        if self._fd is not None:
            try:
                os.close(self._fd)
            finally:
                self._fd = None

    def attach_file(self, path: str) -> None:
        """Switch docstore access to ``path`` and free the in-RAM copy.

        ``path`` must contain exactly the bytes this segment was
        decoded from (the store writes them itself before calling
        this) — the parsed head and docstore offsets carry over
        unchanged, so no re-parse happens.
        """
        self.close()
        self.path = path
        self._data = None

    def raw_bytes(self) -> bytes:
        """The segment's full encoded bytes (RAM copy or file read)."""
        if self._data is not None:
            return self._data
        try:
            with open(self.path, "rb") as handle:  # type: ignore[arg-type]
                return handle.read()
        except OSError as exc:
            raise StorageError(
                f"cannot read segment {self.path}: {exc}"
            ) from exc

    def _parse_head(self, head: bytes) -> None:
        try:
            self._parse_head_inner(head)
        except (StorageError, UnicodeDecodeError, OverflowError) as exc:
            raise StorageError(f"corrupt segment head: {exc}") from exc
        self.docstore_bytes = self.size_bytes - self._docstore_base

    def _parse_head_inner(self, head: bytes) -> None:
        self._head = head
        off = 0
        n_docs, off = read_uint(head, off)
        doc_ids: List[str] = []
        doc_offs: List[int] = []
        doc_lens: List[int] = []
        for _ in range(n_docs):
            doc_id, off = read_str(head, off)
            doc_off, off = read_uint(head, off)
            doc_len, off = read_uint(head, off)
            doc_ids.append(doc_id)
            doc_offs.append(doc_off)
            doc_lens.append(doc_len)
        self.doc_ids = doc_ids
        self._ord = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        if len(self._ord) != n_docs:
            raise StorageError("duplicate doc_id in segment")
        self._doc_offs = doc_offs
        self._doc_lens = doc_lens

        n_length_fields, off = read_uint(head, off)
        for _ in range(n_length_fields):
            name, off = read_str(head, off)
            token_total, off = read_uint(head, off)
            n_entries, off = read_uint(head, off)
            lengths = array("q", [-1]) * n_docs
            ordinal = -1
            for _ in range(n_entries):
                gap, off = read_uint(head, off)
                ordinal += gap
                length, off = read_uint(head, off)
                if ordinal >= n_docs:
                    raise StorageError("length entry ordinal out of range")
                lengths[ordinal] = length
            self._length_arrays[name] = lengths
            self._field_token_totals[name] = token_total
            self._field_doc_counts[name] = n_entries
        self._live_field_tokens = dict(self._field_token_totals)
        self._live_field_docs = dict(self._field_doc_counts)

        n_meta_keys, off = read_uint(head, off)
        for _ in range(n_meta_keys):
            key, off = read_str(head, off)
            n_values, off = read_uint(head, off)
            by_value: Dict[str, Tuple[int, ...]] = {}
            for _ in range(n_values):
                value_json, off = read_str(head, off)
                n_ords, off = read_uint(head, off)
                ords: List[int] = []
                ordinal = -1
                for _ in range(n_ords):
                    gap, off = read_uint(head, off)
                    ordinal += gap
                    ords.append(ordinal)
                by_value[value_json] = tuple(ords)
            self._meta[key] = by_value

        n_posting_fields, off = read_uint(head, off)
        postings_bytes = 0
        for _ in range(n_posting_fields):
            name, off = read_str(head, off)
            n_terms, off = read_uint(head, off)
            terms: Dict[str, Tuple[int, int, int, int]] = {}
            for _ in range(n_terms):
                term, off = read_str(head, off)
                df, off = read_uint(head, off)
                max_tf, off = read_uint(head, off)
                blob_len, off = read_uint(head, off)
                if off + blob_len > len(head):
                    raise StorageError("posting blob overruns head")
                terms[term] = (df, max_tf, off, blob_len)
                postings_bytes += blob_len
                off += blob_len
            self._terms[name] = terms
        self.postings_bytes = postings_bytes

    # -- document access ----------------------------------------------------

    def _read_docstore(self, offset: int, length: int) -> bytes:
        if self._data is not None:
            start = self._docstore_base + offset
            return self._data[start : start + length]
        if self._fd is None:
            try:
                self._fd = os.open(self.path, os.O_RDONLY)  # type: ignore[arg-type]
            except OSError as exc:
                raise StorageError(
                    f"cannot open segment {self.path}: {exc}"
                ) from exc
        data = os.pread(self._fd, length, self._docstore_base + offset)
        if len(data) != length:
            raise StorageError(f"truncated docstore read in {self.path}")
        return data

    def document(self, doc_id: str) -> Optional[IndexableDocument]:
        """Decode a live document from the docstore (None if absent)."""
        ordinal = self._ord.get(doc_id)
        if ordinal is None or ordinal in self.tombstones:
            return None
        record = self._read_docstore(
            self._doc_offs[ordinal], self._doc_lens[ordinal]
        )
        try:
            meta_json, off = read_str(record, 0)
            n_fields, off = read_uint(record, off)
            fields: Dict[str, str] = {}
            for _ in range(n_fields):
                name, off = read_str(record, off)
                text, off = read_str(record, off)
                fields[name] = text
            metadata = json.loads(meta_json)
        except (StorageError, ValueError, UnicodeDecodeError) as exc:
            raise StorageError(
                f"corrupt docstore record for {doc_id!r}: {exc}"
            ) from exc
        return IndexableDocument(
            doc_id=doc_id, fields=fields, metadata=metadata
        )

    def has_doc(self, doc_id: str) -> bool:
        """True if ``doc_id`` is stored here and not tombstoned."""
        ordinal = self._ord.get(doc_id)
        return ordinal is not None and ordinal not in self.tombstones

    def live_doc_ids(self) -> Iterator[str]:
        """Yield live (non-tombstoned) doc ids in ordinal order."""
        tombstones = self.tombstones
        for ordinal, doc_id in enumerate(self.doc_ids):
            if ordinal not in tombstones:
                yield doc_id

    @property
    def doc_count(self) -> int:
        """Total stored documents (including tombstoned)."""
        return len(self.doc_ids)

    @property
    def live_count(self) -> int:
        """Stored documents minus tombstones."""
        return len(self.doc_ids) - len(self.tombstones)

    # -- mutation (tombstones only) -----------------------------------------

    def tombstone(self, doc_id: str) -> bool:
        """Mark ``doc_id`` dead; returns True if it was live here."""
        ordinal = self._ord.get(doc_id)
        if ordinal is None or ordinal in self.tombstones:
            return False
        self.tombstones.add(ordinal)
        for field, lengths in self._length_arrays.items():
            length = lengths[ordinal]
            if length >= 0:
                self._live_field_tokens[field] -= length
                self._live_field_docs[field] -= 1
        self._live_df.clear()
        return True

    # -- statistics (live-exact) --------------------------------------------

    @property
    def fields(self) -> List[str]:
        """Stored field names (postings and/or lengths)."""
        names = set(self._terms)
        names.update(self._length_arrays)
        return sorted(names)

    def posting_fields(self) -> List[str]:
        """Fields that carry at least one stored posting list."""
        return list(self._terms)

    def field_length(self, field: str, doc_id: str) -> int:
        """Token count of ``field`` in a live ``doc_id`` (0 if absent)."""
        ordinal = self._ord.get(doc_id)
        if ordinal is None or ordinal in self.tombstones:
            return 0
        lengths = self._length_arrays.get(field)
        if lengths is None:
            return 0
        length = lengths[ordinal]
        return length if length >= 0 else 0

    def total_length(self, doc_id: str) -> int:
        """Token count across all fields of a live ``doc_id``."""
        ordinal = self._ord.get(doc_id)
        if ordinal is None or ordinal in self.tombstones:
            return 0
        total = 0
        for lengths in self._length_arrays.values():
            length = lengths[ordinal]
            if length >= 0:
                total += length
        return total

    def live_field_docs(self, field: str) -> int:
        """Live documents having ``field``."""
        return self._live_field_docs.get(field, 0)

    def live_field_tokens(self, field: str) -> int:
        """Live token total of ``field``."""
        return self._live_field_tokens.get(field, 0)

    def live_token_total(self) -> int:
        """Live token total across all fields."""
        return sum(self._live_field_tokens.values())

    def df(self, field: str, term: str) -> int:
        """Exact *live* document frequency of ``(field, term)``.

        Tombstone-free segments answer from the stored df in O(1); with
        tombstones the posting list is scanned once and the result
        cached until the next tombstone (MaxScore's bounds need df to
        never exceed the true value, so a stale stored df is unsound).
        """
        entry = self._terms.get(field, {}).get(term)
        if entry is None:
            return 0
        if not self.tombstones:
            return entry[0]
        key = (field, term)
        cached = self._live_df.get(key)
        if cached is None:
            cached = sum(1 for _ in self.iter_term(field, term))
            self._live_df[key] = cached
        return cached

    def stored_max_tf(self, field: str, term: str) -> Optional[int]:
        """Encode-time max tf — an upper bound on the live max tf."""
        entry = self._terms.get(field, {}).get(term)
        return entry[1] if entry is not None else None

    def terms(self, field: str) -> Iterable[str]:
        """Stored terms of one posting field (may include dead terms)."""
        return self._terms.get(field, {})

    # -- posting decode -----------------------------------------------------

    def iter_term(self, field: str, term: str) -> Iterator[Tuple[str, int, int]]:
        """Yield ``(doc_id, tf, field_length)`` for live postings.

        Positions are skipped via the ``rest`` length prefix — this is
        the scoring-path decode.
        """
        entry = self._terms.get(field, {}).get(term)
        if entry is None:
            return
        head = self._head
        off = entry[2]
        end = off + entry[3]
        lengths = self._length_arrays.get(field)
        tombstones = self.tombstones
        doc_ids = self.doc_ids
        ordinal = -1
        while off < end:
            gap, off = read_uint(head, off)
            ordinal += gap
            rest_len, off = read_uint(head, off)
            rest_end = off + rest_len
            if ordinal not in tombstones:
                tf, _ = read_uint(head, off)
                length = lengths[ordinal] if lengths is not None else 0
                yield doc_ids[ordinal], tf, (length if length >= 0 else 0)
            off = rest_end

    def iter_term_raw(
        self, field: str, term: str
    ) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(ordinal, rest_bytes)`` for live postings (merge path)."""
        entry = self._terms.get(field, {}).get(term)
        if entry is None:
            return
        head = self._head
        off = entry[2]
        end = off + entry[3]
        tombstones = self.tombstones
        ordinal = -1
        while off < end:
            gap, off = read_uint(head, off)
            ordinal += gap
            rest_len, off = read_uint(head, off)
            rest_end = off + rest_len
            if ordinal not in tombstones:
                yield ordinal, head[off:rest_end]
            off = rest_end

    def positions(self, field: str, term: str) -> Dict[str, List[int]]:
        """doc_id -> positions for live postings (phrase matching)."""
        entry = self._terms.get(field, {}).get(term)
        if entry is None:
            return {}
        head = self._head
        off = entry[2]
        end = off + entry[3]
        tombstones = self.tombstones
        doc_ids = self.doc_ids
        result: Dict[str, List[int]] = {}
        ordinal = -1
        while off < end:
            gap, off = read_uint(head, off)
            ordinal += gap
            rest_len, off = read_uint(head, off)
            rest_end = off + rest_len
            if ordinal not in tombstones:
                tf, pos_off = read_uint(head, off)
                positions: List[int] = []
                position = 0
                for i in range(tf):
                    delta, pos_off = read_uint(head, pos_off)
                    position = delta if i == 0 else position + delta
                    positions.append(position)
                result[doc_ids[ordinal]] = positions
            off = rest_end
        return result

    def term_frequency(self, field: str, term: str, doc_id: str) -> int:
        """tf of ``term`` in one live document's ``field`` (0 if absent)."""
        ordinal = self._ord.get(doc_id)
        if ordinal is None or ordinal in self.tombstones:
            return 0
        entry = self._terms.get(field, {}).get(term)
        if entry is None:
            return 0
        head = self._head
        off = entry[2]
        end = off + entry[3]
        current = -1
        while off < end:
            gap, off = read_uint(head, off)
            current += gap
            rest_len, off = read_uint(head, off)
            if current == ordinal:
                tf, _ = read_uint(head, off)
                return tf
            if current > ordinal:
                return 0
            off += rest_len
        return 0

    # -- metadata index -----------------------------------------------------

    def meta_docs(self, key: str, value: Any) -> Set[str]:
        """Live doc ids whose metadata ``key`` equals ``value``."""
        by_value = self._meta.get(key)
        if not by_value:
            return set()
        value_json = _meta_value_json(value)
        if value_json is None:
            return set()
        ords = by_value.get(value_json)
        if not ords:
            return set()
        tombstones = self.tombstones
        doc_ids = self.doc_ids
        return {
            doc_ids[ordinal]
            for ordinal in ords
            if ordinal not in tombstones
        }

    def meta_items(self) -> Dict[str, Dict[str, Tuple[int, ...]]]:
        """Raw metadata value index (merge path)."""
        return self._meta


def _meta_value_json(value: Any) -> Optional[str]:
    """Canonical JSON for a metadata value, or None if not encodable.

    Mirrors the in-memory index's hashability rule: unhashable values
    are never indexed there, so they are not encoded (or matched) here
    either.  Hashable-but-unserializable values are likewise skipped.
    """
    try:
        hash(value)
    except TypeError:
        return None
    try:
        return json.dumps(value, sort_keys=True)
    except (TypeError, ValueError):
        return None


def _encode_docstore_record(out: bytearray, document: IndexableDocument) -> None:
    try:
        meta_json = json.dumps(dict(document.metadata), sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise StorageError(
            f"document {document.doc_id!r} metadata is not "
            f"JSON-serializable: {exc}"
        ) from exc
    write_str(out, meta_json)
    write_uint(out, len(document.fields))
    for name, text in document.fields.items():
        write_str(out, name)
        write_str(out, text)


def _finish_segment(
    head: bytearray, docstore: bytearray
) -> bytes:
    out = bytearray(MAGIC)
    write_uint(out, FORMAT_VERSION)
    write_uint(out, len(head))
    out.extend(head)
    out.extend(docstore)
    return bytes(out)


def encode_from_index(index) -> bytes:
    """Encode a full :class:`~repro.search.inverted_index.InvertedIndex`.

    Documents are assigned ordinals in sorted-doc_id order; uses only
    the index's public API (``doc_ids``, ``document``, ``field_lengths``,
    ``vocabulary``, ``postings``).
    """
    doc_ids = sorted(index.doc_ids)
    ords = {doc_id: i for i, doc_id in enumerate(doc_ids)}

    docstore = bytearray()
    head = bytearray()
    write_uint(head, len(doc_ids))
    meta_index: Dict[str, Dict[str, List[int]]] = {}
    for doc_id in doc_ids:
        document = index.document(doc_id)
        start = len(docstore)
        _encode_docstore_record(docstore, document)
        write_str(head, doc_id)
        write_uint(head, start)
        write_uint(head, len(docstore) - start)
        for key, value in document.metadata.items():
            value_json = _meta_value_json(value)
            if value_json is None:
                continue
            meta_index.setdefault(key, {}).setdefault(
                value_json, []
            ).append(ords[doc_id])

    # ``index.fields`` lists posting fields only; a field whose every
    # instance analyzed to zero terms still has lengths, so union in the
    # documents' own field names.
    seen = set(index.fields)
    for doc_id in doc_ids:
        seen.update(index.document(doc_id).fields)
    length_fields = sorted(seen)

    length_sections: List[Tuple[str, int, List[Tuple[int, int]]]] = []
    for field in length_fields:
        lengths = index.field_lengths(field)
        if not lengths:
            continue
        entries = sorted(
            (ords[doc_id], length) for doc_id, length in lengths.items()
        )
        token_total = index.field_token_total(field)
        length_sections.append((field, token_total, entries))
    write_uint(head, len(length_sections))
    for field, token_total, entries in length_sections:
        write_str(head, field)
        write_uint(head, token_total)
        write_uint(head, len(entries))
        previous = -1
        for ordinal, length in entries:
            write_uint(head, ordinal - previous)
            write_uint(head, length)
            previous = ordinal

    write_uint(head, len(meta_index))
    for key in sorted(meta_index):
        by_value = meta_index[key]
        write_str(head, key)
        write_uint(head, len(by_value))
        for value_json in sorted(by_value):
            ordinals = by_value[value_json]
            write_str(head, value_json)
            write_uint(head, len(ordinals))
            previous = -1
            for ordinal in ordinals:
                write_uint(head, ordinal - previous)
                previous = ordinal

    posting_fields = [
        field for field in index.fields if index.vocabulary(field)
    ]
    write_uint(head, len(posting_fields))
    for field in posting_fields:
        terms = sorted(index.vocabulary(field))
        write_str(head, field)
        write_uint(head, len(terms))
        for term in terms:
            docs = index.postings(term, field)
            entries = sorted(
                (ords[doc_id], positions)
                for doc_id, positions in docs.items()
            )
            blob = bytearray()
            previous = -1
            max_tf = 0
            for ordinal, positions in entries:
                write_uint(blob, ordinal - previous)
                previous = ordinal
                rest = bytearray()
                tf = len(positions)
                if tf > max_tf:
                    max_tf = tf
                write_uint(rest, tf)
                last = 0
                for i, position in enumerate(positions):
                    write_uint(rest, position if i == 0 else position - last)
                    last = position
                write_uint(blob, len(rest))
                blob.extend(rest)
            write_str(head, term)
            write_uint(head, len(entries))
            write_uint(head, max_tf)
            write_uint(head, len(blob))
            head.extend(blob)

    return _finish_segment(head, docstore)


def merge_segments(segments: List[Segment]) -> bytes:
    """Structurally merge segments into one tombstone-free segment.

    Live documents keep their relative order (older segments first);
    ordinals are remapped, posting ``rest`` bytes and docstore records
    are copied verbatim — no text is re-analyzed and no position is
    decoded.
    """
    remaps: List[Dict[int, int]] = []
    doc_ids: List[str] = []
    next_ordinal = 0
    for segment in segments:
        remap: Dict[int, int] = {}
        for ordinal, doc_id in enumerate(segment.doc_ids):
            if ordinal in segment.tombstones:
                continue
            remap[ordinal] = next_ordinal
            doc_ids.append(doc_id)
            next_ordinal += 1
        remaps.append(remap)
    if len(set(doc_ids)) != len(doc_ids):
        raise StorageError("duplicate live doc_id across merged segments")

    docstore = bytearray()
    head = bytearray()
    write_uint(head, len(doc_ids))
    for seg_index, segment in enumerate(segments):
        remap = remaps[seg_index]
        for ordinal in sorted(remap):
            record = segment._read_docstore(
                segment._doc_offs[ordinal], segment._doc_lens[ordinal]
            )
            start = len(docstore)
            docstore.extend(record)
            write_str(head, segment.doc_ids[ordinal])
            write_uint(head, start)
            write_uint(head, len(record))

    all_length_fields = sorted(
        {
            field
            for segment in segments
            for field in segment._length_arrays
        }
    )
    length_sections = []
    for field in all_length_fields:
        entries: List[Tuple[int, int]] = []
        token_total = 0
        for seg_index, segment in enumerate(segments):
            lengths = segment._length_arrays.get(field)
            if lengths is None:
                continue
            remap = remaps[seg_index]
            for ordinal, new_ordinal in remap.items():
                length = lengths[ordinal]
                if length >= 0:
                    entries.append((new_ordinal, length))
                    token_total += length
        if entries:
            entries.sort()
            length_sections.append((field, token_total, entries))
    write_uint(head, len(length_sections))
    for field, token_total, entries in length_sections:
        write_str(head, field)
        write_uint(head, token_total)
        write_uint(head, len(entries))
        previous = -1
        for ordinal, length in entries:
            write_uint(head, ordinal - previous)
            write_uint(head, length)
            previous = ordinal

    meta_index: Dict[str, Dict[str, List[int]]] = {}
    for seg_index, segment in enumerate(segments):
        remap = remaps[seg_index]
        for key, by_value in segment.meta_items().items():
            for value_json, ordinals in by_value.items():
                live = [
                    remap[ordinal]
                    for ordinal in ordinals
                    if ordinal in remap
                ]
                if live:
                    meta_index.setdefault(key, {}).setdefault(
                        value_json, []
                    ).extend(live)
    write_uint(head, len(meta_index))
    for key in sorted(meta_index):
        by_value = meta_index[key]
        write_str(head, key)
        write_uint(head, len(by_value))
        for value_json in sorted(by_value):
            ordinals = sorted(by_value[value_json])
            write_str(head, value_json)
            write_uint(head, len(ordinals))
            previous = -1
            for ordinal in ordinals:
                write_uint(head, ordinal - previous)
                previous = ordinal

    all_posting_fields = sorted(
        {
            field
            for segment in segments
            for field in segment.posting_fields()
        }
    )
    posting_sections = []
    for field in all_posting_fields:
        terms = sorted(
            {
                term
                for segment in segments
                for term in segment.terms(field)
            }
        )
        term_entries = []
        for term in terms:
            blob = bytearray()
            previous = -1
            df = 0
            max_tf = 0
            for seg_index, segment in enumerate(segments):
                remap = remaps[seg_index]
                for ordinal, rest in segment.iter_term_raw(field, term):
                    new_ordinal = remap[ordinal]
                    write_uint(blob, new_ordinal - previous)
                    previous = new_ordinal
                    write_uint(blob, len(rest))
                    blob.extend(rest)
                    df += 1
                    tf, _ = read_uint(rest, 0)
                    if tf > max_tf:
                        max_tf = tf
            if df:
                term_entries.append((term, df, max_tf, bytes(blob)))
        if term_entries:
            posting_sections.append((field, term_entries))
    write_uint(head, len(posting_sections))
    for field, term_entries in posting_sections:
        write_str(head, field)
        write_uint(head, len(term_entries))
        for term, df, max_tf, blob in term_entries:
            write_str(head, term)
            write_uint(head, df)
            write_uint(head, max_tf)
            write_uint(head, len(blob))
            head.extend(blob)

    return _finish_segment(head, docstore)
