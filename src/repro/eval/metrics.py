"""Retrieval-quality metrics (paper Section 4's footnotes 5-7).

Precision, recall and F-measure exactly as the paper defines them, plus
NDCG for the ranking ablation (the paper ranks results but evaluates
sets; the ablation bench needs an order-sensitive metric).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence, Set

__all__ = ["PrfScores", "precision", "recall", "f_measure", "evaluate_sets",
           "dcg", "ndcg"]


def precision(retrieved: Set, relevant: Set) -> float:
    """Correct answers returned / answers returned (paper footnote 6).

    An empty retrieval set scores 1.0 — returning nothing asserts
    nothing false.
    """
    if not retrieved:
        return 1.0
    return len(retrieved & relevant) / len(retrieved)


def recall(retrieved: Set, relevant: Set) -> float:
    """Correct answers returned / total correct answers (footnote 5).

    With no relevant items, recall is 1.0 by convention.
    """
    if not relevant:
        return 1.0
    return len(retrieved & relevant) / len(relevant)


def f_measure(precision_value: float, recall_value: float) -> float:
    """2PR / (P + R) (paper footnote 7); 0 when both are 0."""
    if precision_value + recall_value == 0:
        return 0.0
    return (
        2 * precision_value * recall_value
        / (precision_value + recall_value)
    )


@dataclass(frozen=True)
class PrfScores:
    """One system's P/R/F on one query."""

    precision: float
    recall: float
    f_measure: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"P={self.precision:.2f} R={self.recall:.2f} "
            f"F={self.f_measure:.2f}"
        )


def evaluate_sets(retrieved: Iterable, relevant: Iterable) -> PrfScores:
    """P/R/F of a retrieved set against a relevant set."""
    retrieved_set = set(retrieved)
    relevant_set = set(relevant)
    p = precision(retrieved_set, relevant_set)
    r = recall(retrieved_set, relevant_set)
    return PrfScores(p, r, f_measure(p, r))


def dcg(gains: Sequence[float]) -> float:
    """Discounted cumulative gain of a gain sequence (log2 discount)."""
    return sum(
        gain / math.log2(position + 2)
        for position, gain in enumerate(gains)
    )


def ndcg(
    ranked: Sequence, relevance: Mapping, k: int = 10
) -> float:
    """NDCG@k of ``ranked`` items against graded ``relevance``.

    Items absent from ``relevance`` count as gain 0.  Returns 1.0 when
    nothing is relevant (an empty ideal ranking cannot be beaten).
    """
    gains = [float(relevance.get(item, 0.0)) for item in ranked[:k]]
    ideal = sorted(
        (float(g) for g in relevance.values() if g > 0), reverse=True
    )[:k]
    ideal_dcg = dcg(ideal)
    if ideal_dcg == 0:
        return 1.0
    return dcg(gains) / ideal_dcg
