"""The Section 2 requirements study, reproduced end to end.

The paper's authors monitored 120 distribution-list threads and manually
classified the information needs into four meta-query categories.  Here
a rule-based classifier plays the analysts' role: it reads each thread's
text and assigns meta-query labels plus a social-networking-solicitation
flag.  Run against the generated thread corpus (whose true labels are
known), it reproduces the paper's reported distribution — 38% / 17% /
36% / 29% and 63/120 social — and its accuracy against the generator's
ground truth is itself a reported metric.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence

from repro.corpus.emails_gen import EmailThread

__all__ = ["ThreadLabel", "StudyReport", "MetaQueryClassifier"]

_MQ1_RE = re.compile(
    r"scope that involves|engagements have a scope|deals with .* in scope|"
    r"which (?:business )?engagements",
    re.IGNORECASE,
)
_MQ2_RE = re.compile(r"worked with\s+[A-Z]", re.IGNORECASE)
_MQ3_RE = re.compile(r"in the capacity of|capacity of", re.IGNORECASE)
_MQ4_RE = re.compile(
    r"worked on .+ that involved|involving|that involved", re.IGNORECASE
)
# Social solicitation = explicitly asking for a person to connect with,
# not merely using "who" in the question.
_SOCIAL_RE = re.compile(
    r"contact details|an introduction|someone to talk to|"
    r"looking for someone|connect me with|put me in touch",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class ThreadLabel:
    """Classifier output for one thread."""

    thread_id: str
    types: FrozenSet[str]
    asks_social: bool


@dataclass
class StudyReport:
    """Aggregated study results (the Section 2 numbers).

    Attributes:
        total: Threads analyzed.
        type_counts: Threads per meta-query type (a thread may count
            toward several types, as in the paper).
        social_count: Threads soliciting social-networking information.
        labels: Per-thread classifier output.
        label_accuracy: Fraction of threads whose predicted type set
            equals the generator's ground truth (only meaningful when
            ground truth was available).
    """

    total: int
    type_counts: Dict[str, int]
    social_count: int
    labels: List[ThreadLabel] = field(default_factory=list)
    label_accuracy: float = 0.0

    def percentage(self, meta_query: str) -> float:
        """A type's share of threads, in percent."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.type_counts.get(meta_query, 0) / self.total

    def social_percentage(self) -> float:
        """Share of threads soliciting social info, in percent."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.social_count / self.total


class MetaQueryClassifier:
    """Rule-based thread classifier standing in for the paper's analysts."""

    def classify_text(self, text: str) -> FrozenSet[str]:
        """Meta-query types expressed in ``text``."""
        types = set()
        if _MQ1_RE.search(text):
            types.add("mq1")
        if _MQ2_RE.search(text):
            types.add("mq2")
        if _MQ3_RE.search(text):
            types.add("mq3")
        if _MQ4_RE.search(text):
            types.add("mq4")
        return frozenset(types)

    def classify_thread(self, thread: EmailThread) -> ThreadLabel:
        """Classify one thread from its first (question) message."""
        question = thread.messages[0]
        text = f"{question.subject}\n{question.body}"
        return ThreadLabel(
            thread_id=thread.thread_id,
            types=self.classify_text(text),
            asks_social=bool(_SOCIAL_RE.search(text)),
        )

    def run_study(self, threads: Sequence[EmailThread]) -> StudyReport:
        """Classify every thread and aggregate the Section 2 numbers."""
        labels = [self.classify_thread(thread) for thread in threads]
        type_counts: Dict[str, int] = {}
        social = 0
        correct = 0
        for thread, label in zip(threads, labels):
            for meta_query in label.types:
                type_counts[meta_query] = type_counts.get(meta_query, 0) + 1
            if label.asks_social:
                social += 1
            if label.types == thread.true_types:
                correct += 1
        return StudyReport(
            total=len(threads),
            type_counts=type_counts,
            social_count=social,
            labels=labels,
            label_accuracy=correct / len(threads) if threads else 0.0,
        )
