"""Experiment drivers: one function per paper table/figure.

Each driver runs an experiment end-to-end against a generated corpus and
an EIL build, returning a plain-data report the benchmarks print and the
integration tests assert on.  See DESIGN.md Section 4 for the experiment
index (E1-E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.eil import EILSystem
from repro.core.metaqueries import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.corpus.generator import Corpus
from repro.eval.metrics import PrfScores, evaluate_sets, ndcg
from repro.security.access import User

__all__ = [
    "Table2Row",
    "Table2Report",
    "run_table2",
    "Fig4Report",
    "run_fig4",
    "Fig7Report",
    "run_fig7",
    "Mq3Report",
    "run_mq3",
    "Mq4Report",
    "run_mq4",
    "RankingAblationReport",
    "run_ranking_ablation",
    "keyword_query_for_service",
    "keyword_matched_deals",
    "TABLE2_SERVICES",
]

_USER = User("evaluator", frozenset({"sales"}))

# The ten scope queries of the Table 2 experiment: a mix of parents
# (subtype expansion matters), plain towers, and subtowers.
TABLE2_SERVICES = (
    "End User Services",
    "Storage Management Services",
    "Network Services",
    "Disaster Recovery Services",
    "Customer Service Center",
    "Mainframe Services",
    "Security Services",
    "Application Management Services",
    "WAN",
    "Data Center Services",
)


def keyword_query_for_service(corpus: Corpus, service: str) -> str:
    """The best keyword query a diligent user would write for a service.

    ORs together every surface form of the service and its subtypes —
    the post-correction query of the paper's Figure 4 (the naive user
    would stop at the service name alone).
    """
    node = corpus.taxonomy.get(service)
    forms: List[str] = []
    for descendant in corpus.taxonomy.expand(node.name):
        forms.extend(descendant.surface_forms)
    parts = [
        f'"{form}"' if " " in form else form
        for form in dict.fromkeys(forms)
    ]
    return " OR ".join(parts)


def keyword_matched_deals(
    eil: EILSystem, query: str
) -> Set[str]:
    """Deals a keyword searcher would conclude are relevant.

    The paper's baseline user reads the returned documents and notes
    which engagements they belong to — i.e. a deal is "retrieved" when
    at least one of its documents matches.
    """
    return {
        hit.metadata.get("deal_id")
        for hit in eil.keyword_search(query)
        if hit.metadata.get("deal_id")
    }


# ---------------------------------------------------------------------------
# E3: Table 2 — EIL vs keyword P/R/F on 10 scope queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """One query's scores, mirroring one row of the paper's Table 2."""

    query: str
    eil: PrfScores
    keyword: PrfScores


@dataclass
class Table2Report:
    """The full Table 2 reproduction."""

    rows: List[Table2Row] = field(default_factory=list)

    def mean_f(self) -> Tuple[float, float]:
        """(EIL mean F, keyword mean F)."""
        if not self.rows:
            return 0.0, 0.0
        eil = sum(r.eil.f_measure for r in self.rows) / len(self.rows)
        keyword = sum(
            r.keyword.f_measure for r in self.rows
        ) / len(self.rows)
        return eil, keyword

    def eil_wins(self) -> int:
        """Queries where EIL's F beats keyword's."""
        return sum(
            1 for r in self.rows if r.eil.f_measure > r.keyword.f_measure
        )


def run_table2(
    corpus: Corpus,
    eil: EILSystem,
    services: Sequence[str] = TABLE2_SERVICES,
) -> Table2Report:
    """Run the 10 scope queries against both systems and score them."""
    report = Table2Report()
    for service in services:
        relevant = {
            deal.deal_id for deal in corpus.deals_with_service(service)
        }
        eil_retrieved = set(
            eil.search(scope_query(service), _USER).deal_ids
        )
        keyword_retrieved = keyword_matched_deals(
            eil, keyword_query_for_service(corpus, service)
        )
        report.rows.append(
            Table2Row(
                query=service,
                eil=evaluate_sets(eil_retrieved, relevant),
                keyword=evaluate_sets(keyword_retrieved, relevant),
            )
        )
    return report


# ---------------------------------------------------------------------------
# E4: Figure 4 — keyword hit-count blow-up for End User Services
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig4Report:
    """Keyword document counts for the EUS query (paper: 261 vs 1132).

    Attributes:
        plain_docs: Hits for the service name + acronym alone.
        expanded_docs: Hits once subtypes are OR-ed in.
        eil_deals: Deals EIL's concept search returns for the same need.
        total_docs: Corpus size, for rate context.
    """

    plain_docs: int
    expanded_docs: int
    eil_deals: int
    total_docs: int


def run_fig4(corpus: Corpus, eil: EILSystem) -> Fig4Report:
    """Count the keyword blow-up and the EIL alternative."""
    plain = eil.keyword_count('"End User Services" OR EUS')
    expanded = eil.keyword_count(
        keyword_query_for_service(corpus, "End User Services")
    )
    eil_deals = len(
        eil.search(scope_query("End User Services"), _USER).deal_ids
    )
    return Fig4Report(
        plain_docs=plain,
        expanded_docs=expanded,
        eil_deals=eil_deals,
        total_docs=corpus.document_count,
    )


# ---------------------------------------------------------------------------
# E6: Figure 7 / Meta-query 2 — multi-step people search
# ---------------------------------------------------------------------------


@dataclass
class Fig7Report:
    """The keyword user's journey vs EIL's single query.

    Attributes:
        person: The person searched for.
        organization: Their organization.
        step1_docs: Hits for name+org+role in one shot (paper: 0).
        step2_docs: Hits for name+org (paper: 4).
        discovered_deals: Deals identifiable from step-2 hits.
        step3_docs: Hits for deal-name+role (paper: 97).
        keyword_steps: Queries the keyword user needed.
        eil_deals: Deals EIL's one people query returned.
        eil_contacts: Contacts on the top EIL deal's People tab.
        truth_deals: Deals the person actually worked per ground truth.
    """

    person: str
    organization: str
    step1_docs: int
    step2_docs: int
    discovered_deals: List[str]
    step3_docs: int
    keyword_steps: int
    eil_deals: List[str]
    eil_contacts: int
    truth_deals: List[str]


def run_fig7(
    corpus: Corpus,
    eil: EILSystem,
    person_name: Optional[str] = None,
    organization: Optional[str] = None,
    role: str = "CSE",
) -> Fig7Report:
    """Replay the paper's Meta-query 2 episode on the corpus.

    Defaults to a client-team member of the first deal (mirroring "Sam
    White from company ABC").
    """
    if person_name is None:
        # Pick a client-team member whose full name actually appears in
        # some indexed document (the paper's Sam White is findable after
        # a re-query); a person only recorded as "Last, First" would
        # make even the baseline's second step return nothing.
        candidates = [
            member
            for deal in corpus.deals
            for member in deal.team
            if member.category == "client team"
        ]
        member = candidates[0]
        for candidate in candidates:
            org = candidate.person.organization.split()[0]
            if eil.keyword_count(
                f'"{candidate.person.full_name}" {org}'
            ) > 0:
                member = candidate
                break
        person_name = member.person.full_name
        organization = member.person.organization
    organization = organization or ""

    org_token = organization.split()[0] if organization else ""
    quoted_name = f'"{person_name}"'

    # Step 1: everything at once — typically nothing.
    step1 = eil.keyword_count(
        f"{quoted_name} {org_token} {role}".strip()
    )
    # Step 2: drop the role; find the deal from the hits.
    step2_hits = eil.keyword_search(f"{quoted_name} {org_token}".strip())
    discovered = sorted(
        {
            hit.metadata.get("deal_id")
            for hit in step2_hits
            if hit.metadata.get("deal_id")
        }
    )
    # Step 3: search the discovered deal's name with the role.
    step3 = 0
    if discovered:
        deal_name = corpus.deal_by_id(discovered[0]).name
        step3 = eil.keyword_count(f'"{deal_name}" {role}')
    keyword_steps = 1 + (1 if step1 == 0 else 0) + (1 if discovered else 0)

    results = eil.search(
        worked_with_query(person_name, organization), _USER
    )
    eil_contacts = 0
    if results.deal_ids:
        synopsis = eil.synopsis(results.deal_ids[0], _USER)
        eil_contacts = len(synopsis.contacts())
    truth = [
        deal.deal_id
        for deal in corpus.deals
        if any(m.person.full_name == person_name for m in deal.team)
    ]
    return Fig7Report(
        person=person_name,
        organization=organization,
        step1_docs=step1,
        step2_docs=len(step2_hits),
        discovered_deals=discovered,
        step3_docs=step3,
        keyword_steps=keyword_steps,
        eil_deals=results.deal_ids,
        eil_contacts=eil_contacts,
        truth_deals=truth,
    )


# ---------------------------------------------------------------------------
# E7: Meta-query 3 — role-capacity search and empty-field noise
# ---------------------------------------------------------------------------


@dataclass
class Mq3Report:
    """Keyword hits vs useful hits for the role query (paper: 149 docs).

    Attributes:
        keyword_docs: Documents matching "cross tower TSA".
        keyword_useful_docs: The subset that actually names a person
            next to the field (the rest are empty schema fields).
        eil_deals: Deals whose contact list holds the role.
        eil_people: Distinct people EIL returns for the role.
        truth_people: Distinct people holding the role per ground truth.
    """

    keyword_docs: int
    keyword_useful_docs: int
    eil_deals: List[str]
    eil_people: Set[str]
    truth_people: Set[str]


def run_mq3(
    corpus: Corpus,
    eil: EILSystem,
    role_surface: str = "cross tower TSA",
    canonical_role: str = "Cross Tower Technical Solution Architect",
) -> Mq3Report:
    """Replay the paper's Meta-query 3 episode."""
    hits = eil.keyword_search(f'"{role_surface}"')
    useful = 0
    for hit in hits:
        body = hit.document.fields.get("body", "")
        for line in body.splitlines():
            if role_surface.lower() in line.lower():
                value = line.partition(":")[2].strip()
                if value:
                    useful += 1
                break
    results = eil.search(role_capacity_query(role_surface), _USER)
    eil_people: Set[str] = set()
    for deal_id in results.deal_ids:
        for contact in eil.synopsis(deal_id, _USER).contacts():
            if contact.role == canonical_role:
                eil_people.add(contact.name)
    truth_people = {
        member.person.full_name
        for deal in corpus.deals
        for member in deal.team
        if member.role == canonical_role
    }
    return Mq3Report(
        keyword_docs=len(hits),
        keyword_useful_docs=useful,
        eil_deals=results.deal_ids,
        eil_people=eil_people,
        truth_people=truth_people,
    )


# ---------------------------------------------------------------------------
# E8: Figures 8-9 / Meta-query 4 — concept + keyword hybrid
# ---------------------------------------------------------------------------


@dataclass
class Mq4Report:
    """Hybrid query vs keyword baseline (paper Figures 8-9).

    Attributes:
        service: The tower criterion.
        keyword: The text criterion.
        eil_deals: Ranked activities from the hybrid EIL query.
        eil_scoped: True when the SIAPI query ran activity-scoped.
        keyword_deals: Deals a one-shot conjunctive keyword query finds.
        keyword_docs: Documents that one-shot query returns.
        truth_deals: Deals with the service in scope AND the technology
            planted (the real answer set).
    """

    service: str
    keyword: str
    eil_deals: List[str]
    eil_scoped: bool
    keyword_deals: Set[str]
    keyword_docs: int
    truth_deals: Set[str]


def run_mq4(
    corpus: Corpus,
    eil: EILSystem,
    service: str = "Storage Management Services",
    keyword: str = "data replication",
) -> Mq4Report:
    """Replay the paper's Meta-query 4 episode."""
    results = eil.search(service_keyword_query(service, keyword), _USER)
    one_shot = f'"{service}" "{keyword}"'
    keyword_hits = eil.keyword_search(one_shot)
    truth = {
        deal.deal_id
        for deal in corpus.deals
        if deal.has_service(corpus.taxonomy, service)
        and keyword in {tech for _, tech in deal.technologies}
    }
    return Mq4Report(
        service=service,
        keyword=keyword,
        eil_deals=results.deal_ids,
        eil_scoped=results.scoped,
        keyword_deals={
            hit.metadata.get("deal_id")
            for hit in keyword_hits
            if hit.metadata.get("deal_id")
        },
        keyword_docs=len(keyword_hits),
        truth_deals=truth,
    )


# ---------------------------------------------------------------------------
# E10: ranking ablation — synopsis-only / SIAPI-only / combined
# ---------------------------------------------------------------------------


@dataclass
class RankingAblationReport:
    """Mean NDCG@10 of three retrieval policies over hybrid queries.

    Ablates the two design choices of Fig. 1: activity scoping (steps
    5-8) and rank combination (step 18).

    For each policy two numbers are reported: mean NDCG@10 with graded
    relevance (ordering quality) and mean F-measure against the strict
    hybrid-intent truth set (deals satisfying *both* criteria) — the
    set-quality number where activity scoping pays off.

    Attributes:
        synopsis_only: (ndcg, f) for concept search alone.
        unscoped_keyword: (ndcg, f) for the keyword side without the
            synopsis pre-filter (the "search-box" policy).
        combined: (ndcg, f) for full EIL — scoped keyword search with
            combined ranking.
        queries: Hybrid (service, technology) queries evaluated.
    """

    synopsis_only: Tuple[float, float]
    unscoped_keyword: Tuple[float, float]
    combined: Tuple[float, float]
    queries: int


def run_ranking_ablation(
    corpus: Corpus, eil: EILSystem, max_queries: int = 10
) -> RankingAblationReport:
    """Score the Fig. 1 design choices with graded relevance.

    Relevance grades per (service, technology) query follow the hybrid
    intent: 3 when the deal has the service in scope *and* the
    technology planted (what the asker wants), 1 when only the service
    is in scope (partially useful), 0 otherwise.  Technologies are shared
    between services in the taxonomy ("data replication" belongs to
    both Storage Management and Disaster Recovery), so the unscoped
    keyword policy surfaces deals where the technology arrived through
    the *wrong* service — exactly the noise scoping removes.
    """
    from repro.search.siapi import SiapiQuery

    # Discriminative queries: technologies owned by services in at
    # least two different tower families, so the unscoped keyword
    # policy can be fooled by the "wrong" family's deals.
    def top_tower(name: str) -> str:
        node = corpus.taxonomy.get(name)
        while node.parent is not None:
            node = corpus.taxonomy.get(node.parent)
        return node.name

    tech_families: Dict[str, Set[str]] = {}
    tech_owners: Dict[str, List[str]] = {}
    for node in corpus.taxonomy.all_nodes:
        for tech in node.technologies:
            tech_families.setdefault(tech, set()).add(top_tower(node.name))
            tech_owners.setdefault(tech, []).append(node.name)
    queries: List[Tuple[str, str]] = []
    for tech, families in tech_families.items():
        if len(families) < 2:
            continue
        for owner in tech_owners[tech]:
            queries.append((owner, tech))
    queries.sort()
    queries = queries[:max_queries]

    ndcg_scores: Dict[str, List[float]] = {
        "synopsis": [], "unscoped": [], "combined": [],
    }
    f_scores: Dict[str, List[float]] = {
        "synopsis": [], "unscoped": [], "combined": [],
    }
    for service, tech in queries:
        relevance: Dict[str, int] = {}
        strict_truth: Set[str] = set()
        for deal in corpus.deals:
            in_scope = deal.has_service(corpus.taxonomy, service)
            has_tech = tech in {t for _, t in deal.technologies}
            if in_scope and has_tech:
                relevance[deal.deal_id] = 3
                strict_truth.add(deal.deal_id)
            elif in_scope:
                relevance[deal.deal_id] = 1

        rankings = {
            "synopsis": eil.search(scope_query(service), _USER).deal_ids,
            "unscoped": [
                group.activity_id
                for group in eil.siapi.search_grouped(
                    SiapiQuery(exact_phrase=tech)
                )
            ],
            "combined": eil.search(
                service_keyword_query(service, tech), _USER
            ).deal_ids,
        }
        for label, ranked in rankings.items():
            ndcg_scores[label].append(ndcg(ranked, relevance, k=10))
            f_scores[label].append(
                evaluate_sets(set(ranked), strict_truth).f_measure
            )

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return RankingAblationReport(
        synopsis_only=(mean(ndcg_scores["synopsis"]),
                       mean(f_scores["synopsis"])),
        unscoped_keyword=(mean(ndcg_scores["unscoped"]),
                          mean(f_scores["unscoped"])),
        combined=(mean(ndcg_scores["combined"]),
                  mean(f_scores["combined"])),
        queries=len(queries),
    )
