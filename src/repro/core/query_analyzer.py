"""Query Analyzer & Information Collector (paper Figure 2, online side).

Takes the form-based query (paper Figure 8: concept criteria + text
criteria + people criteria) and splits it into

* a *synopsis query* over the organized-information database, and
* a *SIAPI query* for the semantic index (or None when no text criteria
  were entered),

exactly the decomposition steps 1-3 of the paper's Figure 1 perform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.organized import OrganizedInformation
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.errors import QuerySyntaxError
from repro.obs import get_registry, get_tracer
from repro.search.siapi import SiapiQuery
from repro.text.normalize import normalize_role

__all__ = ["FormQuery", "SynopsisMatch", "SynopsisSearch"]


@dataclass(frozen=True)
class FormQuery:
    """The EIL search form (paper Figure 8).

    Concept criteria ("Find deals with these characteristics"):

    Attributes:
        tower: Service concept; matches the taxonomy node *or any of its
            descendants* — selecting "End User Services" finds CSC deals.
        industry: Sector/industry substring.
        consultant: Outsourcing-consultant substring.
        geography: Geography/country substring.
        all_words: Text criterion — every word must appear.
        exact_phrase: Text criterion — consecutive phrase.
        any_words: Text criterion — at least one word.
        none_words: Text criterion — excluded words.
        search_in: Where text criteria apply: ``"ewb"`` (the engagement
            workbooks via the semantic index) or ``"synopsis"`` (the
            extracted technology-solution and win-strategy text).
        person_name: People criterion — contact-name substring.
        organization: People criterion — contact-organization substring.
        role: People criterion — canonical role (normalized).
    """

    tower: str = ""
    industry: str = ""
    consultant: str = ""
    geography: str = ""
    all_words: str = ""
    exact_phrase: str = ""
    any_words: str = ""
    none_words: str = ""
    search_in: str = "ewb"
    person_name: str = ""
    organization: str = ""
    role: str = ""

    def __post_init__(self) -> None:
        if self.search_in not in ("ewb", "synopsis"):
            raise QuerySyntaxError(
                f"search_in must be 'ewb' or 'synopsis', "
                f"got {self.search_in!r}"
            )

    def has_concept_criteria(self) -> bool:
        """Any synopsis-side (concept/people) field filled?"""
        return any(
            value.strip()
            for value in (
                self.tower, self.industry, self.consultant, self.geography,
                self.person_name, self.organization, self.role,
            )
        )

    def has_text_criteria(self) -> bool:
        """Any keyword-side field filled?"""
        return any(
            value.strip()
            for value in (self.all_words, self.exact_phrase,
                          self.any_words, self.none_words)
        )

    def is_empty(self) -> bool:
        """Nothing entered at all."""
        return not (self.has_concept_criteria() or self.has_text_criteria())

    def describe(self) -> str:
        """Natural-language echo of the query (paper Figure 8's footer).

        E.g. ``Find deals with Storage Management Services tower;
        contain "data replication" anywhere in EWB``.
        """
        parts: List[str] = []
        if self.tower.strip():
            parts.append(f"with {self.tower.strip()} tower")
        if self.industry.strip():
            parts.append(f"in the {self.industry.strip()} industry")
        if self.consultant.strip():
            parts.append(f"advised by {self.consultant.strip()}")
        if self.geography.strip():
            parts.append(f"in {self.geography.strip()}")
        where = ("anywhere in EWB" if self.search_in == "ewb"
                 else "in the deal synopsis")
        if self.all_words.strip():
            parts.append(f"contain all of '{self.all_words.strip()}' "
                         f"{where}")
        if self.exact_phrase.strip():
            parts.append(f'contain "{self.exact_phrase.strip()}" {where}')
        if self.any_words.strip():
            parts.append(f"contain any of '{self.any_words.strip()}' "
                         f"{where}")
        if self.none_words.strip():
            parts.append(f"contain none of '{self.none_words.strip()}' "
                         f"{where}")
        people = []
        if self.person_name.strip():
            people.append(self.person_name.strip())
        if self.organization.strip():
            people.append(f"of {self.organization.strip()}")
        if self.role.strip():
            people.append(f"as {self.role.strip()}")
        if people:
            parts.append("involving " + " ".join(people))
        if not parts:
            return "Find all deals"
        return "Find deals " + "; ".join(parts)

    def to_siapi_query(self) -> Optional[SiapiQuery]:
        """Step 3 of Fig. 1: the SIAPI query, or None without text."""
        if not self.has_text_criteria() or self.search_in != "ewb":
            return None
        return SiapiQuery(
            all_words=self.all_words,
            exact_phrase=self.exact_phrase,
            any_words=self.any_words,
            none_words=self.none_words,
        )


@dataclass
class SynopsisMatch:
    """One activity matched by the synopsis query.

    Attributes:
        deal_id: The activity.
        score: Synopsis relevance in (0, 1].
        reasons: Human-readable match explanations ("tower rank 1", ...).
    """

    deal_id: str
    score: float
    reasons: List[str] = field(default_factory=list)


class SynopsisSearch:
    """Executes the synopsis side (steps 2 and 4 of Fig. 1).

    Each filled criterion contributes a sub-score; criteria combine
    conjunctively (a deal must satisfy all of them) and the final
    synopsis relevance is the mean of the sub-scores.
    """

    def __init__(
        self, organized: OrganizedInformation, taxonomy: ServiceTaxonomy
    ) -> None:
        self.organized = organized
        self.taxonomy = taxonomy

    def execute(self, form: FormQuery) -> Dict[str, SynopsisMatch]:
        """Run the synopsis query; empty dict when no concept criteria."""
        if not form.has_concept_criteria() and not (
            form.has_text_criteria() and form.search_in == "synopsis"
        ):
            return {}
        metrics = get_registry()
        metrics.inc("synopsis.queries")
        criteria_scores: List[Dict[str, float]] = []
        reasons: Dict[str, List[str]] = {}
        tracer = get_tracer()

        def add(scores: Dict[str, float], label: str) -> None:
            criteria_scores.append(scores)
            for deal_id in scores:
                reasons.setdefault(deal_id, []).append(label)

        with tracer.span("synopsis.sql"):
            if form.tower.strip():
                metrics.inc("synopsis.criterion.tower")
                add(self._tower_scores(form.tower), f"tower={form.tower}")
            if form.industry.strip():
                metrics.inc("synopsis.criterion.industry")
                add(self._field_scores("industry", form.industry),
                    f"industry={form.industry}")
            if form.consultant.strip():
                metrics.inc("synopsis.criterion.consultant")
                add(self._field_scores("consultant", form.consultant),
                    f"consultant={form.consultant}")
            if form.geography.strip():
                metrics.inc("synopsis.criterion.geography")
                add(self._field_scores("geography", form.geography),
                    f"geography={form.geography}")
            if form.person_name.strip() or form.organization.strip() or \
                    form.role.strip():
                metrics.inc("synopsis.criterion.people")
                add(self._people_scores(form), "people")
            if form.has_text_criteria() and form.search_in == "synopsis":
                metrics.inc("synopsis.criterion.text")
                add(self._synopsis_text_scores(form), "synopsis-text")

        if not criteria_scores:
            return {}
        # Conjunctive combination: intersect, then average sub-scores.
        matched = set(criteria_scores[0])
        for scores in criteria_scores[1:]:
            matched &= set(scores)
        results: Dict[str, SynopsisMatch] = {}
        for deal_id in matched:
            mean = sum(s[deal_id] for s in criteria_scores) / len(
                criteria_scores
            )
            results[deal_id] = SynopsisMatch(
                deal_id, mean, reasons.get(deal_id, [])
            )
        return results

    # -- criterion scorers ------------------------------------------------

    def _tower_scores(self, tower: str) -> Dict[str, float]:
        """Deals whose extracted scope covers the service (or children).

        Score decays with the service's significance rank in the deal —
        the Figure 5 ordering — so a primarily-CSC deal outranks one
        where CSC is a scope afterthought.
        """
        names = []
        canonical = self.taxonomy.canonical(tower)
        if canonical is not None:
            names = [node.name for node in self.taxonomy.expand(canonical)]
        else:
            names = [tower]  # unknown concept: exact text match attempt
        placeholders = ", ".join("?" for _ in names)
        rows = self.organized.db.execute(
            f"SELECT deal_id, MIN(rank) AS best_rank FROM deal_scopes "
            f"WHERE canonical IN ({placeholders}) GROUP BY deal_id",
            names,
        ).to_dicts()
        return {
            row["deal_id"]: 1.0 / (1.0 + row["best_rank"])
            for row in rows
        }

    def _field_scores(self, column: str, needle: str) -> Dict[str, float]:
        rows = self.organized.db.execute(
            f"SELECT deal_id FROM deals WHERE LOWER({column}) LIKE ?",
            [f"%{needle.strip().lower()}%"],
        ).to_dicts()
        return {row["deal_id"]: 1.0 for row in rows}

    def _people_scores(self, form: FormQuery) -> Dict[str, float]:
        conditions = []
        params: List[str] = []
        if form.person_name.strip():
            conditions.append("LOWER(name) LIKE ?")
            params.append(f"%{form.person_name.strip().lower()}%")
        if form.organization.strip():
            conditions.append("LOWER(organization) LIKE ?")
            params.append(f"%{form.organization.strip().lower()}%")
        if form.role.strip():
            conditions.append("role = ?")
            params.append(normalize_role(form.role))
        where = " AND ".join(conditions)
        rows = self.organized.db.execute(
            f"SELECT deal_id, MAX(mention_count) AS mentions FROM contacts "
            f"WHERE {where} GROUP BY deal_id",
            params,
        ).to_dicts()
        return {
            row["deal_id"]: min(1.0, 0.5 + row["mentions"] / 10.0)
            for row in rows
        }

    def _synopsis_text_scores(self, form: FormQuery) -> Dict[str, float]:
        """Text criteria against extracted synopsis text (not documents).

        Searches the technology-solution terms and win-strategy texts —
        the paper's "issue it as a keyword search against ... only the
        technology solution overview section" option (Meta-query 4).
        """
        needles = []
        if form.exact_phrase.strip():
            needles.append(form.exact_phrase.strip().lower())
        needles.extend(w.lower() for w in form.all_words.split())
        matched: Optional[set] = None
        for needle in needles:
            rows = self.organized.db.execute(
                "SELECT deal_id FROM technologies WHERE LOWER(term) LIKE ?",
                [f"%{needle}%"],
            ).to_dicts()
            rows += self.organized.db.execute(
                "SELECT deal_id FROM win_strategies WHERE LOWER(text) "
                "LIKE ?",
                [f"%{needle}%"],
            ).to_dicts()
            deal_ids = {row["deal_id"] for row in rows}
            matched = deal_ids if matched is None else matched & deal_ids
        return {deal_id: 1.0 for deal_id in (matched or set())}
