"""Information Analysis: the offline annotate-and-aggregate stage.

Orchestrates paper Figure 2's middle column: parse every workbook
document into a CAS, run the composite annotator pipeline, and feed the
collection-processing consumers that produce per-deal structured
results — contacts (Fig. 3), scopes (Section 3.4), overview context,
win strategies, technologies and client references.  The results are
then handed to :class:`~repro.core.organized.OrganizedInformation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.annotators.base import register_eil_types
from repro.annotators.classifier import NaiveBayesClassifier
from repro.annotators.composite import build_eil_pipeline
from repro.annotators.scope import ScopeAggregator, ScopeEntry
from repro.annotators.social import ContactRecord, ContactRollup
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.docmodel.parsers import DocumentParser, register_structure_types
from repro.docmodel.repository import WorkbookCollection
from repro.intranet.directory import PersonnelDirectory
from repro.obs import get_registry, get_tracer
from repro.uima.cas import Cas
from repro.uima.cpe import CasConsumer, CollectionProcessingEngine
from repro.uima.typesystem import TypeSystem

__all__ = ["AnalysisResults", "FeatureRollup", "InformationAnalysis"]


class FeatureRollup(CasConsumer):
    """Generic per-deal collector of one annotation type's feature values.

    Collects de-duplicated feature tuples per deal, preserving first-seen
    order — used for context fields, win strategies, technologies and
    client references.
    """

    def __init__(self, name: str, type_name: str, features: Tuple[str, ...]):
        self.name = name
        self.type_name = type_name
        self.features = features
        self._by_deal: Dict[str, List[Tuple[str, ...]]] = {}
        self._seen: Set[Tuple[str, Tuple[str, ...]]] = set()

    def process_cas(self, cas: Cas) -> None:
        deal_id = str(cas.metadata.get("deal_id", ""))
        if not deal_id or self.type_name not in cas.type_system:
            return
        for annotation in cas.select(self.type_name):
            values = tuple(
                str(annotation.get(feature, "")) for feature in self.features
            )
            key = (deal_id, values)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._by_deal.setdefault(deal_id, []).append(values)

    def collection_process_complete(self) -> Dict[str, List[Tuple[str, ...]]]:
        return self._by_deal


@dataclass
class AnalysisResults:
    """Everything the offline analysis produced, keyed by deal id."""

    contacts: Dict[str, List[ContactRecord]] = field(default_factory=dict)
    scopes: Dict[str, List[ScopeEntry]] = field(default_factory=dict)
    context: Dict[str, Dict[str, str]] = field(default_factory=dict)
    strategies: Dict[str, List[str]] = field(default_factory=dict)
    technologies: Dict[str, List[Tuple[str, str]]] = field(
        default_factory=dict
    )
    references: Dict[str, List[str]] = field(default_factory=dict)
    documents_processed: int = 0
    documents_failed: int = 0


class InformationAnalysis:
    """Runs the full offline analysis over a workbook collection."""

    def __init__(
        self,
        taxonomy: ServiceTaxonomy,
        directory: Optional[PersonnelDirectory] = None,
        scope_min_weight: float = 4.0,
        strategy_classifier: Optional[NaiveBayesClassifier] = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.directory = directory
        self.scope_min_weight = scope_min_weight
        self.type_system = TypeSystem()
        register_structure_types(self.type_system)
        register_eil_types(self.type_system)
        self.parser = DocumentParser(self.type_system)
        self.pipeline = build_eil_pipeline(taxonomy, strategy_classifier)
        self.pipeline.initialize_types(self.type_system)

    def analyze(
        self, collection: WorkbookCollection, workers: int = 1
    ) -> AnalysisResults:
        """Parse + annotate + aggregate one collection.

        Args:
            collection: The workbooks to analyze.
            workers: Thread-pool width for the parse+annotate stage.
                The default (1) runs strictly serially; any value
                produces identical :class:`AnalysisResults` because the
                CPE merges worker output in stable document order
                before the collection-level consumers run.
        """
        contact_rollup = ContactRollup(self.directory)
        scope_aggregator = ScopeAggregator(self.scope_min_weight)
        context_rollup = FeatureRollup(
            "context", "eil.ContextField", ("name", "value")
        )
        strategy_rollup = FeatureRollup(
            "strategies", "eil.WinStrategy", ("text",)
        )
        technology_rollup = FeatureRollup(
            "technologies", "eil.Technology", ("term", "tower")
        )
        reference_rollup = FeatureRollup(
            "references", "eil.ClientReference", ("text",)
        )
        cpe = CollectionProcessingEngine(
            self.pipeline,
            [
                contact_rollup,
                scope_aggregator,
                context_rollup,
                strategy_rollup,
                technology_rollup,
                reference_rollup,
            ],
        )
        with get_tracer().span("offline.analyze", workers=workers) as span:
            report = cpe.run(
                collection.all_documents(),
                prepare=self._parse_one,
                workers=workers,
            )
        metrics = get_registry()
        metrics.inc("analysis.documents_processed",
                    report.documents_processed)
        metrics.inc("analysis.documents_failed", report.documents_failed)
        span.set_attribute("documents", report.documents_processed)
        results = AnalysisResults(
            contacts=report.consumer_results["contact-rollup"],
            scopes=report.consumer_results["scope-aggregator"],
            context={
                deal_id: {name: value for name, value in pairs}
                for deal_id, pairs in report.consumer_results[
                    "context"
                ].items()
            },
            strategies={
                deal_id: [text for (text,) in rows]
                for deal_id, rows in report.consumer_results[
                    "strategies"
                ].items()
            },
            technologies={
                deal_id: [(term, tower) for term, tower in rows]
                for deal_id, rows in report.consumer_results[
                    "technologies"
                ].items()
            },
            references={
                deal_id: [text for (text,) in rows]
                for deal_id, rows in report.consumer_results[
                    "references"
                ].items()
            },
            documents_processed=report.documents_processed,
            documents_failed=report.documents_failed,
        )
        return results

    def _parse_one(self, document) -> Cas:
        """Parse one document to a CAS, timing the parse stage.

        Runs inside the CPE's worker pool when ``workers > 1``, so the
        parse stage fans out together with annotation.
        """
        with get_registry().timer("analysis.parse_seconds"):
            return self.parser.to_cas(document)
