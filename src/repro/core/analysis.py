"""Information Analysis: the offline annotate-and-aggregate stage.

Orchestrates paper Figure 2's middle column: parse every workbook
document into a CAS, run the composite annotator pipeline, and feed the
collection-processing consumers that produce per-deal structured
results — contacts (Fig. 3), scopes (Section 3.4), overview context,
win strategies, technologies and client references.  The results are
then handed to :class:`~repro.core.organized.OrganizedInformation`.

Fault tolerance: workbook reads (the ``repository`` fault point) are
retried and a persistently unreadable workbook is *quarantined* — its
documents are skipped, recorded in ``AnalysisResults.quarantined``, and
the build continues.  Each per-document parse passes a keyed
``analysis`` fault-point check (key = doc id), so injected per-document
faults are deterministic at any worker count and land in the CPE's
quarantine rather than aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, List, Optional, Set, Tuple

from repro.annotators.base import register_eil_types
from repro.annotators.classifier import NaiveBayesClassifier
from repro.annotators.composite import build_eil_pipeline
from repro.annotators.scope import ScopeAggregator, ScopeEntry
from repro.annotators.social import ContactRecord, ContactRollup
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.docmodel.parsers import DocumentParser, register_structure_types
from repro.docmodel.repository import WorkbookCollection
from repro.errors import TransientError
from repro.faults import RetryPolicy, get_injector
from repro.intranet.directory import PersonnelDirectory
from repro.obs import get_registry, get_tracer
from repro.uima.cas import Cas
from repro.uima.cpe import CasConsumer, CollectionProcessingEngine
from repro.uima.typesystem import TypeSystem

__all__ = ["AnalysisResults", "FeatureRollup", "InformationAnalysis"]


class FeatureRollup(CasConsumer):
    """Generic per-deal collector of one annotation type's feature values.

    Collects de-duplicated feature tuples per deal, preserving first-seen
    order — used for context fields, win strategies, technologies and
    client references.
    """

    def __init__(self, name: str, type_name: str, features: Tuple[str, ...]):
        self.name = name
        self.type_name = type_name
        self.features = features
        self._by_deal: Dict[str, List[Tuple[str, ...]]] = {}
        self._seen: Set[Tuple[str, Tuple[str, ...]]] = set()

    def process_cas(self, cas: Cas) -> None:
        deal_id = str(cas.metadata.get("deal_id", ""))
        if not deal_id or self.type_name not in cas.type_system:
            return
        for annotation in cas.select(self.type_name):
            values = tuple(
                str(annotation.get(feature, "")) for feature in self.features
            )
            key = (deal_id, values)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._by_deal.setdefault(deal_id, []).append(values)

    def collection_process_complete(self) -> Dict[str, List[Tuple[str, ...]]]:
        return self._by_deal


@dataclass
class AnalysisResults:
    """Everything the offline analysis produced, keyed by deal id."""

    contacts: Dict[str, List[ContactRecord]] = field(default_factory=dict)
    scopes: Dict[str, List[ScopeEntry]] = field(default_factory=dict)
    context: Dict[str, Dict[str, str]] = field(default_factory=dict)
    strategies: Dict[str, List[str]] = field(default_factory=dict)
    technologies: Dict[str, List[Tuple[str, str]]] = field(
        default_factory=dict
    )
    references: Dict[str, List[str]] = field(default_factory=dict)
    documents_processed: int = 0
    documents_failed: int = 0
    documents_quarantined: int = 0
    quarantined: List[str] = field(default_factory=list)


class InformationAnalysis:
    """Runs the full offline analysis over a workbook collection."""

    def __init__(
        self,
        taxonomy: ServiceTaxonomy,
        directory: Optional[PersonnelDirectory] = None,
        scope_min_weight: float = 4.0,
        strategy_classifier: Optional[NaiveBayesClassifier] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
        max_failure_ratio: float = 1.0,
    ) -> None:
        self.taxonomy = taxonomy
        self.directory = directory
        self.scope_min_weight = scope_min_weight
        self.retry = retry or RetryPolicy()
        self.deadline_seconds = deadline_seconds
        self.max_failure_ratio = max_failure_ratio
        self.type_system = TypeSystem()
        register_structure_types(self.type_system)
        register_eil_types(self.type_system)
        self.parser = DocumentParser(self.type_system)
        self.pipeline = build_eil_pipeline(taxonomy, strategy_classifier)
        self.pipeline.initialize_types(self.type_system)

    def analyze(
        self,
        collection: WorkbookCollection,
        workers: int = 1,
        executor: Optional[str] = None,
    ) -> AnalysisResults:
        """Parse + annotate + aggregate one collection.

        Args:
            collection: The workbooks to analyze.
            workers: Worker count for the parse+annotate stage.  The
                default (1) runs strictly serially; any value produces
                identical :class:`AnalysisResults` because the CPE
                merges worker output in stable document order before
                the collection-level consumers run.
            executor: Execution mode for the parse+annotate stage —
                ``"serial"``, ``"threads"`` (the CPE default) or
                ``"processes"`` (true multi-core: the corpus is sharded
                by deal across worker processes).  Results are
                identical under every mode.
        """
        contact_rollup = ContactRollup(self.directory)
        scope_aggregator = ScopeAggregator(self.scope_min_weight)
        context_rollup = FeatureRollup(
            "context", "eil.ContextField", ("name", "value")
        )
        strategy_rollup = FeatureRollup(
            "strategies", "eil.WinStrategy", ("text",)
        )
        technology_rollup = FeatureRollup(
            "technologies", "eil.Technology", ("term", "tower")
        )
        reference_rollup = FeatureRollup(
            "references", "eil.ClientReference", ("text",)
        )
        cpe = CollectionProcessingEngine(
            self.pipeline,
            [
                contact_rollup,
                scope_aggregator,
                context_rollup,
                strategy_rollup,
                technology_rollup,
                reference_rollup,
            ],
            retry=self.retry,
            deadline_seconds=self.deadline_seconds,
            max_failure_ratio=self.max_failure_ratio,
        )
        with get_tracer().span("offline.analyze", workers=workers) as span:
            items, skipped_docs, workbook_quarantine = (
                self._collect_documents(collection)
            )
            report = cpe.run(
                items,
                prepare=self._parse_one,
                workers=workers,
                executor=executor,
                # Shard by deal: a deal's documents travel to one
                # worker process together, mirroring the per-deal
                # repository layout the paper crawls.
                shard_key=attrgetter("deal_id"),
            )
        metrics = get_registry()
        metrics.inc("analysis.documents_processed",
                    report.documents_processed)
        metrics.inc("analysis.documents_failed", report.documents_failed)
        metrics.inc("analysis.documents_quarantined",
                    report.documents_quarantined + skipped_docs)
        span.set_attribute("documents", report.documents_processed)
        results = AnalysisResults(
            contacts=report.consumer_results["contact-rollup"],
            scopes=report.consumer_results["scope-aggregator"],
            context={
                deal_id: {name: value for name, value in pairs}
                for deal_id, pairs in report.consumer_results[
                    "context"
                ].items()
            },
            strategies={
                deal_id: [text for (text,) in rows]
                for deal_id, rows in report.consumer_results[
                    "strategies"
                ].items()
            },
            technologies={
                deal_id: [(term, tower) for term, tower in rows]
                for deal_id, rows in report.consumer_results[
                    "technologies"
                ].items()
            },
            references={
                deal_id: [text for (text,) in rows]
                for deal_id, rows in report.consumer_results[
                    "references"
                ].items()
            },
            documents_processed=report.documents_processed,
            documents_failed=report.documents_failed,
            documents_quarantined=(
                report.documents_quarantined + skipped_docs
            ),
            quarantined=workbook_quarantine + report.quarantined,
        )
        return results

    def _collect_documents(self, collection: WorkbookCollection):
        """Gather documents workbook by workbook, quarantining outages.

        Returns ``(documents, skipped_count, quarantine_lines)``.  Each
        workbook read is retried under the analysis retry policy; a
        workbook that stays unreadable contributes one quarantine line
        and its documents are skipped, instead of aborting the build.
        """
        documents: List = []
        quarantine: List[str] = []
        skipped = 0
        for workbook in collection:
            try:
                docs = self.retry.call(workbook.documents)
            except TransientError as exc:
                skipped += len(workbook)
                quarantine.append(
                    f"workbook {workbook.name} (deal {workbook.deal_id}): "
                    f"{type(exc).__name__}: {exc} "
                    f"({len(workbook)} documents skipped)"
                )
                get_registry().inc("analysis.workbooks_quarantined")
                continue
            documents.extend(docs)
        return documents, skipped, quarantine

    def _parse_one(self, document) -> Cas:
        """Parse one document to a CAS, timing the parse stage.

        Runs inside the CPE's worker pool when ``workers > 1``, so the
        parse stage fans out together with annotation.  The keyed
        ``analysis`` fault point fires here: decisions hash on the doc
        id, never on worker scheduling, so the quarantined set — and
        therefore every surviving document's results — is identical at
        any worker count (the PR 2 determinism invariant, preserved
        under injection).
        """
        get_injector().check(
            "analysis", key=getattr(document, "doc_id", None)
        )
        with get_registry().timer("analysis.parse_seconds"):
            return self.parser.to_cas(document)
