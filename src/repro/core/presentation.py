"""Text renderers for EIL results (the Lotus Notes GUI substitute).

Renders the two views the paper's figures show: the ranked deal list
with tower ordering (Figure 5) and the per-deal synopsis tabs
(Figure 6), plus the activity-then-documents result layout (Figure 9).
Plain text keeps the reproduction front-end-agnostic.
"""

from __future__ import annotations

from typing import List

from repro.core.context import DealSynopsis
from repro.core.search import EilResults

__all__ = ["render_deal_list", "render_synopsis", "render_results"]


def render_deal_list(synopses: List[DealSynopsis]) -> str:
    """The Figure 5 view: each deal with its ordered towers."""
    lines: List[str] = []
    for synopsis in synopses:
        lines.append(synopsis.name)
        towers = ", ".join(synopsis.towers) or "(no extracted scope)"
        extras = [
            value
            for key in ("Out Sourcing Consultant", "Industry",
                        "Total Contract Value")
            if (value := synopsis.overview.get(key, ""))
        ]
        lines.append(f"  {towers}; " + "; ".join(extras))
    return "\n".join(lines)


def render_synopsis(synopsis: DealSynopsis) -> str:
    """The Figure 6 view: the synopsis tabs of one deal."""
    lines = [f"Synopsis for {synopsis.name}", "=" * 40, "[Overview]"]
    for key, value in synopsis.overview.items():
        lines.append(f"  {key}: {value}")
    lines.append(f"  Towers: {', '.join(synopsis.towers)}")
    lines.append("[People]")
    for category in sorted(synopsis.people):
        lines.append(f"  {category}:")
        for contact in synopsis.people[category]:
            details = ", ".join(
                part
                for part in (contact.role, contact.email, contact.phone,
                             contact.organization)
                if part
            )
            status = "" if contact.active else " (no longer active)"
            lines.append(f"    {contact.name} ({details}){status}")
    lines.append("[Win Strategies]")
    for strategy in synopsis.win_strategies:
        lines.append(f"  - {strategy}")
    lines.append("[Client References]")
    for reference in synopsis.client_references:
        lines.append(f"  - {reference}")
    lines.append("[Technology Solutions]")
    for solution in synopsis.technology_solutions:
        tower = f" ({solution['tower']})" if solution.get("tower") else ""
        lines.append(f"  - {solution['term']}{tower}")
    return "\n".join(lines)


_DEGRADED_BANNERS = {
    "no-synopsis": (
        "[degraded: synopsis store unavailable — keyword-only results, "
        "no business-context ranking]"
    ),
    "no-index": (
        "[degraded: search index unavailable — synopsis matches and "
        "contacts only, no documents]"
    ),
}


def render_results(results: EilResults) -> str:
    """The Figure 9 view: activities first, then each one's documents.

    A degraded result (see the ladder in :mod:`repro.core.search`) is
    rendered with a leading banner naming the missing substrate, and on
    the ``no-index`` rung each activity shows its contact list — the
    synopsis + contact-list fallback the paper prescribes whenever
    documents cannot be shown.
    """
    banner = (
        _DEGRADED_BANNERS.get(
            results.degraded,
            f"[degraded: {results.degraded}]",
        )
        if results.degraded
        else None
    )
    if not results.activities:
        message = "No matching business activities."
        return f"{banner}\n{message}" if banner else message
    best = max(
        (hit.score for activity in results.activities
         for hit in activity.documents),
        default=1.0,
    ) or 1.0
    lines: List[str] = []
    if banner:
        lines.append(banner)
    for activity in results.activities:
        lines.append(
            f"{activity.name}  (relevance {activity.score:.2f}; "
            f"{', '.join(activity.reasons) or 'keyword match'})"
        )
        if activity.documents_withheld:
            lines.append(
                "    [documents withheld: no repository access; "
                "see the synopsis People tab for contacts]"
            )
        if activity.contacts:
            lines.append(
                "    contacts: " + ", ".join(activity.contacts)
            )
        for hit in activity.documents:
            title = hit.document.fields.get("title", hit.doc_id)
            lines.append(f"    {hit.score / best * 100:6.2f}%  {title}")
            if hit.snippet:
                lines.append(f"            {hit.snippet}")
    return "\n".join(lines)
