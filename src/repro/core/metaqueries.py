"""The four meta-queries (paper Section 2) as form-query builders.

Each helper turns a meta-query's parameters into the
:class:`~repro.core.query_analyzer.FormQuery` a sales professional would
compose in the EIL search editor, and documents the multi-step keyword
procedure the paper describes as the baseline for the same need.

The graph query classes live here too: a :class:`GraphQuery` names one
of the entity-graph traversals (:mod:`repro.graph`) the same way a
``FormQuery`` names a form search, and ``EILSystem.graph_query``
executes it.  Where MQ2/MQ3 answer "which deals", the graph classes
answer the *people* questions directly — who, with what roles, on
which deals, with the contact rows as provenance.  See docs/QUERIES.md
for the full cookbook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.query_analyzer import FormQuery

__all__ = [
    "scope_query",
    "worked_with_query",
    "role_capacity_query",
    "service_keyword_query",
    "GraphQuery",
    "GRAPH_QUERY_KINDS",
    "graph_worked_with_query",
    "graph_role_capacity_query",
    "graph_expertise_query",
    "graph_team_overlap_query",
]


def scope_query(service: str) -> FormQuery:
    """Meta-query 1: which engagements have ``service`` in scope?

    EIL: one concept search on the tower criterion.  Keyword baseline:
    search the service name (missing subtype deals), then re-query with
    every subtype name and read the union of the hits (Figure 4).
    """
    return FormQuery(tower=service)


def worked_with_query(person: str, organization: str = "") -> FormQuery:
    """Meta-query 2: who has worked with ``person`` at ``organization``?

    EIL: one people search over the extracted contact lists; the People
    tab of each returned deal lists every colleague with roles and
    contact details.  Keyword baseline: iterative queries narrowing from
    the person's name to a deal name to the role (Figure 7's three-step
    episode).
    """
    return FormQuery(person_name=person, organization=organization)


def role_capacity_query(role: str) -> FormQuery:
    """Meta-query 3: who has worked in the capacity of ``role``?

    EIL: one role search over the contact lists.  Keyword baseline: the
    role term matches every document whose *form schema* contains the
    field name — mostly empty fields (the paper's 149-document episode).
    """
    return FormQuery(role=role)


def service_keyword_query(
    service: str, keyword: str, in_synopsis: bool = False
) -> FormQuery:
    """Meta-query 4: who worked on ``service`` involving ``keyword``?

    EIL: the tower concept scopes the keyword search to relevant
    activities (Figure 8).  ``in_synopsis=True`` searches only the
    extracted technology-solution text instead of the whole workbook —
    the paper's "first preference".  Keyword baseline: multi-step
    conjunctive queries plus manual deal identification.
    """
    return FormQuery(
        tower=service,
        exact_phrase=keyword,
        search_in="synopsis" if in_synopsis else "ewb",
    )


#: The graph query classes ``EILSystem.graph_query`` dispatches on.
GRAPH_QUERY_KINDS = (
    "worked-with",
    "role-capacity",
    "expertise",
    "team-overlap",
)


@dataclass(frozen=True)
class GraphQuery:
    """One entity-graph query: a traversal class plus its subject.

    Attributes:
        kind: One of :data:`GRAPH_QUERY_KINDS`.
        subject: The person name/email, canonical role, or
            technology/tower term the traversal starts from.
        limit: Optional cap on returned people/colleagues.
    """

    kind: str
    subject: str
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in GRAPH_QUERY_KINDS:
            raise ValueError(
                f"unknown graph query kind {self.kind!r}; expected one "
                f"of {', '.join(GRAPH_QUERY_KINDS)}"
            )

    def describe(self) -> str:
        """Human-readable form for logs and the CLI."""
        return f"graph:{self.kind}({self.subject!r})"


def graph_worked_with_query(
    person: str, limit: Optional[int] = None
) -> GraphQuery:
    """Meta-query 2, graph form: who has worked with ``person``?

    Where :func:`worked_with_query` returns the *deals* whose contact
    lists mention the person (the user then opens each People tab),
    the graph form returns the colleagues directly — merged across
    deals, with roles and the contact rows as provenance.  Figure 7's
    three-step keyword episode becomes one traversal.
    """
    return GraphQuery("worked-with", person, limit)


def graph_role_capacity_query(
    role: str, limit: Optional[int] = None
) -> GraphQuery:
    """Meta-query 3, graph form: who has worked in the capacity of
    ``role``, with the supporting deals — only filled roles match,
    never the empty form fields that trap the keyword baseline."""
    return GraphQuery("role-capacity", role, limit)


def graph_expertise_query(
    topic: str, limit: Optional[int] = None
) -> GraphQuery:
    """Expertise lookup: people on deals that used a technology or had
    a tower in scope whose name matches ``topic``."""
    return GraphQuery("expertise", topic, limit)


def graph_team_overlap_query(
    person: str, limit: Optional[int] = None
) -> GraphQuery:
    """Team-overlap ranking: ``person``'s colleagues ordered by the
    Jaccard overlap of their deal histories."""
    return GraphQuery("team-overlap", person, limit)
