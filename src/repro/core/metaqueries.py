"""The four meta-queries (paper Section 2) as form-query builders.

Each helper turns a meta-query's parameters into the
:class:`~repro.core.query_analyzer.FormQuery` a sales professional would
compose in the EIL search editor, and documents the multi-step keyword
procedure the paper describes as the baseline for the same need.
"""

from __future__ import annotations

from repro.core.query_analyzer import FormQuery

__all__ = [
    "scope_query",
    "worked_with_query",
    "role_capacity_query",
    "service_keyword_query",
]


def scope_query(service: str) -> FormQuery:
    """Meta-query 1: which engagements have ``service`` in scope?

    EIL: one concept search on the tower criterion.  Keyword baseline:
    search the service name (missing subtype deals), then re-query with
    every subtype name and read the union of the hits (Figure 4).
    """
    return FormQuery(tower=service)


def worked_with_query(person: str, organization: str = "") -> FormQuery:
    """Meta-query 2: who has worked with ``person`` at ``organization``?

    EIL: one people search over the extracted contact lists; the People
    tab of each returned deal lists every colleague with roles and
    contact details.  Keyword baseline: iterative queries narrowing from
    the person's name to a deal name to the role (Figure 7's three-step
    episode).
    """
    return FormQuery(person_name=person, organization=organization)


def role_capacity_query(role: str) -> FormQuery:
    """Meta-query 3: who has worked in the capacity of ``role``?

    EIL: one role search over the contact lists.  Keyword baseline: the
    role term matches every document whose *form schema* contains the
    field name — mostly empty fields (the paper's 149-document episode).
    """
    return FormQuery(role=role)


def service_keyword_query(
    service: str, keyword: str, in_synopsis: bool = False
) -> FormQuery:
    """Meta-query 4: who worked on ``service`` involving ``keyword``?

    EIL: the tower concept scopes the keyword search to relevant
    activities (Figure 8).  ``in_synopsis=True`` searches only the
    extracted technology-solution text instead of the whole workbook —
    the paper's "first preference".  Keyword baseline: multi-step
    conjunctive queries plus manual deal identification.
    """
    return FormQuery(
        tower=service,
        exact_phrase=keyword,
        search_in="synopsis" if in_synopsis else "ewb",
    )
