"""The EIL system facade: offline build + online search.

Wires every component of the paper's Figure 2 architecture together:

* offline — :class:`~repro.core.acquisition.DataAcquisition` crawls the
  workbooks into the semantic index;
  :class:`~repro.core.analysis.InformationAnalysis` runs the annotator
  pipeline and CPEs; the results populate
  :class:`~repro.core.organized.OrganizedInformation`.
* online — :class:`~repro.core.search.BusinessActivityDrivenSearch`
  answers form queries;
  :class:`~repro.core.context.SynopsisBuilder` serves the per-deal
  synopsis; plain keyword search over the same index is exposed as the
  paper's OmniFind baseline.

Typical use::

    from repro import CorpusGenerator, EILSystem, FormQuery, User

    corpus = CorpusGenerator().generate()
    eil = EILSystem.build(corpus)
    results = eil.search(FormQuery(tower="End User Services"),
                         user=User("alice", {"sales"}))
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.annotators.classifier import NaiveBayesClassifier
from repro.core.acquisition import DataAcquisition
from repro.core.analysis import AnalysisResults, InformationAnalysis
from repro.core.context import DealSynopsis, SynopsisBuilder
from repro.core.organized import OrganizedInformation
from repro.core.query_analyzer import FormQuery
from repro.core.search import BusinessActivityDrivenSearch, EilResults
from repro.corpus.generator import Corpus
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.db.persistence import dump_database, load_database
from repro.core.metaqueries import GraphQuery
from repro.docmodel.repository import WorkbookCollection
from repro.errors import StorageError, TransientError
from repro.faults import RetryPolicy
from repro.graph import EntityGraph, index_deal_from_organized
from repro.intranet.directory import PersonnelDirectory
from repro.obs import get_registry, get_tracer
from repro.search.document import SearchHit
from repro.search.engine import SearchEngine
from repro.search.siapi import SiapiService
from repro.security.access import AccessController, User
from repro.storage.atomic import atomic_write_text

__all__ = ["EILSystem", "BuildReport"]

_DEFAULT_USER = User("analyst", frozenset({"sales"}))


def _default_workers() -> int:
    """Offline worker count when unspecified: ``REPRO_WORKERS`` or 1.

    The environment override exists so an entire test or CI run can be
    re-executed under a parallel build (the determinism invariant makes
    that a pure execution-mode change) without touching every call
    site.
    """
    return int(os.environ.get("REPRO_WORKERS", "1"))


def _default_executor() -> str:
    """Offline executor when unspecified: ``REPRO_EXECUTOR`` or threads."""
    return os.environ.get("REPRO_EXECUTOR", "threads")


def _default_shards() -> int:
    """Engine shard count when unspecified: ``REPRO_SHARDS`` or 1.

    Like ``REPRO_WORKERS``, the override exists so an entire test or CI
    run can be re-executed against the sharded engine (rankings are
    bit-identical at any shard count) without touching call sites.
    """
    return int(os.environ.get("REPRO_SHARDS", "1"))


@dataclass
class BuildReport:
    """What the offline pipeline produced.

    Attributes:
        documents_indexed: Documents in the semantic index.
        documents_analyzed: Documents the annotation pipeline processed.
        documents_failed: Documents whose analysis raised a hard error.
        deals_populated: Deals with a stored synopsis.
        documents_quarantined: Documents set aside by the fault layer
            (transient failures, deadline overruns, unreadable
            workbooks); the per-document reasons are in
            ``EILSystem.analysis_results.quarantined``.
    """

    documents_indexed: int
    documents_analyzed: int
    documents_failed: int
    deals_populated: int
    documents_quarantined: int = 0


class EILSystem:
    """One deployed EIL instance over a workbook collection."""

    #: File names / identity of the on-disk layout written by
    #: :meth:`save_index` and read back by :meth:`load`.
    EIL_MANIFEST = "eil-manifest.json"
    _EIL_FORMAT = "repro-eil-index"
    _EIL_VERSION = 1
    _INDEX_SUBDIR = "index"
    _SYNOPSIS_FILE = "synopsis.json"
    _GRAPH_FILE = "graph.json"

    def __init__(
        self,
        taxonomy: ServiceTaxonomy,
        collection: WorkbookCollection,
        directory: Optional[PersonnelDirectory] = None,
        access: Optional[AccessController] = None,
        scope_min_weight: float = 4.0,
        strategy_classifier: Optional[NaiveBayesClassifier] = None,
        field_boosts: Optional[Dict[str, float]] = None,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        query_cache_size: int = 128,
        engine_cache_size: int = 256,
        deadline_seconds: Optional[float] = None,
        max_failure_ratio: float = 1.0,
        retry: Optional[RetryPolicy] = None,
        shards: Optional[int] = None,
    ) -> None:
        workers = _default_workers() if workers is None else workers
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        shards = _default_shards() if shards is None else shards
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.taxonomy = taxonomy
        self.collection = collection
        self.directory = directory
        self.access = access or AccessController()
        self.workers = workers
        self.executor = executor or _default_executor()
        self.shards = shards
        self._query_cache_size = query_cache_size
        if shards > 1:
            # Deal-keyed partitions, bit-identical rankings (the shard
            # engines score with corpus-global statistics).
            from repro.serving.sharding import ShardedSearchEngine

            self.engine = ShardedSearchEngine(
                shards=shards,
                field_boosts=field_boosts or {"title": 2.0},
                cache_size=engine_cache_size,
            )
        else:
            self.engine = SearchEngine(
                field_boosts=field_boosts or {"title": 2.0},
                cache_size=engine_cache_size,
            )
        self.siapi = SiapiService(self.engine)
        self.organized = OrganizedInformation()
        self.synopsis_builder = SynopsisBuilder(self.organized)
        # The entity graph (repro.graph): materialized from the same
        # rows the populate step stores, kept in lockstep by
        # add_workbook / remove_deal under its own RW lock + epoch.
        self.graph = EntityGraph()
        self._retry = retry or RetryPolicy()
        self._analysis = InformationAnalysis(
            taxonomy,
            directory,
            scope_min_weight=scope_min_weight,
            strategy_classifier=strategy_classifier,
            retry=self._retry,
            deadline_seconds=deadline_seconds,
            max_failure_ratio=max_failure_ratio,
        )
        self._repositories: Dict[str, str] = {
            workbook.deal_id: workbook.name for workbook in collection
        }
        self._search: Optional[BusinessActivityDrivenSearch] = None
        self.build_report: Optional[BuildReport] = None
        self.analysis_results: Optional[AnalysisResults] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        corpus: Corpus,
        access: Optional[AccessController] = None,
        scope_min_weight: float = 4.0,
        strategy_classifier: Optional[NaiveBayesClassifier] = None,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        max_failure_ratio: float = 1.0,
        retry: Optional[RetryPolicy] = None,
        shards: Optional[int] = None,
    ) -> "EILSystem":
        """Build a ready-to-query system from a generated corpus.

        Args:
            workers: Worker count for the offline parse+annotate stage;
                the default (1, or ``REPRO_WORKERS``) runs serially.
                Results are identical at any width (stable-order
                merge).
            executor: Offline execution mode — ``serial``, ``threads``
                (default, or ``REPRO_EXECUTOR``) or ``processes`` (true
                multi-core, sharded by deal).  Results are identical
                under every mode.
            deadline_seconds: Per-document analysis budget; overruns
                are quarantined (None disables the check).
            max_failure_ratio: Abort the build when more than this
                fraction of documents failed or were quarantined.
            retry: Retry policy for transient failures across both
                pipelines (defaults to three quick attempts).
            shards: Online index partitions (default 1, or
                ``REPRO_SHARDS``); > 1 serves queries by deal-keyed
                fan-out with rankings bit-identical to the unsharded
                engine.
        """
        system = cls(
            taxonomy=corpus.taxonomy,
            collection=corpus.collection,
            directory=corpus.directory,
            access=access,
            scope_min_weight=scope_min_weight,
            strategy_classifier=strategy_classifier,
            workers=workers,
            executor=executor,
            deadline_seconds=deadline_seconds,
            max_failure_ratio=max_failure_ratio,
            retry=retry,
            shards=shards,
        )
        system.run_offline_pipeline()
        return system

    def run_offline_pipeline(
        self,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> BuildReport:
        """Crawl, analyze and populate (Figure 2's offline half).

        Args:
            workers: Overrides the system's configured worker count for
                this run only.
            executor: Overrides the system's configured execution mode
                (``serial`` / ``threads`` / ``processes``) for this run
                only.
        """
        count = self.workers if workers is None else workers
        mode = self.executor if executor is None else executor
        tracer = get_tracer()
        with tracer.span("offline.pipeline", workers=count,
                         executor=mode):
            acquisition = DataAcquisition(self.engine, retry=self._retry)
            crawl_report = acquisition.acquire(self.collection)

            results = self._analysis.analyze(self.collection,
                                             workers=count,
                                             executor=mode)
            self.analysis_results = results

            deal_ids = (
                set(results.context)
                | set(results.scopes)
                | set(results.contacts)
            )
            with tracer.span("offline.populate", deals=len(deal_ids)):
                for deal_id in sorted(deal_ids):
                    self.organized.store_deal_context(
                        deal_id, results.context.get(deal_id, {})
                    )
                    self.organized.store_scopes(
                        deal_id, results.scopes.get(deal_id, [])
                    )
                    self.organized.store_contacts(
                        deal_id, results.contacts.get(deal_id, [])
                    )
                    self.organized.store_win_strategies(
                        deal_id, results.strategies.get(deal_id, [])
                    )
                    self.organized.store_technologies(
                        deal_id, results.technologies.get(deal_id, [])
                    )
                    self.organized.store_client_references(
                        deal_id, results.references.get(deal_id, [])
                    )

            with tracer.span("offline.graph", deals=len(deal_ids)):
                for deal_id in sorted(deal_ids):
                    self._index_deal_graph(deal_id)

            self._search = BusinessActivityDrivenSearch(
                organized=self.organized,
                taxonomy=self.taxonomy,
                siapi=self.siapi,
                access=self.access,
                repositories=self._repositories,
                cache_size=self._query_cache_size,
                retry=self._retry,
            )
        self.build_report = BuildReport(
            documents_indexed=crawl_report.indexed,
            documents_analyzed=results.documents_processed,
            documents_failed=results.documents_failed,
            deals_populated=len(deal_ids),
            documents_quarantined=results.documents_quarantined,
        )
        get_registry().set_gauge("eil.deals_populated", len(deal_ids))
        get_registry().set_gauge(
            "eil.documents_quarantined", results.documents_quarantined
        )
        return self.build_report

    # -- persistence -------------------------------------------------------------

    def save_index(self, directory: str) -> Dict[str, object]:
        """Persist the built system under ``directory`` for cold start.

        Layout::

            directory/
              eil-manifest.json   # format + version + shards + build report
              index/              # segment store (MANIFEST.json or, when
                                  # sharded, SHARDS.json + shard-NN/)
              synopsis.json       # organized-information database snapshot
              graph.json          # entity graph (canonical, checksummed)

        Every file lands atomically (temp + fsync + rename), so a crash
        mid-save leaves any previous snapshot loadable.  Returns the
        engine's storage statistics (``segments``, ``bytes_per_doc``,
        ...).
        """
        self._require_search()  # only a built system is worth persisting
        os.makedirs(directory, exist_ok=True)
        with get_tracer().span("persist.save"):
            stats = self.engine.save_index(
                os.path.join(directory, self._INDEX_SUBDIR)
            )
            dump_database(
                self.organized.db,
                os.path.join(directory, self._SYNOPSIS_FILE),
            )
            self.graph.save(os.path.join(directory, self._GRAPH_FILE))
            manifest = {
                "format": self._EIL_FORMAT,
                "version": self._EIL_VERSION,
                "shards": self.shards,
                "graph": self._GRAPH_FILE,
                "repositories": self._repositories,
                "build_report": (
                    asdict(self.build_report)
                    if self.build_report is not None
                    else None
                ),
            }
            atomic_write_text(
                os.path.join(directory, self.EIL_MANIFEST),
                json.dumps(manifest, sort_keys=True, indent=2),
            )
        return stats

    @classmethod
    def load(
        cls,
        directory: str,
        corpus: Corpus,
        access: Optional[AccessController] = None,
        scope_min_weight: float = 4.0,
        strategy_classifier: Optional[NaiveBayesClassifier] = None,
        field_boosts: Optional[Dict[str, float]] = None,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        query_cache_size: int = 128,
        engine_cache_size: int = 256,
        deadline_seconds: Optional[float] = None,
        max_failure_ratio: float = 1.0,
        retry: Optional[RetryPolicy] = None,
        shards: Optional[int] = None,
        verify: bool = True,
    ) -> "EILSystem":
        """Cold-start a ready-to-query system from :meth:`save_index`.

        Skips the offline pipeline entirely: the segment index and the
        organized-information database are read back from disk, so load
        time is independent of analysis cost.  Queries, synopses and
        incremental maintenance (``add_workbook`` / ``remove_deal``)
        behave exactly as on the freshly built system.

        The shard count comes from the saved manifest — the segments
        were partitioned at save time, so ``REPRO_SHARDS`` is
        deliberately ignored here.  Passing an explicit ``shards`` that
        disagrees with the manifest raises
        :class:`~repro.errors.StorageError`.

        Args:
            directory: A directory written by :meth:`save_index`.
            corpus: The corpus the index was built from (supplies the
                taxonomy, workbook collection and personnel directory,
                which are not persisted).
            verify: Verify segment checksums against the manifest while
                loading (disable only for trusted local restarts).
        """
        manifest_path = os.path.join(directory, cls.EIL_MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise StorageError(
                f"cannot read EIL manifest {manifest_path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"invalid EIL manifest {manifest_path}: {exc}"
            ) from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != cls._EIL_FORMAT
        ):
            raise StorageError(
                f"{manifest_path} is not an EIL index manifest"
            )
        if manifest.get("version") != cls._EIL_VERSION:
            raise StorageError(
                f"unsupported EIL index version "
                f"{manifest.get('version')!r} in {manifest_path}"
            )
        saved_shards = int(manifest.get("shards", 1))
        if shards is not None and shards != saved_shards:
            raise StorageError(
                f"index at {directory} was saved with {saved_shards} "
                f"shard(s) but {shards} requested; load with the saved "
                f"count (the partitioning is fixed at save time)"
            )
        system = cls(
            taxonomy=corpus.taxonomy,
            collection=corpus.collection,
            directory=corpus.directory,
            access=access,
            scope_min_weight=scope_min_weight,
            strategy_classifier=strategy_classifier,
            field_boosts=field_boosts,
            workers=workers,
            executor=executor,
            query_cache_size=query_cache_size,
            engine_cache_size=engine_cache_size,
            deadline_seconds=deadline_seconds,
            max_failure_ratio=max_failure_ratio,
            retry=retry,
            shards=saved_shards,
        )
        with get_tracer().span("persist.load"):
            system.engine.load_index(
                os.path.join(directory, cls._INDEX_SUBDIR), verify=verify
            )
            system.organized = OrganizedInformation(
                db=load_database(
                    os.path.join(directory, cls._SYNOPSIS_FILE)
                )
            )
        system.synopsis_builder = SynopsisBuilder(system.organized)
        graph_path = os.path.join(directory, cls._GRAPH_FILE)
        if os.path.exists(graph_path):
            # The persisted graph is canonical: loading it (rather than
            # rebuilding) is what makes cold starts bit-identical.
            system.graph = EntityGraph.load(graph_path, verify=verify)
        else:
            # Pre-graph save_index layouts stay loadable: the graph is
            # derived state, so rebuild it from the synopsis DB.
            from repro.graph import build_graph

            system.graph = build_graph(system.organized)
        system._repositories = dict(manifest.get("repositories") or {})
        system._search = BusinessActivityDrivenSearch(
            organized=system.organized,
            taxonomy=system.taxonomy,
            siapi=system.siapi,
            access=system.access,
            repositories=system._repositories,
            cache_size=query_cache_size,
            retry=system._retry,
        )
        report = manifest.get("build_report")
        if report is not None:
            system.build_report = BuildReport(**report)
            get_registry().set_gauge(
                "eil.deals_populated", system.build_report.deals_populated
            )
            get_registry().set_gauge(
                "eil.documents_quarantined",
                system.build_report.documents_quarantined,
            )
        return system

    # -- online API -------------------------------------------------------------

    def search(
        self,
        form: FormQuery,
        user: User = _DEFAULT_USER,
        limit: Optional[int] = None,
    ) -> EilResults:
        """Business-activity driven search (paper Figure 1)."""
        with get_tracer().span("online.search"):
            return self._require_search().execute(form, user, limit)

    def synopsis(self, deal_id: str, user: User = _DEFAULT_USER) -> DealSynopsis:
        """The deal synopsis view (paper Figure 6)."""
        self.access.require_synopsis_access(user)
        return self.synopsis_builder.build(deal_id)

    def graph_query(self, query: GraphQuery):
        """Run one entity-graph query (people & role search).

        Dispatches a :class:`~repro.core.metaqueries.GraphQuery` to the
        matching :class:`~repro.graph.EntityGraph` traversal.  Graph
        queries read only the in-memory graph (no synopsis-DB or index
        substrate), so they stay answerable on every rung of the
        degradation ladder.
        """
        with get_tracer().span("online.graph_query", kind=query.kind):
            if query.kind == "worked-with":
                return self.graph.worked_with(query.subject, query.limit)
            if query.kind == "role-capacity":
                return self.graph.role_capacity(query.subject,
                                                query.limit)
            if query.kind == "expertise":
                return self.graph.expertise(query.subject, query.limit)
            # GraphQuery.__post_init__ validated the kind already.
            return self.graph.team_overlap(query.subject, query.limit)

    def keyword_search(
        self, query: str, limit: Optional[int] = None
    ) -> List[SearchHit]:
        """The baseline: plain keyword search over the same index.

        This is the "business-agnostic search-box" EIL is evaluated
        against in Section 4 — no activity scoping, no synopsis.
        Transient index failures are retried; the baseline has no
        degradation ladder, so a persistent outage propagates.
        """
        with get_tracer().span("online.keyword_search"):
            return self._retry.call(self.engine.search, query, limit)

    def keyword_count(self, query: str) -> int:
        """Number of documents a keyword query returns (Figure 4)."""
        return self.engine.count(query)

    def deal_ids(self) -> List[str]:
        """All deals with a stored synopsis."""
        return self.organized.deal_ids()

    def _require_search(self) -> BusinessActivityDrivenSearch:
        if self._search is None:
            raise RuntimeError(
                "run_offline_pipeline() must complete before searching"
            )
        return self._search

    def _index_deal_graph(self, deal_id: str) -> None:
        """(Re)materialize one deal's subgraph, surviving db faults.

        Materialization reads the deal's stored rows back out of the
        synopsis database, so its SELECTs cross the ``db`` fault point.
        Transient failures retry under the build's policy; a deal whose
        reads stay failing is skipped (``graph.deals_skipped``) rather
        than aborting the build — the same degrade-don't-crash
        philosophy as document quarantine.  The skipped deal's graph
        view self-heals on the next successful re-index (add_workbook,
        or a cold-start rebuild).
        """
        try:
            self._retry.call(
                index_deal_from_organized,
                self.graph, self.organized, deal_id,
            )
        except TransientError:
            get_registry().inc("graph.deals_skipped")

    # -- incremental maintenance ---------------------------------------------

    def add_workbook(self, workbook) -> None:
        """Onboard one engagement without a full rebuild (idempotent).

        The production deployment grows continuously (the paper reports
        ~1000 engagements at rollout); re-running the whole offline
        pipeline per new deal would not scale.  This indexes the new
        workbook's documents, analyzes just that workbook, and populates
        its synopsis rows.

        Onboarding has upsert semantics: re-adding a deal that is
        already onboarded (or re-adding after ``remove_deal`` left the
        workbook in ``collection``) first drops the deal's existing
        index documents and synopsis rows, so repeated calls never
        duplicate documents or rows.
        """
        self._require_search()  # initial build must have happened
        from repro.docmodel.repository import WorkbookCollection

        deal_id = workbook.deal_id
        if (deal_id in self._repositories
                or self.organized.deal_row(deal_id) is not None):
            self.remove_deal(deal_id)
        self.collection.upsert(workbook)
        self._repositories[deal_id] = workbook.name
        self._search.repositories[deal_id] = workbook.name

        crawl = DataAcquisition(self.engine).acquire(
            WorkbookCollection([workbook])
        )
        results = self._analysis.analyze(WorkbookCollection([workbook]))
        self.organized.store_deal_context(
            deal_id, results.context.get(deal_id, {})
        )
        self.organized.store_scopes(deal_id,
                                    results.scopes.get(deal_id, []))
        self.organized.store_contacts(deal_id,
                                      results.contacts.get(deal_id, []))
        self.organized.store_win_strategies(
            deal_id, results.strategies.get(deal_id, [])
        )
        self.organized.store_technologies(
            deal_id, results.technologies.get(deal_id, [])
        )
        self.organized.store_client_references(
            deal_id, results.references.get(deal_id, [])
        )
        self._index_deal_graph(deal_id)
        if self.build_report is not None:
            self.build_report.documents_indexed += crawl.indexed
            self.build_report.documents_analyzed += (
                results.documents_processed
            )
            self.build_report.documents_quarantined += (
                results.documents_quarantined
            )
            self.build_report.deals_populated += 1
            get_registry().set_gauge(
                "eil.deals_populated", self.build_report.deals_populated
            )
        self._search.invalidate()

    def remove_deal(self, deal_id: str) -> int:
        """Offboard one engagement: drop its index entries and synopsis.

        Returns the number of documents removed from the index.  The
        workbook object itself stays in ``collection`` (the repository
        is the system of record; EIL only forgets what it extracted).
        ``build_report`` and the ``eil.deals_populated`` gauge track the
        removal, so stats do not drift under continuous offboarding.
        """
        had_synopsis = self.organized.deal_row(deal_id) is not None
        removed = 0
        # The metadata value index finds the deal's documents directly —
        # no full doc_ids scan, which matters once the index is
        # segment-backed at 100k+ docs (a scan would page every
        # docstore record off disk).
        for doc_id in sorted(
            self.engine.index.docs_with_metadata("deal_id", [deal_id])
        ):
            self.engine.remove(doc_id)
            removed += 1
        # Children first, then the deal row (FK RESTRICT order).
        for table in ("deal_scopes", "contacts", "win_strategies",
                      "technologies", "client_references"):
            self.organized.db.execute(
                f"DELETE FROM {table} WHERE deal_id = ?", [deal_id]
            )
        self.organized.db.execute(
            "DELETE FROM deals WHERE deal_id = ?", [deal_id]
        )
        self.graph.remove_deal(deal_id)
        self._repositories.pop(deal_id, None)
        if self._search is not None:
            self._search.repositories.pop(deal_id, None)
            self._search.invalidate()
        if self.build_report is not None:
            self.build_report.documents_indexed -= removed
            if had_synopsis:
                self.build_report.deals_populated -= 1
            get_registry().set_gauge(
                "eil.deals_populated", self.build_report.deals_populated
            )
        return removed
