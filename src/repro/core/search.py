"""BUSINESS-ACTIVITY DRIVEN SEARCH — the paper's Figure 1 algorithm.

The search runs in two stages.  The *synopsis query* selects relevant
business activities from the structured context; when text criteria are
present, the *SIAPI query* then runs **scoped to those activities**
(steps 5-8), which is EIL's central precision lever: keyword matches in
activities the business context already ruled out never surface.  With
no synopsis hits, the SIAPI query runs unscoped (steps 12-15).  Results
are ranked by the combined relevance (step 18) and filtered through
access control at presentation time (step 19).
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field, replace
from typing import Dict, List, Optional

from repro.cache import LruCache
from repro.core.organized import OrganizedInformation
from repro.core.query_analyzer import FormQuery, SynopsisSearch
from repro.core.ranking import RankCombiner, RankedActivity
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.errors import QuerySyntaxError
from repro.obs import get_registry, get_tracer
from repro.search.siapi import SiapiService
from repro.security.access import AccessController, User

__all__ = ["ActivityResult", "EilResults", "BusinessActivityDrivenSearch"]


@dataclass
class ActivityResult:
    """One activity as presented to the user (post access control).

    Attributes:
        deal_id: The activity.
        name: Display name from the synopsis.
        score: Combined relevance.
        synopsis_score: Structured-context contribution.
        siapi_score: Keyword contribution.
        reasons: Why the synopsis matched.
        documents: Supporting document hits — empty when the user lacks
            repository access (synopsis-only view) or no text query ran.
        documents_withheld: True when hits existed but access control
            removed them.
    """

    deal_id: str
    name: str
    score: float
    synopsis_score: float
    siapi_score: float
    reasons: List[str] = field(default_factory=list)
    documents: List = field(default_factory=list)
    documents_withheld: bool = False


@dataclass
class EilResults:
    """The outcome of one business-activity driven search.

    Attributes:
        activities: Ranked activity results.
        scoped: True when the SIAPI query ran scoped to synopsis hits
            (Fig. 1 step 8) rather than unscoped (step 14).
        plan: Trace of the algorithm's branch decisions, for tests and
            the UI's "how this was found" affordance.
    """

    activities: List[ActivityResult] = field(default_factory=list)
    scoped: bool = False
    plan: List[str] = field(default_factory=list)

    @property
    def deal_ids(self) -> List[str]:
        """Ranked activity ids."""
        return [a.deal_id for a in self.activities]


def _copy_results(results: EilResults) -> EilResults:
    """A caller-mutable copy of a cached result (lists are not shared)."""
    return EilResults(
        activities=[
            replace(activity,
                    reasons=list(activity.reasons),
                    documents=list(activity.documents))
            for activity in results.activities
        ],
        scoped=results.scoped,
        plan=list(results.plan),
    )


class BusinessActivityDrivenSearch:
    """Executes Figure 1 end to end.

    Args:
        organized: The structured business context.
        taxonomy: Services taxonomy (concept expansion).
        siapi: Scoped keyword search service.
        access: Access controller for step 19.
        repositories: deal_id -> repository name, for document ACLs.
        combiner: Rank combination policy (step 18).
        cache_size: Result-cache capacity (0 disables caching).  Keys
            combine the normalized form, the user's access signature
            (user id + roles + ACL policy version) and the index/search
            epochs, so no user can ever see another user's cached view
            and incremental maintenance invalidates correctly.
    """

    def __init__(
        self,
        organized: OrganizedInformation,
        taxonomy: ServiceTaxonomy,
        siapi: SiapiService,
        access: Optional[AccessController] = None,
        repositories: Optional[Dict[str, str]] = None,
        combiner: Optional[RankCombiner] = None,
        cache_size: int = 128,
    ) -> None:
        self.organized = organized
        self.taxonomy = taxonomy
        self.synopsis_search = SynopsisSearch(organized, taxonomy)
        self.siapi = siapi
        self.access = access or AccessController()
        self.repositories = dict(repositories or {})
        self.combiner = combiner or RankCombiner()
        self.epoch = 0
        self._cache = LruCache("query.cache", cache_size)

    def invalidate(self) -> None:
        """Bump the search epoch; every cached result goes stale.

        Called by incremental maintenance (``EILSystem.add_workbook`` /
        ``remove_deal``) after the organized information changes.
        """
        self.epoch += 1

    def execute(
        self,
        form: FormQuery,
        user: User,
        limit: Optional[int] = None,
        per_activity_documents: int = 5,
    ) -> EilResults:
        """Run one query for ``user``; see the module docstring."""
        get_registry().inc("query.executed")
        self.access.require_synopsis_access(user)
        if form.is_empty():
            raise QuerySyntaxError("the search form is empty")
        key = self._cache_key(form, user, limit, per_activity_documents)
        cached = self._cache.get(key)
        if cached is not None:
            return _copy_results(cached)
        results = self._execute(form, user, limit, per_activity_documents)
        self._cache.put(key, results)
        return _copy_results(results)

    def _cache_key(
        self,
        form: FormQuery,
        user: User,
        limit: Optional[int],
        per_activity_documents: int,
    ) -> tuple:
        normalized = tuple(
            value.strip() if isinstance(value, str) else value
            for value in astuple(form)
        )
        access_signature = (
            user.user_id,
            frozenset(user.roles),
            self.access.policy_version,
        )
        epochs = (self.epoch, self.siapi.engine.epoch)
        return (normalized, access_signature, epochs,
                limit, per_activity_documents)

    def _execute(
        self,
        form: FormQuery,
        user: User,
        limit: Optional[int],
        per_activity_documents: int,
    ) -> EilResults:
        tracer = get_tracer()
        metrics = get_registry()
        with tracer.span("query.execute") as root:
            plan: List[str] = []

            # Steps 1-3: decompose the form.
            with tracer.span("query.analyze"):
                siapi_query = form.to_siapi_query()  # step 3
                suggestions: List[str] = []
                if form.tower.strip() and (
                    self.taxonomy.canonical(form.tower) is None
                ):
                    suggestions = self.taxonomy.suggest(form.tower)
            with tracer.span("query.synopsis"):  # steps 2, 4
                synopsis_matches = self.synopsis_search.execute(form)
            plan.append(
                f"synopsis query matched {len(synopsis_matches)} activities"
            )
            if suggestions:
                plan.append(
                    f"unknown concept {form.tower!r}; did you mean: "
                    + ", ".join(suggestions)
                )
            metrics.observe("query.synopsis_matches", len(synopsis_matches))

            scoped = False
            siapi_groups = None
            if synopsis_matches:  # step 5
                if siapi_query is not None:  # step 7
                    # Step 8: scoped SIAPI execution.
                    scope = set(synopsis_matches)
                    with tracer.span("query.siapi", scoped=True) as span:
                        siapi_groups = self.siapi.search_grouped(
                            siapi_query, scope=scope,
                            per_activity_limit=per_activity_documents,
                        )
                        span.set_attribute("scope", len(scope))
                    scoped = True
                    metrics.inc("query.siapi_scoped")
                    plan.append(
                        f"SIAPI query scoped to {len(scope)} activities, "
                        f"{len(siapi_groups)} matched"
                    )
                    # Activities with no keyword hits drop out: both parts
                    # of the conjunctive query must hold (step 9).
                    synopsis_matches = {
                        deal_id: match
                        for deal_id, match in synopsis_matches.items()
                        if any(
                            g.activity_id == deal_id for g in siapi_groups
                        )
                    }
                else:
                    plan.append("no SIAPI query; synopsis results stand")
            else:
                if siapi_query is not None:  # step 13
                    # Step 14: unscoped SIAPI execution.
                    with tracer.span("query.siapi", scoped=False):
                        siapi_groups = self.siapi.search_grouped(
                            siapi_query,
                            per_activity_limit=per_activity_documents,
                        )
                    metrics.inc("query.siapi_unscoped")
                    plan.append(
                        f"unscoped SIAPI query matched "
                        f"{len(siapi_groups)} activities"
                    )
                else:
                    plan.append("no criteria matched; empty result")
                    metrics.inc("query.empty_results")
                    return EilResults(plan=plan)

            # Step 18: rank.
            with tracer.span("query.rank"):
                ranked = self.combiner.combine(
                    synopsis_matches, siapi_groups
                )
                if limit is not None:
                    ranked = ranked[:limit]

            # Step 19: present under access control.
            with tracer.span("query.present"):
                results = [
                    self._present(activity, user) for activity in ranked
                ]
            metrics.observe("query.activities_returned", len(results))
            root.set_attribute("activities", len(results))
        return EilResults(activities=results, scoped=scoped, plan=plan)

    def _present(
        self, activity: RankedActivity, user: User
    ) -> ActivityResult:
        deal_row = self.organized.deal_row(activity.deal_id) or {}
        repository = self.repositories.get(activity.deal_id, "")
        may_read = self.access.can_read_documents(user, repository)
        documents = activity.hits if may_read else []
        if activity.hits and not may_read:
            get_registry().inc(
                "access.documents_redacted", len(activity.hits)
            )
        return ActivityResult(
            deal_id=activity.deal_id,
            name=str(deal_row.get("name") or activity.deal_id),
            score=activity.score,
            synopsis_score=activity.synopsis_score,
            siapi_score=activity.siapi_score,
            reasons=activity.reasons,
            documents=documents,
            documents_withheld=bool(activity.hits) and not may_read,
        )
