"""BUSINESS-ACTIVITY DRIVEN SEARCH — the paper's Figure 1 algorithm.

The search runs in two stages.  The *synopsis query* selects relevant
business activities from the structured context; when text criteria are
present, the *SIAPI query* then runs **scoped to those activities**
(steps 5-8), which is EIL's central precision lever: keyword matches in
activities the business context already ruled out never surface.  With
no synopsis hits, the SIAPI query runs unscoped (steps 12-15).  Results
are ranked by the combined relevance (step 18) and filtered through
access control at presentation time (step 19).

Degradation ladder (docs/OPERATIONS.md): the two stages lean on two
independent substrates — the synopsis DB and the SIAPI index — and the
production system the paper describes had to survive either being
down.  Each substrate call runs under a :class:`~repro.faults
.RetryPolicy` inside a :class:`~repro.faults.CircuitBreaker`, and a
persistent outage degrades instead of erroring:

* synopsis store down → the keyword query runs unscoped and the result
  is flagged ``degraded="no-synopsis"`` (business context missing,
  keyword-only relevance);
* index down → synopsis matches are returned with their contact lists
  and no document hits, flagged ``degraded="no-index"`` — the same
  synopsis + contact-list view users without repository access get
  (paper Section 3's access-control fallback);
* both down → a structured :class:`EILUnavailableError` naming both
  failures.

Degraded results are never cached (the :class:`~repro.cache.LruCache`
bypasses values with a ``degraded`` flag), and every rung increments
``query.degraded`` counters so the ladder is visible in ``repro
stats``.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field, replace
from typing import Dict, List, Optional

from repro.cache import LruCache
from repro.concurrency import AtomicCounter
from repro.core.organized import OrganizedInformation
from repro.core.query_analyzer import FormQuery, SynopsisMatch, SynopsisSearch
from repro.core.ranking import RankCombiner, RankedActivity
from repro.corpus.taxonomy import ServiceTaxonomy
from repro.errors import (
    DatabaseError,
    EILUnavailableError,
    QuerySyntaxError,
    SearchError,
    TransientError,
)
from repro.faults import CircuitBreaker, RetryPolicy
from repro.obs import get_registry, get_tracer
from repro.search.siapi import SiapiService
from repro.security.access import AccessController, User

__all__ = [
    "ActivityResult",
    "EilResults",
    "BusinessActivityDrivenSearch",
    "DEGRADED_NO_SYNOPSIS",
    "DEGRADED_NO_INDEX",
]

#: ``EilResults.degraded`` flag: the synopsis store was unreachable, so
#: the result is keyword-only (no business-context scoping or scores).
DEGRADED_NO_SYNOPSIS = "no-synopsis"

#: ``EilResults.degraded`` flag: the SIAPI index was unreachable, so
#: activities carry synopsis scores and contact lists but no documents.
DEGRADED_NO_INDEX = "no-index"

# Substrate outages worth degrading over.  QuerySyntaxError is the
# user's fault, never the substrate's; it must propagate un-degraded
# and must not trip a breaker.
_SYNOPSIS_OUTAGES = (DatabaseError, TransientError)
_INDEX_OUTAGES = (SearchError, TransientError)


@dataclass
class ActivityResult:
    """One activity as presented to the user (post access control).

    Attributes:
        deal_id: The activity.
        name: Display name from the synopsis.
        score: Combined relevance.
        synopsis_score: Structured-context contribution.
        siapi_score: Keyword contribution.
        reasons: Why the synopsis matched.
        documents: Supporting document hits — empty when the user lacks
            repository access (synopsis-only view), no text query ran,
            or the index was down (``degraded="no-index"``).
        documents_withheld: True when hits existed but access control
            removed them.
        contacts: Contact names for the synopsis + contact-list view;
            populated on the ``no-index`` degradation rung (and mirrors
            what the synopsis tab would show).
    """

    deal_id: str
    name: str
    score: float
    synopsis_score: float
    siapi_score: float
    reasons: List[str] = field(default_factory=list)
    documents: List = field(default_factory=list)
    documents_withheld: bool = False
    contacts: List[str] = field(default_factory=list)


@dataclass
class EilResults:
    """The outcome of one business-activity driven search.

    Attributes:
        activities: Ranked activity results.
        scoped: True when the SIAPI query ran scoped to synopsis hits
            (Fig. 1 step 8) rather than unscoped (step 14).
        plan: Trace of the algorithm's branch decisions, for tests and
            the UI's "how this was found" affordance.
        degraded: None for a full-fidelity answer, else the ladder rung
            that produced it (:data:`DEGRADED_NO_SYNOPSIS` or
            :data:`DEGRADED_NO_INDEX`).  Degraded results are never
            cached.
    """

    activities: List[ActivityResult] = field(default_factory=list)
    scoped: bool = False
    plan: List[str] = field(default_factory=list)
    degraded: Optional[str] = None

    @property
    def deal_ids(self) -> List[str]:
        """Ranked activity ids."""
        return [a.deal_id for a in self.activities]


def _copy_results(results: EilResults) -> EilResults:
    """A caller-mutable copy of a cached result (lists are not shared)."""
    return EilResults(
        activities=[
            replace(activity,
                    reasons=list(activity.reasons),
                    documents=list(activity.documents),
                    contacts=list(activity.contacts))
            for activity in results.activities
        ],
        scoped=results.scoped,
        plan=list(results.plan),
        degraded=results.degraded,
    )


class BusinessActivityDrivenSearch:
    """Executes Figure 1 end to end.

    Args:
        organized: The structured business context.
        taxonomy: Services taxonomy (concept expansion).
        siapi: Scoped keyword search service.
        access: Access controller for step 19.
        repositories: deal_id -> repository name, for document ACLs.
        combiner: Rank combination policy (step 18).
        cache_size: Result-cache capacity (0 disables caching).  Keys
            combine the normalized form, the user's access signature
            (user id + roles + ACL policy version) and the index/search
            epochs, so no user can ever see another user's cached view
            and incremental maintenance invalidates correctly.
        retry: Retry policy for transient substrate failures (defaults
            to 3 quick attempts with deterministic jitter).
        synopsis_breaker: Circuit breaker around the synopsis DB.
        siapi_breaker: Circuit breaker around the SIAPI index.
    """

    def __init__(
        self,
        organized: OrganizedInformation,
        taxonomy: ServiceTaxonomy,
        siapi: SiapiService,
        access: Optional[AccessController] = None,
        repositories: Optional[Dict[str, str]] = None,
        combiner: Optional[RankCombiner] = None,
        cache_size: int = 128,
        retry: Optional[RetryPolicy] = None,
        synopsis_breaker: Optional[CircuitBreaker] = None,
        siapi_breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.organized = organized
        self.taxonomy = taxonomy
        self.synopsis_search = SynopsisSearch(organized, taxonomy)
        self.siapi = siapi
        self.access = access or AccessController()
        self.repositories = dict(repositories or {})
        self.combiner = combiner or RankCombiner()
        # Atomic: concurrent add_workbook/remove_deal calls both bump
        # the epoch, and a lost increment would let a stale cache key
        # survive the second mutation.
        self._epoch = AtomicCounter()
        self._cache = LruCache("query.cache", cache_size)
        self.retry = retry or RetryPolicy()
        self.synopsis_breaker = synopsis_breaker or CircuitBreaker(
            "synopsis", trip_on=_SYNOPSIS_OUTAGES,
            ignore=(QuerySyntaxError,),
        )
        self.siapi_breaker = siapi_breaker or CircuitBreaker(
            "siapi", trip_on=_INDEX_OUTAGES,
            ignore=(QuerySyntaxError,),
        )

    @property
    def epoch(self) -> int:
        """The cache-invalidation epoch (bumped by :meth:`invalidate`)."""
        return self._epoch.value

    def invalidate(self) -> None:
        """Bump the search epoch; every cached result goes stale.

        Called by incremental maintenance (``EILSystem.add_workbook`` /
        ``remove_deal``) after the organized information changes.
        """
        self._epoch.increment()

    def execute(
        self,
        form: FormQuery,
        user: User,
        limit: Optional[int] = None,
        per_activity_documents: int = 5,
    ) -> EilResults:
        """Run one query for ``user``; see the module docstring.

        Raises:
            EILUnavailableError: Only when *both* the synopsis store
                and the SIAPI index are down; any single outage returns
                a degraded (never cached) result instead.
        """
        get_registry().inc("query.executed")
        self.access.require_synopsis_access(user)
        if form.is_empty():
            raise QuerySyntaxError("the search form is empty")
        key = self._cache_key(form, user, limit, per_activity_documents)
        cached = self._cache.get(key)
        if cached is not None:
            return _copy_results(cached)
        results = self._execute(form, user, limit, per_activity_documents)
        # The cache itself refuses degraded values (LruCache.storable),
        # so a thinned-out answer can never outlive the outage.
        self._cache.put(key, results)
        return _copy_results(results)

    def _cache_key(
        self,
        form: FormQuery,
        user: User,
        limit: Optional[int],
        per_activity_documents: int,
    ) -> tuple:
        normalized = tuple(
            value.strip() if isinstance(value, str) else value
            for value in astuple(form)
        )
        access_signature = (
            user.user_id,
            frozenset(user.roles),
            self.access.policy_version,
        )
        epochs = (self.epoch, self.siapi.engine.epoch)
        return (normalized, access_signature, epochs,
                limit, per_activity_documents)

    # -- resilient substrate calls ------------------------------------------

    def _synopsis_matches(
        self, form: FormQuery
    ) -> Dict[str, SynopsisMatch]:
        """The synopsis query under retry + breaker (steps 2, 4)."""
        return self.synopsis_breaker.call(
            self.retry.call, self.synopsis_search.execute, form
        )

    def _siapi_grouped(
        self, siapi_query, scope, per_activity_documents,
        activity_limit=None,
    ):
        """The SIAPI query under retry + breaker (steps 8 / 14).

        ``activity_limit`` is only safe on *unscoped* branches where
        the final ranking is keyword-only (no synopsis scores to merge
        in): there the top activities by SIAPI score are exactly the
        top activities overall, so the tail can be dropped early.
        """
        return self.siapi_breaker.call(
            self.retry.call,
            self.siapi.search_grouped,
            siapi_query,
            scope=scope,
            per_activity_limit=per_activity_documents,
            activity_limit=activity_limit,
        )

    def _record_degraded(self, flag: str, plan: List[str], note: str) -> None:
        metrics = get_registry()
        metrics.inc("query.degraded")
        metrics.inc(f"query.degraded.{flag}")
        plan.append(note)

    def _execute(
        self,
        form: FormQuery,
        user: User,
        limit: Optional[int],
        per_activity_documents: int,
    ) -> EilResults:
        tracer = get_tracer()
        metrics = get_registry()
        with tracer.span("query.execute") as root:
            plan: List[str] = []
            degraded: Optional[str] = None

            # Steps 1-3: decompose the form.
            with tracer.span("query.analyze"):
                siapi_query = form.to_siapi_query()  # step 3
                suggestions: List[str] = []
                if form.tower.strip() and (
                    self.taxonomy.canonical(form.tower) is None
                ):
                    suggestions = self.taxonomy.suggest(form.tower)

            synopsis_failure: Optional[BaseException] = None
            synopsis_matches: Dict[str, SynopsisMatch] = {}
            with tracer.span("query.synopsis"):  # steps 2, 4
                try:
                    synopsis_matches = self._synopsis_matches(form)
                except _SYNOPSIS_OUTAGES as exc:
                    synopsis_failure = exc
                    metrics.inc("query.synopsis_unavailable")
            if synopsis_failure is None:
                plan.append(
                    f"synopsis query matched {len(synopsis_matches)} "
                    f"activities"
                )
                metrics.observe(
                    "query.synopsis_matches", len(synopsis_matches)
                )
            else:
                degraded = DEGRADED_NO_SYNOPSIS
                self._record_degraded(
                    degraded, plan,
                    f"synopsis store unavailable "
                    f"({type(synopsis_failure).__name__}); "
                    f"degrading to keyword-only search",
                )
            if suggestions:
                plan.append(
                    f"unknown concept {form.tower!r}; did you mean: "
                    + ", ".join(suggestions)
                )

            scoped = False
            siapi_groups = None
            if synopsis_failure is not None:
                # Rung 1: no synopsis.  Keyword-only, unscoped — or, if
                # the index is down too, the bottom of the ladder.
                if siapi_query is None:
                    plan.append(
                        "no text criteria to fall back to; empty "
                        "degraded result"
                    )
                    metrics.inc("query.empty_results")
                    return EilResults(plan=plan, degraded=degraded)
                try:
                    with tracer.span("query.siapi", scoped=False):
                        siapi_groups = self._siapi_grouped(
                            siapi_query, None, per_activity_documents,
                            activity_limit=limit,
                        )
                except _INDEX_OUTAGES as exc:
                    metrics.inc("query.siapi_unavailable")
                    metrics.inc("query.unavailable")
                    raise EILUnavailableError(
                        "both the synopsis store and the SIAPI index "
                        "are unavailable",
                        failures={
                            "synopsis": synopsis_failure,
                            "index": exc,
                        },
                    ) from exc
                metrics.inc("query.siapi_unscoped")
                plan.append(
                    f"unscoped SIAPI query matched "
                    f"{len(siapi_groups)} activities"
                )
                synopsis_matches = {}
            elif synopsis_matches:  # step 5
                if siapi_query is not None:  # step 7
                    # Step 8: scoped SIAPI execution.
                    scope = set(synopsis_matches)
                    try:
                        with tracer.span(
                            "query.siapi", scoped=True
                        ) as span:
                            siapi_groups = self._siapi_grouped(
                                siapi_query, scope,
                                per_activity_documents,
                            )
                            span.set_attribute("scope", len(scope))
                    except _INDEX_OUTAGES as exc:
                        # Rung 2: no index.  Synopsis + contact list
                        # only — the access-control fallback view.
                        metrics.inc("query.siapi_unavailable")
                        degraded = DEGRADED_NO_INDEX
                        self._record_degraded(
                            degraded, plan,
                            f"index unavailable "
                            f"({type(exc).__name__}); synopsis and "
                            f"contact list only",
                        )
                        siapi_groups = None
                    else:
                        scoped = True
                        metrics.inc("query.siapi_scoped")
                        plan.append(
                            f"SIAPI query scoped to {len(scope)} "
                            f"activities, {len(siapi_groups)} matched"
                        )
                        # Activities with no keyword hits drop out:
                        # both parts of the conjunctive query must
                        # hold (step 9).
                        synopsis_matches = {
                            deal_id: match
                            for deal_id, match in
                            synopsis_matches.items()
                            if any(
                                g.activity_id == deal_id
                                for g in siapi_groups
                            )
                        }
                else:
                    plan.append("no SIAPI query; synopsis results stand")
            else:
                if siapi_query is not None:  # step 13
                    # Step 14: unscoped SIAPI execution.
                    try:
                        with tracer.span("query.siapi", scoped=False):
                            siapi_groups = self._siapi_grouped(
                                siapi_query, None,
                                per_activity_documents,
                                activity_limit=limit,
                            )
                    except _INDEX_OUTAGES as exc:
                        # Synopsis answered (nothing), index is down:
                        # an empty result is all we can honestly give.
                        metrics.inc("query.siapi_unavailable")
                        degraded = DEGRADED_NO_INDEX
                        self._record_degraded(
                            degraded, plan,
                            f"index unavailable "
                            f"({type(exc).__name__}) and no synopsis "
                            f"matches; empty degraded result",
                        )
                        metrics.inc("query.empty_results")
                        return EilResults(plan=plan, degraded=degraded)
                    metrics.inc("query.siapi_unscoped")
                    plan.append(
                        f"unscoped SIAPI query matched "
                        f"{len(siapi_groups)} activities"
                    )
                else:
                    plan.append("no criteria matched; empty result")
                    metrics.inc("query.empty_results")
                    return EilResults(plan=plan)

            # Step 18: rank.  The limit rides into the combiner so the
            # merge selects top-k with a bounded heap instead of
            # ranking every activity and slicing.
            with tracer.span("query.rank"):
                ranked = self.combiner.combine(
                    synopsis_matches, siapi_groups, limit=limit
                )

            # Step 19: present under access control.
            with tracer.span("query.present"):
                results = [
                    self._present(
                        activity, user,
                        include_contacts=degraded == DEGRADED_NO_INDEX,
                    )
                    for activity in ranked
                ]
            metrics.observe("query.activities_returned", len(results))
            root.set_attribute("activities", len(results))
        return EilResults(
            activities=results, scoped=scoped, plan=plan,
            degraded=degraded,
        )

    def _deal_row(self, deal_id: str) -> Dict[str, object]:
        """The deal's overview row, tolerating a flaky synopsis DB.

        Presentation must not un-degrade a result that already made it
        through the ladder: if the row read fails even after retries,
        fall back to the bare deal id rather than raising.
        """
        try:
            return self.retry.call(
                self.organized.deal_row, deal_id
            ) or {}
        except _SYNOPSIS_OUTAGES:
            get_registry().inc("query.present_row_unavailable")
            return {}

    def _contacts(self, deal_id: str) -> List[str]:
        """Contact names for the synopsis + contact-list fallback view."""
        try:
            rows = self.retry.call(self.organized.contacts_of, deal_id)
        except _SYNOPSIS_OUTAGES:
            get_registry().inc("query.present_contacts_unavailable")
            return []
        return [str(row.get("name", "")) for row in rows if row.get("name")]

    def _present(
        self,
        activity: RankedActivity,
        user: User,
        include_contacts: bool = False,
    ) -> ActivityResult:
        deal_row = self._deal_row(activity.deal_id)
        repository = self.repositories.get(activity.deal_id, "")
        documents, withheld = self.access.presentable_documents(
            user, repository, activity.hits
        )
        contacts = (
            self._contacts(activity.deal_id) if include_contacts else []
        )
        return ActivityResult(
            deal_id=activity.deal_id,
            name=str(deal_row.get("name") or activity.deal_id),
            score=activity.score,
            synopsis_score=activity.synopsis_score,
            siapi_score=activity.siapi_score,
            reasons=activity.reasons,
            documents=documents,
            documents_withheld=withheld,
            contacts=contacts,
        )
