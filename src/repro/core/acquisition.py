"""Data Acquisition (paper Figure 2, leftmost offline component).

Crawls the engagement-workbook repositories into the semantic index
(the OmniFind substitute).  Kept as its own stage so the rebuild
cadence of the index can differ from the analysis pipeline's, as in the
paper's production deployment.
"""

from __future__ import annotations

from typing import Optional

from repro.docmodel.repository import WorkbookCollection
from repro.faults import RetryPolicy
from repro.obs import get_registry, get_tracer
from repro.search.crawler import Crawler, CrawlReport
from repro.search.engine import SearchEngine

__all__ = ["DataAcquisition"]


class DataAcquisition:
    """Builds and maintains the semantic index over workbooks."""

    def __init__(
        self,
        engine: SearchEngine,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.engine = engine
        self._crawler = Crawler(engine, retry=retry)

    def acquire(self, collection: WorkbookCollection) -> CrawlReport:
        """Crawl every workbook in the collection into the index."""
        with get_tracer().span("offline.acquire") as span:
            report = self._crawler.crawl_all(iter(collection))
        metrics = get_registry()
        metrics.inc("acquisition.documents_indexed", report.indexed)
        metrics.inc("acquisition.documents_skipped", report.skipped)
        metrics.inc("acquisition.sources_aborted", report.sources_aborted)
        metrics.set_gauge("index.documents", len(self.engine))
        span.set_attribute("indexed", report.indexed)
        return report

    @property
    def indexed_documents(self) -> int:
        """Documents currently in the semantic index."""
        return len(self.engine)
