"""Result ranking: combining synopsis and SIAPI relevance (Fig. 1, step 18).

Per the paper: *"we normalize the document relevance scores from
OmniFind (e.g., compute an average score) and then combine the
normalized score with the synopsis relevance score."*  The SIAPI side
arrives already normalized per activity (see
:meth:`repro.search.siapi.SiapiService.search_grouped`); this module
performs the weighted combination and deterministic ordering.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.query_analyzer import SynopsisMatch
from repro.search.document import SearchHit
from repro.search.siapi import ActivityHits

__all__ = ["RankedActivity", "RankCombiner"]


@dataclass
class RankedActivity:
    """One business activity in the final ranking.

    Attributes:
        deal_id: The activity.
        score: Combined relevance.
        synopsis_score: Contribution from the structured context (0 when
            the activity came only from the keyword side).
        siapi_score: Normalized keyword relevance (0 when no text query
            or no hits in this activity).
        reasons: Synopsis match explanations.
        hits: The activity's document hits (pre-access-control).
    """

    deal_id: str
    score: float
    synopsis_score: float = 0.0
    siapi_score: float = 0.0
    reasons: List[str] = field(default_factory=list)
    hits: List[SearchHit] = field(default_factory=list)


class RankCombiner:
    """Weighted combination of the two relevance sources.

    Args:
        synopsis_weight: Weight of the synopsis relevance; the SIAPI
            side gets ``1 - synopsis_weight``.  When only one source
            contributed (concept-only or keyword-only queries), that
            source's score is used directly instead of being scaled —
            scaling would just shrink every score by a constant.
    """

    def __init__(self, synopsis_weight: float = 0.5) -> None:
        if not 0.0 <= synopsis_weight <= 1.0:
            raise ValueError("synopsis_weight must be in [0, 1]")
        self.synopsis_weight = synopsis_weight

    def combine(
        self,
        synopsis: Dict[str, SynopsisMatch],
        siapi: Optional[List[ActivityHits]],
        limit: Optional[int] = None,
    ) -> List[RankedActivity]:
        """Merge both sources into a deterministic ranking.

        ``limit`` keeps only the best activities, selected with a
        bounded heap instead of sorting the full merge — identical to
        the head of the unlimited ranking (ties break by deal id).
        """
        siapi_by_deal: Dict[str, ActivityHits] = {
            group.activity_id: group for group in (siapi or [])
        }
        deal_ids = set(synopsis) | set(siapi_by_deal)
        ranked: List[RankedActivity] = []
        for deal_id in deal_ids:
            synopsis_match = synopsis.get(deal_id)
            siapi_group = siapi_by_deal.get(deal_id)
            synopsis_score = synopsis_match.score if synopsis_match else 0.0
            siapi_score = siapi_group.score if siapi_group else 0.0
            if synopsis_match and siapi_group:
                combined = (
                    self.synopsis_weight * synopsis_score
                    + (1.0 - self.synopsis_weight) * siapi_score
                )
            elif synopsis_match:
                combined = synopsis_score
            else:
                combined = siapi_score
            ranked.append(
                RankedActivity(
                    deal_id=deal_id,
                    score=combined,
                    synopsis_score=synopsis_score,
                    siapi_score=siapi_score,
                    reasons=list(synopsis_match.reasons)
                    if synopsis_match
                    else [],
                    hits=list(siapi_group.hits) if siapi_group else [],
                )
            )
        if limit is not None and limit < len(ranked):
            return heapq.nsmallest(
                limit, ranked, key=lambda a: (-a.score, a.deal_id)
            )
        ranked.sort(key=lambda a: (-a.score, a.deal_id))
        return ranked
