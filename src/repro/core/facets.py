"""Facet counts over the organized information.

The EIL search editor (paper Figure 8) offers dropdown criteria —
Tower/Sub-tower, Sector/Industry, Out-Sourcing Consultant,
Geography/Country.  Those dropdowns need to show the values that exist
(and how many deals carry each), both globally and *within a result
set* so users can refine iteratively — the faceted-navigation pattern
the paper's related-work section notes enterprise vendors converging
on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.organized import OrganizedInformation

__all__ = ["FacetService", "FACET_NAMES"]

FACET_NAMES = ("tower", "industry", "consultant", "geography",
               "value_band", "role")


class FacetService:
    """Computes deal counts per facet value."""

    def __init__(self, organized: OrganizedInformation) -> None:
        self.organized = organized

    def facets(
        self,
        deal_ids: Optional[Iterable[str]] = None,
    ) -> Dict[str, List[Tuple[str, int]]]:
        """All facets at once; optionally restricted to ``deal_ids``.

        Returns facet name -> [(value, deal count)] sorted by
        descending count, then value.
        """
        scope = set(deal_ids) if deal_ids is not None else None
        return {
            "tower": self._scope_facet(scope),
            "industry": self._deal_column_facet("industry", scope),
            "consultant": self._deal_column_facet("consultant", scope),
            "geography": self._deal_column_facet("geography", scope),
            "value_band": self._deal_column_facet("value_band", scope),
            "role": self._role_facet(scope),
        }

    def facet(
        self,
        name: str,
        deal_ids: Optional[Iterable[str]] = None,
    ) -> List[Tuple[str, int]]:
        """One facet's value counts."""
        if name not in FACET_NAMES:
            raise KeyError(f"unknown facet {name!r}")
        return self.facets(deal_ids)[name]

    # -- internals ----------------------------------------------------------

    def _deal_column_facet(
        self, column: str, scope: Optional[set]
    ) -> List[Tuple[str, int]]:
        rows = self.organized.db.execute(
            f"SELECT deal_id, {column} FROM deals"
        ).to_dicts()
        counts: Dict[str, int] = {}
        for row in rows:
            if scope is not None and row["deal_id"] not in scope:
                continue
            value = row[column]
            if not value:
                continue
            counts[str(value)] = counts.get(str(value), 0) + 1
        return _sorted_counts(counts)

    def _scope_facet(self, scope: Optional[set]) -> List[Tuple[str, int]]:
        rows = self.organized.db.execute(
            "SELECT deal_id, canonical FROM deal_scopes"
        ).to_dicts()
        counts: Dict[str, int] = {}
        seen = set()
        for row in rows:
            if scope is not None and row["deal_id"] not in scope:
                continue
            key = (row["deal_id"], row["canonical"])
            if key in seen:
                continue
            seen.add(key)
            counts[str(row["canonical"])] = (
                counts.get(str(row["canonical"]), 0) + 1
            )
        return _sorted_counts(counts)

    def _role_facet(self, scope: Optional[set]) -> List[Tuple[str, int]]:
        rows = self.organized.db.execute(
            "SELECT DISTINCT deal_id, role FROM contacts "
            "WHERE role IS NOT NULL"
        ).to_dicts()
        counts: Dict[str, int] = {}
        for row in rows:
            if scope is not None and row["deal_id"] not in scope:
                continue
            if not row["role"]:
                continue
            counts[str(row["role"])] = counts.get(str(row["role"]), 0) + 1
        return _sorted_counts(counts)


def _sorted_counts(counts: Dict[str, int]) -> List[Tuple[str, int]]:
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))
