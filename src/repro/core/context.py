"""Business-activity context: the deal synopsis (paper Figure 6).

The synopsis is the per-activity structured view EIL presents first:
Overview, Towers (ordered by significance), People (grouped into the
contact categories), Win Strategies, Client References and Technology
Solutions tabs — assembled from the organized-information tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.organized import OrganizedInformation
from repro.errors import ProgrammingError

__all__ = ["ContactView", "DealSynopsis", "SynopsisBuilder"]


@dataclass(frozen=True)
class ContactView:
    """One contact as shown on the People tab."""

    name: str
    role: str
    category: str
    email: str
    phone: str
    organization: str
    validated: bool
    active: bool


@dataclass
class DealSynopsis:
    """The full business context of one activity.

    Attributes:
        deal_id: The activity.
        name: Display name.
        overview: Overview-tab fields (customer, industry, consultant,
            contract term, value band, international flag).
        towers: Scope service names, most significant first (the
            Figure 5/6 "Towers" ordering).
        people: People tab, grouped by contact category.
        win_strategies: Win Strategies tab.
        client_references: Client References tab.
        technology_solutions: Technology Solutions tab entries
            ("term (tower)" pairs).
    """

    deal_id: str
    name: str
    overview: Dict[str, str] = field(default_factory=dict)
    towers: List[str] = field(default_factory=list)
    people: Dict[str, List[ContactView]] = field(default_factory=dict)
    win_strategies: List[str] = field(default_factory=list)
    client_references: List[str] = field(default_factory=list)
    technology_solutions: List[Dict[str, str]] = field(default_factory=list)

    def contacts(self) -> List[ContactView]:
        """All contacts across categories, category order preserved."""
        return [
            contact
            for category in sorted(self.people)
            for contact in self.people[category]
        ]


class SynopsisBuilder:
    """Builds :class:`DealSynopsis` objects from the database."""

    def __init__(self, organized: OrganizedInformation) -> None:
        self.organized = organized

    def build(self, deal_id: str) -> DealSynopsis:
        """Assemble the synopsis of one deal; unknown ids raise."""
        deal_row = self.organized.deal_row(deal_id)
        if deal_row is None:
            raise ProgrammingError(f"no synopsis for deal {deal_id!r}")
        overview = {
            "Deal name": str(deal_row.get("name") or ""),
            "Customer name": str(deal_row.get("customer") or ""),
            "Industry": str(deal_row.get("industry") or ""),
            "Out Sourcing Consultant": str(deal_row.get("consultant") or ""),
            "Contract Term Start": str(deal_row.get("contract_start") or ""),
            "Term Duration (months)": str(deal_row.get("term_months") or ""),
            "Total Contract Value": str(deal_row.get("value_band") or ""),
            "Is International?": "Y" if deal_row.get("international") else "N",
        }
        towers = [
            str(row["canonical"]) for row in self.organized.scopes_of(deal_id)
        ]
        people: Dict[str, List[ContactView]] = {}
        for row in self.organized.contacts_of(deal_id):
            contact = ContactView(
                name=str(row["name"]),
                role=str(row.get("role") or ""),
                category=str(row.get("category") or "other"),
                email=str(row.get("email") or ""),
                phone=str(row.get("phone") or ""),
                organization=str(row.get("organization") or ""),
                validated=bool(row.get("validated")),
                active=bool(row.get("active")),
            )
            people.setdefault(contact.category, []).append(contact)
        technology_solutions = [
            {"term": str(row["term"]), "tower": str(row.get("tower") or "")}
            for row in self.organized.technologies_of(deal_id)
        ]
        return DealSynopsis(
            deal_id=deal_id,
            name=overview["Deal name"] or deal_id,
            overview=overview,
            towers=towers,
            people=people,
            win_strategies=self.organized.strategies_of(deal_id),
            client_references=self.organized.references_of(deal_id),
            technology_solutions=technology_solutions,
        )
