"""Organized Information: the structured business context in the DB.

This is the paper's "Organized Information" block (Figure 2): the
annotator/CPE outputs land in relational tables that the online synopsis
queries read.  The schema mirrors the synopsis tabs of Figure 6 —
overview fields, towers (scope), people, win strategies, technology
solutions, client references.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.annotators.scope import ScopeEntry
from repro.annotators.social import ContactRecord
from repro.db import Database

__all__ = ["create_schema", "OrganizedInformation"]

_SCHEMA_STATEMENTS = (
    """
    CREATE TABLE deals (
        deal_id TEXT,
        name TEXT NOT NULL,
        customer TEXT,
        industry TEXT,
        consultant TEXT,
        geography TEXT,
        contract_start DATE,
        term_months INTEGER,
        value_band TEXT,
        international BOOLEAN,
        PRIMARY KEY (deal_id)
    )
    """,
    """
    CREATE TABLE deal_scopes (
        deal_id TEXT NOT NULL,
        canonical TEXT NOT NULL,
        tower TEXT,
        weight REAL NOT NULL,
        mentions INTEGER,
        rank INTEGER NOT NULL,
        FOREIGN KEY (deal_id) REFERENCES deals (deal_id)
    )
    """,
    """
    CREATE TABLE contacts (
        contact_id INTEGER,
        deal_id TEXT NOT NULL,
        name TEXT NOT NULL,
        email TEXT,
        phone TEXT,
        organization TEXT,
        role TEXT,
        category TEXT,
        mention_count INTEGER,
        validated BOOLEAN,
        active BOOLEAN,
        PRIMARY KEY (contact_id),
        FOREIGN KEY (deal_id) REFERENCES deals (deal_id)
    )
    """,
    """
    CREATE TABLE win_strategies (
        strategy_id INTEGER,
        deal_id TEXT NOT NULL,
        text TEXT NOT NULL,
        PRIMARY KEY (strategy_id),
        FOREIGN KEY (deal_id) REFERENCES deals (deal_id)
    )
    """,
    """
    CREATE TABLE technologies (
        technology_id INTEGER,
        deal_id TEXT NOT NULL,
        term TEXT NOT NULL,
        tower TEXT,
        PRIMARY KEY (technology_id),
        FOREIGN KEY (deal_id) REFERENCES deals (deal_id)
    )
    """,
    """
    CREATE TABLE client_references (
        reference_id INTEGER,
        deal_id TEXT NOT NULL,
        text TEXT NOT NULL,
        PRIMARY KEY (reference_id),
        FOREIGN KEY (deal_id) REFERENCES deals (deal_id)
    )
    """,
    # Analytics rollups group/filter deals by industry; the index lets
    # the planner serve those WHEREs and index joins without full scans.
    "CREATE INDEX ix_deals_industry ON deals (industry)",
    "CREATE INDEX ix_scopes_deal ON deal_scopes (deal_id)",
    "CREATE INDEX ix_scopes_canonical ON deal_scopes (canonical)",
    "CREATE INDEX ix_scopes_tower ON deal_scopes (tower)",
    "CREATE INDEX ix_contacts_deal ON contacts (deal_id)",
    "CREATE INDEX ix_contacts_name ON contacts (name)",
    "CREATE INDEX ix_contacts_role ON contacts (role)",
    "CREATE INDEX ix_tech_deal ON technologies (deal_id)",
    "CREATE INDEX ix_tech_term ON technologies (term)",
)


def create_schema(db: Database) -> Database:
    """Create the organized-information tables and indexes."""
    for statement in _SCHEMA_STATEMENTS:
        db.execute(statement)
    return db


class OrganizedInformation:
    """Populates and reads the structured business context."""

    def __init__(self, db: Optional[Database] = None) -> None:
        self.db = db or Database()
        if "deals" not in self.db.table_names:
            create_schema(self.db)
        self._contact_id = 0
        self._strategy_id = 0
        self._technology_id = 0
        self._reference_id = 0

    # -- population (offline pipeline, Fig. 2 left-to-right) --------------

    def store_deal_context(
        self, deal_id: str, context: Mapping[str, str]
    ) -> None:
        """Insert one deal's overview fields (from eil.ContextField).

        ``context`` keys follow the overview-form field names; missing
        fields land as NULL, matching the inconsistently-maintained
        repositories the paper describes.
        """
        term = context.get("Term Duration Months")
        self.db.insert(
            "deals",
            {
                "deal_id": deal_id,
                "name": context.get("Deal Name", deal_id),
                "customer": context.get("Customer"),
                "industry": context.get("Industry"),
                "consultant": context.get("Out Sourcing Consultant"),
                "geography": context.get("Geography"),
                "contract_start": context.get("Contract Term Start"),
                "term_months": int(term) if term else None,
                "value_band": context.get("Total Contract Value"),
                "international": context.get("International") == "Y",
            },
        )

    def store_scopes(
        self, deal_id: str, entries: Sequence[ScopeEntry]
    ) -> None:
        """Insert a deal's significant scopes, preserving their order."""
        for rank, entry in enumerate(entries):
            self.db.insert(
                "deal_scopes",
                {
                    "deal_id": deal_id,
                    "canonical": entry.canonical,
                    "tower": entry.tower,
                    "weight": entry.weight,
                    "mentions": entry.mentions,
                    "rank": rank,
                },
            )

    def store_contacts(
        self, deal_id: str, contacts: Sequence[ContactRecord]
    ) -> None:
        """Insert a deal's de-duplicated contact list."""
        for contact in contacts:
            self._contact_id += 1
            self.db.insert(
                "contacts",
                {
                    "contact_id": self._contact_id,
                    "deal_id": deal_id,
                    "name": contact.name,
                    "email": contact.email,
                    "phone": contact.phone,
                    "organization": contact.organization,
                    "role": contact.role,
                    "category": contact.category,
                    "mention_count": contact.mention_count,
                    "validated": contact.validated,
                    "active": contact.active,
                },
            )

    def store_win_strategies(
        self, deal_id: str, strategies: Iterable[str]
    ) -> None:
        """Insert a deal's win-strategy statements."""
        for text in strategies:
            self._strategy_id += 1
            self.db.insert(
                "win_strategies",
                {"strategy_id": self._strategy_id, "deal_id": deal_id,
                 "text": text},
            )

    def store_technologies(
        self, deal_id: str, technologies: Iterable[Sequence[str]]
    ) -> None:
        """Insert (term, tower) technology pairs."""
        for term, tower in technologies:
            self._technology_id += 1
            self.db.insert(
                "technologies",
                {"technology_id": self._technology_id, "deal_id": deal_id,
                 "term": term, "tower": tower},
            )

    def store_client_references(
        self, deal_id: str, references: Iterable[str]
    ) -> None:
        """Insert client-reference statements."""
        for text in references:
            self._reference_id += 1
            self.db.insert(
                "client_references",
                {"reference_id": self._reference_id, "deal_id": deal_id,
                 "text": text},
            )

    # -- reads (online side) ----------------------------------------------------

    def deal_ids(self) -> List[str]:
        """All populated deal ids."""
        return self.db.execute(
            "SELECT deal_id FROM deals ORDER BY deal_id"
        ).column("deal_id")

    def deal_row(self, deal_id: str) -> Optional[Dict[str, object]]:
        """One deal's overview row, or None."""
        return self.db.query_one(
            "SELECT * FROM deals WHERE deal_id = ?", [deal_id]
        )

    def scopes_of(self, deal_id: str) -> List[Dict[str, object]]:
        """Ordered scope rows of one deal."""
        return self.db.execute(
            "SELECT * FROM deal_scopes WHERE deal_id = ? ORDER BY rank",
            [deal_id],
        ).to_dicts()

    def contacts_of(self, deal_id: str) -> List[Dict[str, object]]:
        """Contact rows of one deal, grouped by category then name."""
        return self.db.execute(
            "SELECT * FROM contacts WHERE deal_id = ? "
            "ORDER BY category, name",
            [deal_id],
        ).to_dicts()

    def strategies_of(self, deal_id: str) -> List[str]:
        """Win-strategy texts of one deal."""
        return self.db.execute(
            "SELECT text FROM win_strategies WHERE deal_id = ? "
            "ORDER BY strategy_id",
            [deal_id],
        ).column("text")

    def technologies_of(self, deal_id: str) -> List[Dict[str, object]]:
        """Technology rows of one deal."""
        return self.db.execute(
            "SELECT * FROM technologies WHERE deal_id = ? "
            "ORDER BY technology_id",
            [deal_id],
        ).to_dicts()

    def references_of(self, deal_id: str) -> List[str]:
        """Client-reference texts of one deal."""
        return self.db.execute(
            "SELECT text FROM client_references WHERE deal_id = ? "
            "ORDER BY reference_id",
            [deal_id],
        ).column("text")
