"""EIL core: the paper's primary contribution, assembled."""

from repro.core.acquisition import DataAcquisition
from repro.core.analysis import AnalysisResults, FeatureRollup, InformationAnalysis
from repro.core.context import ContactView, DealSynopsis, SynopsisBuilder
from repro.core.eil import BuildReport, EILSystem
from repro.core.facets import FACET_NAMES, FacetService
from repro.core.metaqueries import (
    GraphQuery,
    graph_expertise_query,
    graph_role_capacity_query,
    graph_team_overlap_query,
    graph_worked_with_query,
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.core.organized import OrganizedInformation, create_schema
from repro.core.presentation import (
    render_deal_list,
    render_results,
    render_synopsis,
)
from repro.core.query_analyzer import FormQuery, SynopsisMatch, SynopsisSearch
from repro.core.ranking import RankCombiner, RankedActivity
from repro.core.search import (
    ActivityResult,
    BusinessActivityDrivenSearch,
    EilResults,
)

__all__ = [
    "EILSystem",
    "BuildReport",
    "FormQuery",
    "SynopsisMatch",
    "SynopsisSearch",
    "BusinessActivityDrivenSearch",
    "EilResults",
    "ActivityResult",
    "RankCombiner",
    "RankedActivity",
    "FacetService",
    "FACET_NAMES",
    "OrganizedInformation",
    "create_schema",
    "DealSynopsis",
    "ContactView",
    "SynopsisBuilder",
    "DataAcquisition",
    "InformationAnalysis",
    "AnalysisResults",
    "FeatureRollup",
    "render_deal_list",
    "render_synopsis",
    "render_results",
    "scope_query",
    "worked_with_query",
    "role_capacity_query",
    "service_keyword_query",
    "GraphQuery",
    "graph_worked_with_query",
    "graph_role_capacity_query",
    "graph_expertise_query",
    "graph_team_overlap_query",
]
