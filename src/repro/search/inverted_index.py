"""Positional inverted index, one posting list per (field, term).

Postings record term positions within each field so phrase queries can
verify adjacency.  The index also maintains the per-field statistics the
BM25 scorer needs: document frequency per term, field length per
document, and average field length.

Two compiled structures sit beside the positional postings so the hot
query path never walks dict-of-dict chains per (term, document):

* :class:`TermPostings` — a flat posting array per (field, term)
  carrying parallel ``doc_ids`` / ``tfs`` / ``lengths`` lists plus the
  running ``max_tf`` (the MaxScore upper-bound ingredient).  Arrays are
  compiled lazily on first access and then maintained *incrementally*:
  ``add`` appends the new document's entry in place, ``remove`` drops
  only the removed document's own (field, term) arrays, so the compile
  cost is never paid again for untouched terms.  Consistency is
  epoch-exact — every mutation that could change an array either
  updates it or invalidates it.
* a metadata value index (``docs_with_metadata``) mapping each hashable
  ``(key, value)`` metadata pair to its document-id set, which lets the
  SIAPI facade turn an activity scope into an id-set ``doc_filter`` the
  engine can push down into posting traversal.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SearchError
from repro.obs import get_registry
from repro.search.analyzer import Analyzer
from repro.search.document import IndexableDocument

__all__ = ["InvertedIndex", "TermPostings"]


class TermPostings:
    """Flat, score-ready posting array for one (field, term).

    Attributes:
        doc_ids: Document ids in insertion order.
        tfs: Term frequency per document (parallel to ``doc_ids``).
        lengths: Field token count per document (parallel).
        max_tf: Largest term frequency seen — an upper-bound ingredient
            for MaxScore pruning (monotone under appends; removals drop
            the whole array, so it is never stale).
    """

    __slots__ = ("doc_ids", "tfs", "lengths", "max_tf")

    def __init__(self) -> None:
        self.doc_ids: List[str] = []
        self.tfs: List[int] = []
        self.lengths: List[int] = []
        self.max_tf = 0

    def append(self, doc_id: str, tf: int, length: int) -> None:
        """Add one document's entry (index ``add`` / lazy compile)."""
        self.doc_ids.append(doc_id)
        self.tfs.append(tf)
        self.lengths.append(length)
        if tf > self.max_tf:
            self.max_tf = tf

    def __len__(self) -> int:
        return len(self.doc_ids)


class InvertedIndex:
    """The engine's storage: documents plus positional postings."""

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self._documents: Dict[str, IndexableDocument] = {}
        # field -> term -> doc_id -> sorted positions
        self._postings: Dict[str, Dict[str, Dict[str, List[int]]]] = {}
        # field -> doc_id -> token count
        self._field_lengths: Dict[str, Dict[str, int]] = {}
        # Running totals so average_length stays O(1); scoring calls it
        # per (term, document) pair and a full re-sum would make large
        # queries quadratic in corpus size.
        self._field_token_totals: Dict[str, int] = {}
        self._token_total = 0
        # doc_id -> field -> distinct terms, so removal only touches the
        # document's own postings instead of the whole field vocabulary.
        self._doc_terms: Dict[str, Dict[str, Set[str]]] = {}
        # (field, term) -> compiled flat postings; lazily built, then
        # incrementally maintained (see module docstring).
        self._compiled: Dict[Tuple[str, str], TermPostings] = {}
        # metadata key -> value -> doc ids (hashable values only).
        self._meta_index: Dict[str, Dict[Any, Set[str]]] = {}
        #: Mutation counter; every ``add``/``remove`` bumps it.  Scorers
        #: key their per-(term, field) idf caches on it.
        self.epoch = 0

    # -- mutation -----------------------------------------------------------

    def add(self, document: IndexableDocument) -> None:
        """Index ``document``; re-adding an id raises (delete first)."""
        if document.doc_id in self._documents:
            raise SearchError(f"document {document.doc_id!r} already indexed")
        self._documents[document.doc_id] = document
        doc_terms = self._doc_terms.setdefault(document.doc_id, {})
        for field_name, text in document.fields.items():
            terms = self.analyzer.analyze(text)
            field_postings = self._postings.setdefault(field_name, {})
            field_terms = doc_terms.setdefault(field_name, set())
            grouped: Dict[str, List[int]] = {}
            for analyzed in terms:
                grouped.setdefault(analyzed.term, []).append(
                    analyzed.position
                )
            length = len(terms)
            for term, positions in grouped.items():
                field_postings.setdefault(term, {})[
                    document.doc_id
                ] = positions
                field_terms.add(term)
                compiled = self._compiled.get((field_name, term))
                if compiled is not None:
                    compiled.append(
                        document.doc_id, len(positions), length
                    )
            self._field_lengths.setdefault(field_name, {})[
                document.doc_id
            ] = length
            self._field_token_totals[field_name] = (
                self._field_token_totals.get(field_name, 0) + length
            )
            self._token_total += length
        for key, value in document.metadata.items():
            try:
                by_value = self._meta_index.setdefault(key, {})
                by_value.setdefault(value, set()).add(document.doc_id)
            except TypeError:
                continue  # unhashable value; never scope-filterable
        self.epoch += 1

    def remove(self, doc_id: str) -> IndexableDocument:
        """Remove a document from the index and return it.

        O(document's own terms) via the reverse map, not O(field
        vocabulary): continuous offboarding (``EILSystem.remove_deal``)
        must not rescan every posting list per document.  Compiled
        posting arrays are invalidated per touched (field, term) only —
        untouched terms keep their arrays.
        """
        document = self._documents.pop(doc_id, None)
        if document is None:
            raise SearchError(f"document {doc_id!r} not indexed")
        doc_terms = self._doc_terms.pop(doc_id, {})
        terms_touched = 0
        for field_name in document.fields:
            field_postings = self._postings.get(field_name, {})
            for term in doc_terms.get(field_name, ()):
                docs = field_postings.get(term)
                if docs is None:
                    continue
                terms_touched += 1
                docs.pop(doc_id, None)
                self._compiled.pop((field_name, term), None)
                if not docs:
                    del field_postings[term]
            if not field_postings and field_name in self._postings:
                del self._postings[field_name]
            lengths = self._field_lengths.get(field_name)
            if lengths is not None:
                length = lengths.pop(doc_id, 0)
                if not lengths:
                    del self._field_lengths[field_name]
                    self._field_token_totals.pop(field_name, None)
                else:
                    self._field_token_totals[field_name] = (
                        self._field_token_totals.get(field_name, 0) - length
                    )
                self._token_total -= length
        for key, value in document.metadata.items():
            by_value = self._meta_index.get(key)
            if by_value is None:
                continue
            try:
                members = by_value.get(value)
            except TypeError:
                continue
            if members is not None:
                members.discard(doc_id)
                if not members:
                    del by_value[value]
        self.epoch += 1
        metrics = get_registry()
        metrics.inc("index.removals")
        metrics.observe("index.remove_terms_touched", terms_touched)
        return document

    # -- lookup ---------------------------------------------------------------

    def document(self, doc_id: str) -> IndexableDocument:
        """Fetch a stored document by id."""
        document = self._documents.get(doc_id)
        if document is None:
            raise SearchError(f"document {doc_id!r} not indexed")
        return document

    def has_document(self, doc_id: str) -> bool:
        """True if ``doc_id`` is indexed."""
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def doc_ids(self) -> Set[str]:
        """Ids of all indexed documents."""
        return set(self._documents)

    @property
    def fields(self) -> List[str]:
        """All field names seen so far."""
        return sorted(self._postings)

    def postings(
        self, term: str, field: Optional[str] = None
    ) -> Dict[str, List[int]]:
        """doc_id -> positions for ``term``.

        With ``field=None`` the postings of all fields are merged
        (positions are only meaningful within one field, so merged
        postings carry position lists per contributing field appended —
        callers doing phrase matching must pass an explicit field).
        """
        if field is not None:
            return dict(self._postings.get(field, {}).get(term, {}))
        merged: Dict[str, List[int]] = {}
        for field_postings in self._postings.values():
            for doc_id, positions in field_postings.get(term, {}).items():
                merged.setdefault(doc_id, []).extend(positions)
        return merged

    def term_postings(
        self, term: str, field: str
    ) -> Optional[TermPostings]:
        """Compiled flat postings for ``(field, term)``, or ``None``.

        First access compiles the array from the positional postings
        (O(df)); afterwards ``add`` appends and ``remove`` invalidates,
        so steady-state queries read a ready-made score-at-match-time
        array.  ``len()`` of the result is the term's in-field document
        frequency.
        """
        key = (field, term)
        compiled = self._compiled.get(key)
        if compiled is None:
            docs = self._postings.get(field, {}).get(term)
            if not docs:
                return None
            lengths = self._field_lengths.get(field, {})
            compiled = TermPostings()
            for doc_id, positions in docs.items():
                compiled.append(
                    doc_id, len(positions), lengths.get(doc_id, 0)
                )
            self._compiled[key] = compiled
            get_registry().inc("index.postings_compiled")
        return compiled

    def max_tf(self, term: str, field: str) -> Optional[int]:
        """``max_tf`` of an already-compiled posting array, else None.

        Deliberately does *not* compile: MaxScore bound estimation must
        stay O(1) even for clauses that end up pruned without ever
        touching their postings.
        """
        compiled = self._compiled.get((field, term))
        return compiled.max_tf if compiled is not None else None

    def matching_docs(self, term: str, field: Optional[str] = None) -> Set[str]:
        """Ids of documents containing ``term`` (optionally in ``field``)."""
        if field is not None:
            return set(self._postings.get(field, {}).get(term, {}))
        matches: Set[str] = set()
        for field_postings in self._postings.values():
            matches.update(field_postings.get(term, {}))
        return matches

    def docs_with_metadata(
        self, key: str, values: Iterable[Any]
    ) -> Set[str]:
        """Ids of documents whose metadata ``key`` is one of ``values``.

        Backed by an incrementally-maintained (key, value) -> id-set
        map, so an activity scope of *k* values resolves in O(k) plus
        the result size — never a corpus scan.  Unhashable values are
        skipped (they can never have been indexed either).
        """
        by_value = self._meta_index.get(key)
        if not by_value:
            return set()
        matches: Set[str] = set()
        for value in values:
            try:
                members = by_value.get(value)
            except TypeError:
                continue
            if members:
                matches.update(members)
        return matches

    def phrase_docs(
        self, terms: List[str], field: Optional[str] = None
    ) -> Set[str]:
        """Documents containing ``terms`` consecutively in one field."""
        if not terms:
            return set()
        fields = [field] if field is not None else list(self._postings)
        matches: Set[str] = set()
        for field_name in fields:
            field_postings = self._postings.get(field_name, {})
            candidate_docs: Optional[Set[str]] = None
            for term in terms:
                docs = set(field_postings.get(term, {}))
                candidate_docs = (
                    docs if candidate_docs is None else candidate_docs & docs
                )
                if not candidate_docs:
                    break
            if not candidate_docs:
                continue
            for doc_id in candidate_docs:
                starts = set(field_postings[terms[0]][doc_id])
                for offset, term in enumerate(terms[1:], start=1):
                    positions = field_postings[term][doc_id]
                    starts &= {p - offset for p in positions}
                    if not starts:
                        break
                if starts:
                    matches.add(doc_id)
        return matches

    # -- statistics ------------------------------------------------------------

    def document_frequency(self, term: str, field: Optional[str] = None) -> int:
        """Number of documents containing ``term``."""
        return len(self.matching_docs(term, field))

    def df(self, term: str, field: Optional[str] = None) -> int:
        """O(1) document-frequency estimate for query planning.

        Per field this is exact.  With ``field=None`` it sums the
        per-field frequencies, which double-counts documents carrying
        the term in several fields — an upper bound, which is all the
        ascending-df AND ordering needs (use
        :meth:`document_frequency` for the exact merged count).
        """
        if field is not None:
            return len(self._postings.get(field, {}).get(term, ()))
        return sum(
            len(field_postings.get(term, ()))
            for field_postings in self._postings.values()
        )

    def term_frequency(
        self, term: str, doc_id: str, field: Optional[str] = None
    ) -> int:
        """Occurrences of ``term`` in ``doc_id`` (optionally per field)."""
        if field is not None:
            return len(
                self._postings.get(field, {}).get(term, {}).get(doc_id, ())
            )
        return sum(
            len(field_postings.get(term, {}).get(doc_id, ()))
            for field_postings in self._postings.values()
        )

    def field_length(self, field: str, doc_id: str) -> int:
        """Token count of ``field`` in ``doc_id`` (0 if absent)."""
        return self._field_lengths.get(field, {}).get(doc_id, 0)

    def field_lengths(self, field: str) -> Dict[str, int]:
        """doc_id -> token count for every document *having* ``field``.

        Presence-aware (a zero-length field instance still appears),
        which is what the segment encoder needs: ``field_length`` alone
        cannot distinguish "absent" from "present but empty", and
        ``field_document_count`` must survive a persistence round-trip.
        """
        return dict(self._field_lengths.get(field, {}))

    def terms_of(self, doc_id: str) -> Dict[str, Set[str]]:
        """field -> distinct analyzed terms of one indexed document.

        Exposes the removal reverse map so layered indexes (the segment
        store's memtable) can invalidate exactly the merged posting
        caches an ``add`` touched, without re-analyzing the document.
        """
        return {
            field: set(terms)
            for field, terms in self._doc_terms.get(doc_id, {}).items()
        }

    def total_length(self, doc_id: str) -> int:
        """Token count across all fields of ``doc_id``."""
        return sum(
            lengths.get(doc_id, 0) for lengths in self._field_lengths.values()
        )

    def average_length(self, field: Optional[str] = None) -> float:
        """Average field length (or average total document length).

        The per-field average divides by the number of documents that
        *have* the field, not the corpus size — a corpus-wide
        denominator deflates avgdl for sparse fields and skews BM25
        length normalization toward long field instances.
        """
        if not self._documents:
            return 0.0
        if field is not None:
            lengths = self._field_lengths.get(field)
            if not lengths:
                return 0.0
            return self._field_token_totals.get(field, 0) / len(lengths)
        return self._token_total / len(self._documents)

    def field_document_count(self, field: str) -> int:
        """Number of documents that have ``field``."""
        return len(self._field_lengths.get(field, {}))

    def field_token_total(self, field: str) -> int:
        """Exact total token count across all documents' ``field``.

        Exposed (as an integer, not a precomputed ratio) so a sharded
        deployment can reconstruct the corpus-global average length
        bit-identically: summing per-shard integer totals and dividing
        once yields the same float as the unsharded
        :meth:`average_length`, whereas averaging per-shard floats would
        not.
        """
        return self._field_token_totals.get(field, 0)

    def token_total(self) -> int:
        """Exact total token count across all fields of all documents."""
        return self._token_total

    def vocabulary(self, field: Optional[str] = None) -> Set[str]:
        """All distinct index terms (optionally restricted to a field)."""
        if field is not None:
            return set(self._postings.get(field, {}))
        terms: Set[str] = set()
        for field_postings in self._postings.values():
            terms.update(field_postings)
        return terms
