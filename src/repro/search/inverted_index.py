"""Positional inverted index, one posting list per (field, term).

Postings record term positions within each field so phrase queries can
verify adjacency.  The index also maintains the per-field statistics the
BM25 scorer needs: document frequency per term, field length per
document, and average field length.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import SearchError
from repro.obs import get_registry
from repro.search.analyzer import Analyzer
from repro.search.document import IndexableDocument

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """The engine's storage: documents plus positional postings."""

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self._documents: Dict[str, IndexableDocument] = {}
        # field -> term -> doc_id -> sorted positions
        self._postings: Dict[str, Dict[str, Dict[str, List[int]]]] = {}
        # field -> doc_id -> token count
        self._field_lengths: Dict[str, Dict[str, int]] = {}
        # Running totals so average_length stays O(1); scoring calls it
        # per (term, document) pair and a full re-sum would make large
        # queries quadratic in corpus size.
        self._field_token_totals: Dict[str, int] = {}
        self._token_total = 0
        # doc_id -> field -> distinct terms, so removal only touches the
        # document's own postings instead of the whole field vocabulary.
        self._doc_terms: Dict[str, Dict[str, Set[str]]] = {}

    # -- mutation -----------------------------------------------------------

    def add(self, document: IndexableDocument) -> None:
        """Index ``document``; re-adding an id raises (delete first)."""
        if document.doc_id in self._documents:
            raise SearchError(f"document {document.doc_id!r} already indexed")
        self._documents[document.doc_id] = document
        doc_terms = self._doc_terms.setdefault(document.doc_id, {})
        for field_name, text in document.fields.items():
            terms = self.analyzer.analyze(text)
            field_postings = self._postings.setdefault(field_name, {})
            field_terms = doc_terms.setdefault(field_name, set())
            for analyzed in terms:
                field_postings.setdefault(analyzed.term, {}).setdefault(
                    document.doc_id, []
                ).append(analyzed.position)
                field_terms.add(analyzed.term)
            self._field_lengths.setdefault(field_name, {})[
                document.doc_id
            ] = len(terms)
            self._field_token_totals[field_name] = (
                self._field_token_totals.get(field_name, 0) + len(terms)
            )
            self._token_total += len(terms)

    def remove(self, doc_id: str) -> IndexableDocument:
        """Remove a document from the index and return it.

        O(document's own terms) via the reverse map, not O(field
        vocabulary): continuous offboarding (``EILSystem.remove_deal``)
        must not rescan every posting list per document.
        """
        document = self._documents.pop(doc_id, None)
        if document is None:
            raise SearchError(f"document {doc_id!r} not indexed")
        doc_terms = self._doc_terms.pop(doc_id, {})
        terms_touched = 0
        for field_name in document.fields:
            field_postings = self._postings.get(field_name, {})
            for term in doc_terms.get(field_name, ()):
                docs = field_postings.get(term)
                if docs is None:
                    continue
                terms_touched += 1
                docs.pop(doc_id, None)
                if not docs:
                    del field_postings[term]
            if not field_postings and field_name in self._postings:
                del self._postings[field_name]
            lengths = self._field_lengths.get(field_name)
            if lengths is not None:
                length = lengths.pop(doc_id, 0)
                if not lengths:
                    del self._field_lengths[field_name]
                    self._field_token_totals.pop(field_name, None)
                else:
                    self._field_token_totals[field_name] = (
                        self._field_token_totals.get(field_name, 0) - length
                    )
                self._token_total -= length
        metrics = get_registry()
        metrics.inc("index.removals")
        metrics.observe("index.remove_terms_touched", terms_touched)
        return document

    # -- lookup ---------------------------------------------------------------

    def document(self, doc_id: str) -> IndexableDocument:
        """Fetch a stored document by id."""
        document = self._documents.get(doc_id)
        if document is None:
            raise SearchError(f"document {doc_id!r} not indexed")
        return document

    def has_document(self, doc_id: str) -> bool:
        """True if ``doc_id`` is indexed."""
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def doc_ids(self) -> Set[str]:
        """Ids of all indexed documents."""
        return set(self._documents)

    @property
    def fields(self) -> List[str]:
        """All field names seen so far."""
        return sorted(self._postings)

    def postings(
        self, term: str, field: Optional[str] = None
    ) -> Dict[str, List[int]]:
        """doc_id -> positions for ``term``.

        With ``field=None`` the postings of all fields are merged
        (positions are only meaningful within one field, so merged
        postings carry position lists per contributing field appended —
        callers doing phrase matching must pass an explicit field).
        """
        if field is not None:
            return dict(self._postings.get(field, {}).get(term, {}))
        merged: Dict[str, List[int]] = {}
        for field_postings in self._postings.values():
            for doc_id, positions in field_postings.get(term, {}).items():
                merged.setdefault(doc_id, []).extend(positions)
        return merged

    def matching_docs(self, term: str, field: Optional[str] = None) -> Set[str]:
        """Ids of documents containing ``term`` (optionally in ``field``)."""
        if field is not None:
            return set(self._postings.get(field, {}).get(term, {}))
        matches: Set[str] = set()
        for field_postings in self._postings.values():
            matches.update(field_postings.get(term, {}))
        return matches

    def phrase_docs(
        self, terms: List[str], field: Optional[str] = None
    ) -> Set[str]:
        """Documents containing ``terms`` consecutively in one field."""
        if not terms:
            return set()
        fields = [field] if field is not None else list(self._postings)
        matches: Set[str] = set()
        for field_name in fields:
            field_postings = self._postings.get(field_name, {})
            candidate_docs: Optional[Set[str]] = None
            for term in terms:
                docs = set(field_postings.get(term, {}))
                candidate_docs = (
                    docs if candidate_docs is None else candidate_docs & docs
                )
                if not candidate_docs:
                    break
            if not candidate_docs:
                continue
            for doc_id in candidate_docs:
                starts = set(field_postings[terms[0]][doc_id])
                for offset, term in enumerate(terms[1:], start=1):
                    positions = field_postings[term][doc_id]
                    starts &= {p - offset for p in positions}
                    if not starts:
                        break
                if starts:
                    matches.add(doc_id)
        return matches

    # -- statistics ------------------------------------------------------------

    def document_frequency(self, term: str, field: Optional[str] = None) -> int:
        """Number of documents containing ``term``."""
        return len(self.matching_docs(term, field))

    def term_frequency(
        self, term: str, doc_id: str, field: Optional[str] = None
    ) -> int:
        """Occurrences of ``term`` in ``doc_id`` (optionally per field)."""
        if field is not None:
            return len(
                self._postings.get(field, {}).get(term, {}).get(doc_id, ())
            )
        return sum(
            len(field_postings.get(term, {}).get(doc_id, ()))
            for field_postings in self._postings.values()
        )

    def field_length(self, field: str, doc_id: str) -> int:
        """Token count of ``field`` in ``doc_id`` (0 if absent)."""
        return self._field_lengths.get(field, {}).get(doc_id, 0)

    def total_length(self, doc_id: str) -> int:
        """Token count across all fields of ``doc_id``."""
        return sum(
            lengths.get(doc_id, 0) for lengths in self._field_lengths.values()
        )

    def average_length(self, field: Optional[str] = None) -> float:
        """Average field length (or average total document length).

        The per-field average divides by the number of documents that
        *have* the field, not the corpus size — a corpus-wide
        denominator deflates avgdl for sparse fields and skews BM25
        length normalization toward long field instances.
        """
        if not self._documents:
            return 0.0
        if field is not None:
            lengths = self._field_lengths.get(field)
            if not lengths:
                return 0.0
            return self._field_token_totals.get(field, 0) / len(lengths)
        return self._token_total / len(self._documents)

    def field_document_count(self, field: str) -> int:
        """Number of documents that have ``field``."""
        return len(self._field_lengths.get(field, {}))

    def vocabulary(self, field: Optional[str] = None) -> Set[str]:
        """All distinct index terms (optionally restricted to a field)."""
        if field is not None:
            return set(self._postings.get(field, {}))
        terms: Set[str] = set()
        for field_postings in self._postings.values():
            terms.update(field_postings)
        return terms
