"""Relevance scoring: BM25 (default) and classic TF-IDF.

Scores are computed per query term per document over the whole document
(all fields merged), which matches how the paper's keyword baseline
treats a workbook document as "a blob of text".  Field weighting is the
engine's concern (it scores fields separately and sums with boosts).

Both scorers expose three entry points:

* :meth:`score` — one (term, document) contribution, the historic API;
* :meth:`score_postings` — the bulk API over a compiled posting array
  (parallel ``tfs`` / ``lengths`` lists from
  :class:`~repro.search.inverted_index.TermPostings`): idf and the
  length-normalization constants are computed **once per (term,
  field)**, so each hit costs one multiply-add instead of four index
  lookups;
* :meth:`upper_bound` — the largest score any document could attain
  for the term, which MaxScore pruning compares against the running
  top-k threshold.

``score`` and ``score_postings`` share the exact same arithmetic
(``mult * tf / (tf + base + scale * length)``), so bulk and per-document
evaluation produce bit-identical floats — the engine's
pruned-vs-exhaustive ranking-equivalence guarantee depends on it.

idf depends only on (corpus size, document frequency); both scorers
memoize it per (field, term) validated against those two numbers, so
repeated queries skip the ``math.log`` without any explicit
invalidation hook.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.search.inverted_index import InvertedIndex

__all__ = ["Scorer", "Bm25Scorer", "TfidfScorer"]

# Idf caches are per-scorer-instance and keyed by (field, term); entries
# self-validate against (N, df).  The cap only guards pathological
# vocabularies — normal query mixes stay far below it.
_IDF_CACHE_MAX = 65536


class Scorer(Protocol):
    """Scoring interface: per-hit, bulk, and upper-bound entry points.

    Third-party scorers may implement only :meth:`score`; the engine
    falls back to per-document evaluation when ``score_postings`` is
    missing and disables MaxScore pruning when ``upper_bound`` is.
    """

    def score(
        self,
        index: InvertedIndex,
        term: str,
        doc_id: str,
        field: Optional[str] = None,
        df: Optional[int] = None,
    ) -> float:
        """Contribution of ``term`` in ``doc_id`` (0 when absent).

        ``df`` lets callers pass a precomputed document frequency; the
        engine scores every matching document of a term in one sweep,
        and recomputing df per document would be quadratic.
        """
        ...

    def score_postings(
        self,
        index: InvertedIndex,
        term: str,
        field: Optional[str],
        tfs: Sequence[int],
        lengths: Sequence[int],
        df: int,
    ) -> List[float]:
        """Bulk contributions for one term's posting array.

        ``tfs`` and ``lengths`` are parallel; ``df`` is the term's full
        in-field document frequency (callers may pass a *filtered*
        slice of the postings, so df cannot be inferred from
        ``len(tfs)``).
        """
        ...

    def upper_bound(
        self,
        index: InvertedIndex,
        term: str,
        field: Optional[str],
        df: int,
        max_tf: Optional[int] = None,
    ) -> float:
        """Largest score any document could attain for ``term``.

        Must be a true upper bound (over-estimates cost pruning
        opportunity, under-estimates would corrupt rankings).
        ``max_tf`` tightens the bound when known.
        """
        ...


class _IdfCache:
    """(field, term) -> idf, self-validated against (N, df).

    idf is fully determined by the corpus size and the document
    frequency, so a cached value is reused exactly when both match —
    no epoch plumbing, and a scorer instance shared across indexes can
    never serve a wrong value.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[Optional[str], str], Tuple[int, int, float]
        ] = {}

    def get(
        self, field: Optional[str], term: str, total: int, df: int
    ) -> Optional[float]:
        entry = self._entries.get((field, term))
        if entry is not None and entry[0] == total and entry[1] == df:
            return entry[2]
        return None

    def put(
        self,
        field: Optional[str],
        term: str,
        total: int,
        df: int,
        idf: float,
    ) -> None:
        if len(self._entries) >= _IDF_CACHE_MAX:
            self._entries.clear()
        self._entries[(field, term)] = (total, df, idf)


class Bm25Scorer:
    """Okapi BM25 with the conventional defaults k1=1.2, b=0.75.

    IDF uses the +1 smoothing from Robertson/Sparck-Jones so terms
    present in most documents still contribute non-negatively.
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0 or not 0 <= b <= 1:
            raise ValueError("require k1 >= 0 and 0 <= b <= 1")
        self.k1 = k1
        self.b = b
        self._idf_cache = _IdfCache()

    def _idf(
        self, index: InvertedIndex, term: str, field: Optional[str], df: int
    ) -> float:
        total = len(index)
        cached = self._idf_cache.get(field, term, total, df)
        if cached is not None:
            return cached
        idf = math.log(1.0 + (total - df + 0.5) / (df + 0.5))
        self._idf_cache.put(field, term, total, df, idf)
        return idf

    def score(
        self,
        index: InvertedIndex,
        term: str,
        doc_id: str,
        field: Optional[str] = None,
        df: Optional[int] = None,
    ) -> float:
        tf = index.term_frequency(term, doc_id, field)
        if tf == 0:
            return 0.0
        if df is None:
            df = index.document_frequency(term, field)
        if field is not None:
            length = index.field_length(field, doc_id)
            average = index.average_length(field)
        else:
            length = index.total_length(doc_id)
            average = index.average_length()
        if average == 0:
            return 0.0
        idf = self._idf(index, term, field, df)
        mult = idf * (self.k1 + 1.0)
        base = self.k1 * (1.0 - self.b)
        scale = self.k1 * self.b / average
        return mult * tf / (tf + base + scale * length)

    def score_postings(
        self,
        index: InvertedIndex,
        term: str,
        field: Optional[str],
        tfs: Sequence[int],
        lengths: Sequence[int],
        df: int,
    ) -> List[float]:
        if df <= 0 or not tfs:
            return []
        if field is not None:
            average = index.average_length(field)
        else:
            average = index.average_length()
        if average == 0:
            return [0.0] * len(tfs)
        idf = self._idf(index, term, field, df)
        mult = idf * (self.k1 + 1.0)
        base = self.k1 * (1.0 - self.b)
        scale = self.k1 * self.b / average
        return [
            mult * tf / (tf + base + scale * length)
            for tf, length in zip(tfs, lengths)
        ]

    def upper_bound(
        self,
        index: InvertedIndex,
        term: str,
        field: Optional[str],
        df: int,
        max_tf: Optional[int] = None,
    ) -> float:
        if df <= 0:
            return 0.0
        idf = self._idf(index, term, field, df)
        mult = idf * (self.k1 + 1.0)
        if max_tf:
            base = self.k1 * (1.0 - self.b)
            if base > 0:
                # score <= mult*tf/(tf+base) which increases in tf.
                return mult * max_tf / (max_tf + base)
        return mult

    def clear_caches(self) -> None:
        """Drop the idf cache (tests and long-lived multi-index use)."""
        self._idf_cache = _IdfCache()


class TfidfScorer:
    """log-scaled TF x smoothed IDF, the classic vector-space weight."""

    def __init__(self) -> None:
        self._idf_cache = _IdfCache()

    def _idf(
        self, index: InvertedIndex, term: str, field: Optional[str], df: int
    ) -> float:
        total = len(index)
        cached = self._idf_cache.get(field, term, total, df)
        if cached is not None:
            return cached
        idf = math.log((1 + total) / (1 + df)) + 1.0
        self._idf_cache.put(field, term, total, df, idf)
        return idf

    def score(
        self,
        index: InvertedIndex,
        term: str,
        doc_id: str,
        field: Optional[str] = None,
        df: Optional[int] = None,
    ) -> float:
        tf = index.term_frequency(term, doc_id, field)
        if tf == 0:
            return 0.0
        if df is None:
            df = index.document_frequency(term, field)
        idf = self._idf(index, term, field, df)
        return (1.0 + math.log(tf)) * idf

    def score_postings(
        self,
        index: InvertedIndex,
        term: str,
        field: Optional[str],
        tfs: Sequence[int],
        lengths: Sequence[int],
        df: int,
    ) -> List[float]:
        if df <= 0 or not tfs:
            return []
        idf = self._idf(index, term, field, df)
        return [(1.0 + math.log(tf)) * idf for tf in tfs]

    def upper_bound(
        self,
        index: InvertedIndex,
        term: str,
        field: Optional[str],
        df: int,
        max_tf: Optional[int] = None,
    ) -> float:
        if df <= 0:
            return 0.0
        idf = self._idf(index, term, field, df)
        if max_tf is None:
            # tf is unbounded a priori; never prune on this clause.
            return math.inf
        return (1.0 + math.log(max_tf)) * idf

    def clear_caches(self) -> None:
        """Drop the idf cache (tests and long-lived multi-index use)."""
        self._idf_cache = _IdfCache()
