"""Relevance scoring: BM25 (default) and classic TF-IDF.

Scores are computed per query term per document over the whole document
(all fields merged), which matches how the paper's keyword baseline
treats a workbook document as "a blob of text".  Field weighting is the
engine's concern (it scores fields separately and sums with boosts).
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

from repro.search.inverted_index import InvertedIndex

__all__ = ["Scorer", "Bm25Scorer", "TfidfScorer"]


class Scorer(Protocol):
    """Scoring interface: one (term, document) contribution at a time."""

    def score(
        self,
        index: InvertedIndex,
        term: str,
        doc_id: str,
        field: Optional[str] = None,
        df: Optional[int] = None,
    ) -> float:
        """Contribution of ``term`` in ``doc_id`` (0 when absent).

        ``df`` lets callers pass a precomputed document frequency; the
        engine scores every matching document of a term in one sweep,
        and recomputing df per document would be quadratic.
        """
        ...


class Bm25Scorer:
    """Okapi BM25 with the conventional defaults k1=1.2, b=0.75.

    IDF uses the +1 smoothing from Robertson/Sparck-Jones so terms
    present in most documents still contribute non-negatively.
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0 or not 0 <= b <= 1:
            raise ValueError("require k1 >= 0 and 0 <= b <= 1")
        self.k1 = k1
        self.b = b

    def score(
        self,
        index: InvertedIndex,
        term: str,
        doc_id: str,
        field: Optional[str] = None,
        df: Optional[int] = None,
    ) -> float:
        tf = index.term_frequency(term, doc_id, field)
        if tf == 0:
            return 0.0
        if df is None:
            df = index.document_frequency(term, field)
        total = len(index)
        idf = math.log(1.0 + (total - df + 0.5) / (df + 0.5))
        if field is not None:
            length = index.field_length(field, doc_id)
            average = index.average_length(field)
        else:
            length = index.total_length(doc_id)
            average = index.average_length()
        if average == 0:
            return 0.0
        norm = self.k1 * (1 - self.b + self.b * length / average)
        return idf * tf * (self.k1 + 1) / (tf + norm)


class TfidfScorer:
    """log-scaled TF x smoothed IDF, the classic vector-space weight."""

    def score(
        self,
        index: InvertedIndex,
        term: str,
        doc_id: str,
        field: Optional[str] = None,
        df: Optional[int] = None,
    ) -> float:
        tf = index.term_frequency(term, doc_id, field)
        if tf == 0:
            return 0.0
        if df is None:
            df = index.document_frequency(term, field)
        total = len(index)
        idf = math.log((1 + total) / (1 + df)) + 1.0
        return (1.0 + math.log(tf)) * idf
