"""Analysis pipeline: text -> index terms with positions.

The same analyzer instance must be used at index time and at query time
(stemming and stopping must agree on both sides); the engine owns one
and exposes it to the query parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOPWORDS
from repro.text.tokenizer import Tokenizer

__all__ = ["AnalyzedTerm", "Analyzer"]


@dataclass(frozen=True)
class AnalyzedTerm:
    """A term ready for the index.

    Attributes:
        term: The normalized (lower-cased, stemmed) index term.
        position: Ordinal of the term in its field (stopwords consume
            positions so phrase queries stay aligned with the original
            text).
        start: Character offset in the source field.
        end: One past the last character.
    """

    term: str
    position: int
    start: int
    end: int


class Analyzer:
    """Tokenize, case-fold, drop stopwords, stem.

    Args:
        use_stemming: Disable to index surface forms (used by tests and
            the exact-match People index).
        use_stopwords: Disable to keep every token.
    """

    def __init__(self, use_stemming: bool = True, use_stopwords: bool = True):
        self._tokenizer = Tokenizer()
        self._stemmer = PorterStemmer() if use_stemming else None
        self._stopwords = STOPWORDS if use_stopwords else frozenset()

    def analyze(self, text: str) -> List[AnalyzedTerm]:
        """Produce index terms for one field of text."""
        terms: List[AnalyzedTerm] = []
        for position, token in enumerate(self._tokenizer.iter_tokens(text)):
            lowered = token.text.lower()
            if lowered in self._stopwords:
                continue
            if self._stemmer is not None:
                lowered = self._stemmer.stem(lowered)
            terms.append(AnalyzedTerm(lowered, position, token.start, token.end))
        return terms

    def analyze_query_terms(self, text: str) -> List[str]:
        """Normalize query text into bare terms (for term/phrase queries)."""
        return [t.term for t in self.analyze(text)]
