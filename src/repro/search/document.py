"""Indexable document model for the full-text engine.

A document is a set of named text fields (``title``, ``body``, ...) plus
opaque metadata the engine stores but does not interpret — EIL uses the
metadata to carry the owning business activity (``deal_id``), document
type and repository, which the scoped SIAPI search and the access-control
layer read back from hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.errors import SearchError

__all__ = ["IndexableDocument", "SearchHit"]


@dataclass(frozen=True)
class IndexableDocument:
    """One unit of indexing.

    Attributes:
        doc_id: Unique identifier within the engine.
        fields: Field name -> text content.
        metadata: Application data carried through to hits unchanged.
    """

    doc_id: str
    fields: Mapping[str, str]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise SearchError("doc_id must be non-empty")
        if not self.fields:
            raise SearchError(f"document {self.doc_id!r} has no fields")
        for name, text in self.fields.items():
            if not isinstance(text, str):
                raise SearchError(
                    f"field {name!r} of {self.doc_id!r} is not text"
                )
        # Freeze the mappings so documents are safely shareable.
        object.__setattr__(self, "fields", dict(self.fields))
        object.__setattr__(self, "metadata", dict(self.metadata))

    @property
    def text(self) -> str:
        """All field text concatenated (used for snippets)."""
        return "\n".join(self.fields.values())


@dataclass(frozen=True)
class SearchHit:
    """One scored result.

    Attributes:
        doc_id: The matching document's id.
        score: Relevance score (higher is better).
        document: The stored document.
        snippet: A short extract around the first match, if computed.
    """

    doc_id: str
    score: float
    document: IndexableDocument
    snippet: str = ""

    @property
    def metadata(self) -> Dict[str, Any]:
        """Shortcut to the stored document's metadata."""
        return dict(self.document.metadata)
