"""Full-text search engine (the paper's OmniFind substitute).

Public surface::

    from repro.search import SearchEngine, IndexableDocument, SiapiQuery

    engine = SearchEngine()
    engine.add(IndexableDocument("doc1", {"title": "...", "body": "..."},
                                 {"deal_id": "d1"}))
    hits = engine.search('"end user services" -template')

Features: positional inverted index, Porter-stemmed analysis, BM25 and
TF-IDF scoring, a keyword query language with phrases/fields/AND/OR/NOT,
SIAPI facade with activity-scoped search and grouped activity ranking,
and a resilient crawler.
"""

from repro.search.analyzer import AnalyzedTerm, Analyzer
from repro.search.crawler import Crawler, CrawlReport, DocumentSource
from repro.search.document import IndexableDocument, SearchHit
from repro.search.engine import ExecutionOptions, SearchEngine
from repro.search.inverted_index import InvertedIndex, TermPostings
from repro.search.querylang import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    Query,
    TermQuery,
    parse_query,
)
from repro.search.scoring import Bm25Scorer, Scorer, TfidfScorer
from repro.search.siapi import ActivityHits, SiapiQuery, SiapiService

__all__ = [
    "Analyzer",
    "AnalyzedTerm",
    "Crawler",
    "CrawlReport",
    "DocumentSource",
    "IndexableDocument",
    "SearchHit",
    "SearchEngine",
    "ExecutionOptions",
    "InvertedIndex",
    "TermPostings",
    "Query",
    "TermQuery",
    "PhraseQuery",
    "AndQuery",
    "OrQuery",
    "NotQuery",
    "parse_query",
    "Bm25Scorer",
    "TfidfScorer",
    "Scorer",
    "SiapiQuery",
    "SiapiService",
    "ActivityHits",
]
