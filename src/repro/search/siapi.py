"""SIAPI (Search and Index API) facade over the search engine.

This mirrors the role OmniFind's SIAPI plays in the paper: the EIL query
analyzer builds a :class:`SiapiQuery` from the form fields ("all of these
words", "the exact phrase", ...; see paper Fig. 8), and executes it
either unscoped or *scoped to a set of business activities* — the
activities returned by the synopsis query (paper Fig. 1 steps 7-8).

Activity-level relevance follows Section 3: per-document scores are
normalized by the best score in the result set, then averaged per
activity.

Fault behaviour: this facade adds no fault point of its own — the
``index`` fault point lives one layer down, in
:meth:`~repro.search.engine.SearchEngine.search` /
:meth:`~repro.search.engine.SearchEngine.count` — so every SIAPI entry
(search, count, search_grouped) surfaces the same
:class:`~repro.errors.TransientError` stream.  Callers that need to
survive an index outage wrap these calls in the ``siapi`` circuit
breaker (see :mod:`repro.core.search` and docs/OPERATIONS.md).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import QuerySyntaxError
from repro.obs import get_registry
from repro.search.document import SearchHit
from repro.search.engine import SearchEngine
from repro.search.querylang import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    Query,
    TermQuery,
    parse_query,
)

__all__ = ["SiapiQuery", "ActivityHits", "SiapiService"]


@dataclass(frozen=True)
class SiapiQuery:
    """A form-shaped keyword query (paper Fig. 8, "with this text").

    Attributes:
        all_words: Every word must appear.
        exact_phrase: Must appear consecutively.
        any_words: At least one must appear.
        none_words: None may appear.
        search_field: Restrict to one indexed field (None = anywhere).
        raw: Free-form query string in the engine grammar; combined
            conjunctively with the structured parts when present.
    """

    all_words: str = ""
    exact_phrase: str = ""
    any_words: str = ""
    none_words: str = ""
    search_field: Optional[str] = None
    raw: str = ""

    def is_empty(self) -> bool:
        """True when no text criteria were entered."""
        return not any(
            (self.all_words.strip(), self.exact_phrase.strip(),
             self.any_words.strip(), self.none_words.strip(),
             self.raw.strip())
        )

    def to_query(self) -> Query:
        """Compile the form fields into a query AST."""
        clauses: List[Query] = []
        for word in self.all_words.split():
            clauses.append(TermQuery(word, self.search_field))
        if self.exact_phrase.strip():
            clauses.append(
                PhraseQuery(self.exact_phrase.strip(), self.search_field)
            )
        any_terms = [
            TermQuery(word, self.search_field)
            for word in self.any_words.split()
        ]
        if any_terms:
            clauses.append(
                any_terms[0] if len(any_terms) == 1
                else OrQuery(tuple(any_terms))
            )
        for word in self.none_words.split():
            clauses.append(NotQuery(TermQuery(word, self.search_field)))
        if self.raw.strip():
            clauses.append(parse_query(self.raw))
        if not clauses:
            raise QuerySyntaxError("empty SIAPI query")
        if len(clauses) == 1:
            return clauses[0]
        return AndQuery(tuple(clauses))


@dataclass
class ActivityHits:
    """All hits of one business activity, with its combined relevance.

    Attributes:
        activity_id: The business activity (deal) identifier.
        score: Average normalized document score, in [0, 1].
        hits: The activity's document hits, best first.
    """

    activity_id: str
    score: float
    hits: List[SearchHit] = field(default_factory=list)


class SiapiService:
    """Executes SIAPI queries, optionally scoped to activities.

    Args:
        engine: The underlying search engine.
        activity_key: Metadata key holding each document's business
            activity id.
    """

    def __init__(self, engine: SearchEngine, activity_key: str = "deal_id"):
        self.engine = engine
        self.activity_key = activity_key

    def _scope_filter(
        self, scope: Optional[Set[str]]
    ) -> Optional[frozenset]:
        """Resolve an activity scope to a document-id set.

        The index maintains a metadata value index, so the scope
        becomes a concrete id set the engine can push down into posting
        traversal *and* fold into its result-cache key — predicate
        filters could do neither (they are opaque and uncacheable).
        """
        if scope is None:
            return None
        return frozenset(
            self.engine.index.docs_with_metadata(self.activity_key, scope)
        )

    def search(
        self,
        query: SiapiQuery,
        scope: Optional[Set[str]] = None,
        limit: Optional[int] = None,
    ) -> List[SearchHit]:
        """Ranked document hits; ``scope`` restricts to those activities."""
        return self.engine.search(
            query.to_query(), limit, self._scope_filter(scope)
        )

    def count(self, query: SiapiQuery, scope: Optional[Set[str]] = None) -> int:
        """Number of matching documents (the paper's "N documents")."""
        return self.engine.count(query.to_query(), self._scope_filter(scope))

    def search_grouped(
        self,
        query: SiapiQuery,
        scope: Optional[Set[str]] = None,
        per_activity_limit: Optional[int] = None,
        activity_limit: Optional[int] = None,
    ) -> List[ActivityHits]:
        """Hits grouped by business activity with normalized scores.

        Per Section 3 of the paper: document scores are normalized by
        the maximum in the result set, then averaged within each
        activity; activities sort by that average.  ``activity_limit``
        keeps only the best activities (score normalization still sees
        every hit, so kept activities score identically either way).
        """
        hits = self.search(query, scope)
        metrics = get_registry()
        metrics.observe("siapi.hits", len(hits))
        if not hits:
            return []
        best = max(hit.score for hit in hits) or 1.0
        grouped: Dict[str, List[Tuple[float, SearchHit]]] = {}
        for hit in hits:
            activity = hit.metadata.get(self.activity_key)
            if activity is None:
                continue
            grouped.setdefault(activity, []).append((hit.score / best, hit))
        results = []
        for activity_id, scored in grouped.items():
            scored.sort(key=lambda pair: (-pair[0], pair[1].doc_id))
            trimmed = scored[:per_activity_limit] if per_activity_limit else scored
            results.append(
                ActivityHits(
                    activity_id=activity_id,
                    score=sum(s for s, _ in scored) / len(scored),
                    hits=[hit for _, hit in trimmed],
                )
            )
        metrics.observe("siapi.activities_matched", len(results))
        if activity_limit is not None and activity_limit < len(results):
            return heapq.nsmallest(
                activity_limit,
                results,
                key=lambda a: (-a.score, a.activity_id),
            )
        results.sort(key=lambda a: (-a.score, a.activity_id))
        return results
