"""The keyword search engine (OmniFind substitute).

Interprets the query AST over the inverted index, scores hits with BM25
(configurable), and returns ranked :class:`SearchHit` lists with
snippets.  A ``doc_filter`` restricts the searchable set — this is the
hook the SIAPI facade uses to scope a search to the business activities
selected by the synopsis query (paper Fig. 1, step 8).
"""

from __future__ import annotations

import re
from collections.abc import Set as AbstractSet
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Union

from repro.cache import LruCache
from repro.errors import SearchError
from repro.faults import get_injector
from repro.obs import get_registry
from repro.search.analyzer import Analyzer
from repro.search.document import IndexableDocument, SearchHit
from repro.search.inverted_index import InvertedIndex
from repro.search.querylang import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    Query,
    TermQuery,
    parse_query,
)
from repro.search.scoring import Bm25Scorer, Scorer

__all__ = ["SearchEngine"]

DocFilter = Union[AbstractSet[str], Callable[[IndexableDocument], bool], None]


class SearchEngine:
    """Index + query interpreter + ranker.

    Args:
        analyzer: Shared analysis pipeline (defaults to stemmed+stopped).
        scorer: Term scorer (defaults to BM25).
        field_boosts: Multiplier per field name; unlisted fields get 1.0.
            EIL boosts ``title`` because slide titles carry the key point
            (paper Section 3.3, "Custom Parsing").
        cache_size: Result-cache capacity (0 disables caching).  Keys
            embed the index ``epoch``, which every ``add``/``remove``
            bumps, so cached results can never outlive the index state
            they were computed against.
    """

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        scorer: Optional[Scorer] = None,
        field_boosts: Optional[Mapping[str, float]] = None,
        cache_size: int = 256,
    ) -> None:
        self.analyzer = analyzer or Analyzer()
        self.scorer: Scorer = scorer or Bm25Scorer()
        self.field_boosts = dict(field_boosts or {})
        self.index = InvertedIndex(self.analyzer)
        self.epoch = 0
        self._cache = LruCache("engine.cache", cache_size)

    # -- indexing -----------------------------------------------------------

    def add(self, document: IndexableDocument) -> None:
        """Index one document."""
        self.index.add(document)
        self.epoch += 1

    def add_all(self, documents: Iterable[IndexableDocument]) -> int:
        """Index many documents; returns the count."""
        count = 0
        for document in documents:
            self.add(document)
            count += 1
        return count

    def remove(self, doc_id: str) -> None:
        """Remove a document from the index."""
        self.index.remove(doc_id)
        self.epoch += 1

    def __len__(self) -> int:
        return len(self.index)

    # -- search --------------------------------------------------------------

    def search(
        self,
        query: Union[str, Query],
        limit: Optional[int] = None,
        doc_filter: DocFilter = None,
    ) -> List[SearchHit]:
        """Run ``query`` and return ranked hits.

        Args:
            query: Query string (parsed with the engine's grammar) or a
                prebuilt AST.
            limit: Maximum hits to return (None = all).
            doc_filter: Restrict the searchable set — either a set of
                doc ids or a predicate over stored documents.

        Returns:
            Hits sorted by descending score; ties broken by doc id for
            determinism.

        This is the ``index`` fault point (the engine stands in for the
        OmniFind service, which can be down as a whole): an installed
        injector checks *before* the result cache, modelling an
        unreachable service rather than a slow query.
        """
        get_injector().check("index")
        if isinstance(query, str):
            query = parse_query(query)
        metrics = get_registry()
        metrics.inc("engine.searches")
        cache_key = self._cache_key(query, limit, doc_filter)
        if cache_key is not None:
            cached = self._cache.get(cache_key)
            if cached is not None:
                return list(cached)
        scores = self._match(query)
        metrics.observe("engine.candidates", len(scores))
        scores = self._apply_doc_filter(scores, doc_filter)
        metrics.observe("engine.candidates_after_filter", len(scores))
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        if limit is not None:
            ranked = ranked[:limit]
        surfaces = _query_surfaces(query)
        hits = []
        for doc_id, score in ranked:
            document = self.index.document(doc_id)
            hits.append(
                SearchHit(
                    doc_id=doc_id,
                    score=score,
                    document=document,
                    snippet=_make_snippet(document.text, surfaces),
                )
            )
        if cache_key is not None:
            self._cache.put(cache_key, hits)
        return list(hits)

    def _cache_key(
        self,
        query: Query,
        limit: Optional[int],
        doc_filter: DocFilter,
    ):
        """Hashable cache key, or None when the search is uncacheable.

        Predicate filters are opaque (no stable identity), so those
        searches always recompute; id-set filters are folded into the
        key as frozensets.  The index epoch is part of every key, which
        is how ``add``/``remove`` invalidate without touching the cache.
        """
        if doc_filter is None:
            filter_key = None
        elif isinstance(doc_filter, AbstractSet):
            filter_key = frozenset(doc_filter)
        else:
            # Predicates have no stable identity; invalid filters must
            # still reach _apply_doc_filter to raise SearchError.
            return None
        try:
            hash(query)
        except TypeError:  # pragma: no cover - unhashable custom node
            return None
        return (self.epoch, query, limit, filter_key)

    def count(self, query: Union[str, Query], doc_filter: DocFilter = None) -> int:
        """Number of documents matching ``query`` (no ranking work)."""
        get_injector().check("index")
        if isinstance(query, str):
            query = parse_query(query)
        get_registry().inc("engine.counts")
        return len(self._apply_doc_filter(self._match(query), doc_filter))

    def _apply_doc_filter(
        self, scores: Dict[str, float], doc_filter: DocFilter
    ) -> Dict[str, float]:
        """Restrict matches to the filter's documents.

        Any :class:`collections.abc.Set` (``set``, ``frozenset``, dict
        key views, ...) is treated as an id set; otherwise the filter
        is a predicate over stored documents, applied only to the
        already-matched candidates — never materialized over the whole
        corpus.
        """
        if doc_filter is None:
            return scores
        if isinstance(doc_filter, AbstractSet):
            return {
                doc_id: score
                for doc_id, score in scores.items()
                if doc_id in doc_filter
            }
        if callable(doc_filter):
            return {
                doc_id: score
                for doc_id, score in scores.items()
                if doc_filter(self.index.document(doc_id))
            }
        raise SearchError(
            f"doc_filter must be a set of ids or a predicate, "
            f"got {type(doc_filter).__name__}"
        )

    # -- query interpretation ----------------------------------------------

    def _match(self, query: Query) -> Dict[str, float]:
        """Evaluate a query node to doc_id -> score."""
        if isinstance(query, TermQuery):
            return self._match_term(query)
        if isinstance(query, PhraseQuery):
            return self._match_phrase(query)
        if isinstance(query, AndQuery):
            return self._match_and(query.clauses)
        if isinstance(query, OrQuery):
            return self._match_or(query.clauses)
        if isinstance(query, NotQuery):
            # A bare negation matches everything except the clause; at
            # top level that is "all documents minus matches" with a
            # flat score, mirroring common engine behaviour.
            excluded = set(self._match(query.clause))
            return {
                doc_id: 0.0
                for doc_id in self.index.doc_ids - excluded
            }
        raise SearchError(f"unknown query node {query!r}")

    def _match_term(self, query: TermQuery) -> Dict[str, float]:
        terms = self.analyzer.analyze_query_terms(query.text)
        if not terms:
            return {}
        if len(terms) > 1:
            # A "term" that analyzes into several tokens (hyphens etc.)
            # behaves as an implicit AND of its parts.
            return self._match_and(
                tuple(TermQuery(t, query.field) for t in terms)
            )
        return self._score_term(terms[0], query.field)

    def _score_term(self, term: str, field: Optional[str]) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        fields = [field] if field is not None else self.index.fields
        metrics = get_registry()
        metrics.inc("engine.terms_scored")
        for field_name in fields:
            boost = self.field_boosts.get(field_name, 1.0)
            matching = self.index.matching_docs(term, field_name)
            df = len(matching)  # computed once per (term, field)
            metrics.inc("engine.postings_touched", df)
            for doc_id in matching:
                contribution = self.scorer.score(
                    self.index, term, doc_id, field_name, df=df
                )
                scores[doc_id] = scores.get(doc_id, 0.0) + boost * contribution
        return scores

    def _match_phrase(self, query: PhraseQuery) -> Dict[str, float]:
        terms = self.analyzer.analyze_query_terms(query.text)
        if not terms:
            return {}
        if len(terms) == 1:
            return self._score_term(terms[0], query.field)
        docs = self.index.phrase_docs(terms, query.field)
        # Score each member term once over its full matching set, then
        # sum per phrase document (per-document rescoring is quadratic).
        contributions = [
            self._score_term(term, query.field) for term in terms
        ]
        scores: Dict[str, float] = {}
        for doc_id in docs:
            total = sum(c.get(doc_id, 0.0) for c in contributions)
            # Phrase matches are stronger evidence than the bag of words.
            scores[doc_id] = total * 1.25
        return scores

    def _match_and(self, clauses) -> Dict[str, float]:
        positive: Optional[Dict[str, float]] = None
        negative: Set[str] = set()
        for clause in clauses:
            if isinstance(clause, NotQuery):
                negative.update(self._match(clause.clause))
                continue
            matched = self._match(clause)
            if positive is None:
                positive = dict(matched)
            else:
                positive = {
                    doc_id: score + matched[doc_id]
                    for doc_id, score in positive.items()
                    if doc_id in matched
                }
            if not positive:
                return {}
        if positive is None:
            # All clauses negative: everything except the exclusions.
            return {
                doc_id: 0.0 for doc_id in self.index.doc_ids - negative
            }
        return {
            doc_id: score
            for doc_id, score in positive.items()
            if doc_id not in negative
        }

    def _match_or(self, clauses) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        for clause in clauses:
            for doc_id, score in self._match(clause).items():
                scores[doc_id] = max(scores.get(doc_id, 0.0), score)
        return scores


def _query_surfaces(query: Query) -> List[str]:
    """Positive surface strings in the query, for snippet highlighting."""
    if isinstance(query, TermQuery):
        return [query.text]
    if isinstance(query, PhraseQuery):
        return [query.text]
    if isinstance(query, (AndQuery, OrQuery)):
        surfaces: List[str] = []
        for clause in query.clauses:
            surfaces.extend(_query_surfaces(clause))
        return surfaces
    return []  # NotQuery: nothing to highlight


def _make_snippet(text: str, surfaces: List[str], width: int = 80) -> str:
    """A short window of text around the first query-term occurrence."""
    lowered = text.lower()
    best = None
    for surface in surfaces:
        position = lowered.find(surface.lower())
        if position != -1 and (best is None or position < best):
            best = position
    if best is None:
        snippet = text[:width]
    else:
        start = max(0, best - width // 3)
        snippet = text[start:start + width]
    return re.sub(r"\s+", " ", snippet).strip()
