"""The keyword search engine (OmniFind substitute).

Executes the query AST over the inverted index, scores hits with BM25
(configurable), and returns ranked :class:`SearchHit` lists with
snippets.  A ``doc_filter`` restricts the searchable set — this is the
hook the SIAPI facade uses to scope a search to the business activities
selected by the synopsis query (paper Fig. 1, step 8).

Execution model (docs/ARCHITECTURE.md, "Query execution engine"):
queries run through a small planner/executor rather than a naive
interpreter.

* **Bulk scoring** — each (term, field) is scored over its compiled
  flat posting array (:class:`~repro.search.inverted_index
  .TermPostings`) in one ``score_postings`` call: idf and the length
  norm constants are computed once, each hit costs a multiply-add.
* **df-ordered AND** — conjunction clauses evaluate in ascending
  document-frequency order and the running intersection is pushed into
  every later clause's posting traversal, so big terms only score
  documents the small terms already admitted.
* **Filter pushdown** — an id-set ``doc_filter`` (the SIAPI activity
  scope) is intersected during posting traversal; out-of-scope
  documents are never scored.
* **Top-k + MaxScore** — with a ``limit``, OR/hybrid queries select
  hits with a bounded heap instead of a full sort, and whole OR
  clauses are skipped once their score upper bound drops below the
  running k-th best score.

Every optimization is individually toggleable through
:class:`ExecutionOptions`; ``ExecutionOptions.exhaustive()`` reproduces
the original interpreter and serves as the reference mode.  Pruned and
exhaustive execution return **identical rankings** (same documents,
bit-identical scores, same tie-breaks) — the scorers share their
arithmetic between per-document and bulk paths, AND contributions are
summed in clause order regardless of evaluation order, and MaxScore
only skips a clause when its bound is *strictly* below the k-th best
score.
"""

from __future__ import annotations

import heapq
import math
import re
from collections.abc import Set as AbstractSet
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.cache import LruCache
from repro.concurrency import ReadWriteLock
from repro.errors import SearchError
from repro.faults import get_injector
from repro.obs import get_registry
from repro.search.analyzer import Analyzer
from repro.search.document import IndexableDocument, SearchHit
from repro.search.inverted_index import InvertedIndex
from repro.search.querylang import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    Query,
    TermQuery,
    parse_query,
)
from repro.search.scoring import Bm25Scorer, Scorer

__all__ = ["SearchEngine", "ExecutionOptions"]

DocFilter = Union[AbstractSet[str], Callable[[IndexableDocument], bool], None]

#: Phrase matches are stronger evidence than the bag of words.
_PHRASE_BOOST = 1.25

# When an id-set filter is much smaller than a posting list, probe the
# filter against the index instead of scanning the posting array.
_PROBE_RATIO = 8


@dataclass(frozen=True)
class ExecutionOptions:
    """Per-optimization toggles for the query executor.

    The defaults enable everything; :meth:`exhaustive` disables
    everything and reproduces the original interpreter (per-document
    scoring, clause-order evaluation, post-hoc filtering, full sort) —
    the reference mode the equivalence suite and the benchmark ablation
    compare against.

    Attributes:
        bulk_scoring: Score compiled posting arrays via
            ``Scorer.score_postings`` instead of one ``Scorer.score``
            call per (term, document).
        df_ordering: Evaluate AND clauses in ascending df order and
            push the running intersection into later clauses (also
            restricts phrase member-term scoring to phrase documents).
        filter_pushdown: Intersect id-set ``doc_filter``s during
            posting traversal instead of after scoring.  Predicate
            filters always apply post-hoc (they have no id set to push).
        maxscore: Prune whole OR clauses whose score upper bound falls
            strictly below the running k-th best score (requires a
            ``limit``; automatically disabled for predicate filters and
            for scorers without ``upper_bound``).
        top_k_heap: Select the top ``limit`` hits with a bounded heap
            instead of sorting every candidate.
    """

    bulk_scoring: bool = True
    df_ordering: bool = True
    filter_pushdown: bool = True
    maxscore: bool = True
    top_k_heap: bool = True

    @classmethod
    def exhaustive(cls) -> "ExecutionOptions":
        """The reference mode: every optimization off."""
        return cls(
            bulk_scoring=False,
            df_ordering=False,
            filter_pushdown=False,
            maxscore=False,
            top_k_heap=False,
        )


class _CachedRanking:
    """One cached ranking: an immutable hit tuple plus its coverage.

    ``limit is None`` means the ranking is complete; otherwise it holds
    the top ``limit`` hits and can serve any request asking for that
    many or fewer.  (A limited computation that found fewer hits than
    its limit is stored as complete — nothing was cut off.)
    """

    __slots__ = ("hits", "limit")

    def __init__(self, hits: Tuple[SearchHit, ...], limit: Optional[int]):
        self.hits = hits
        self.limit = (
            None if limit is not None and len(hits) < limit else limit
        )

    def covers(self, requested: Optional[int]) -> bool:
        if self.limit is None:
            return True
        return requested is not None and requested <= self.limit

    def slice(self, requested: Optional[int]) -> List[SearchHit]:
        if requested is None:
            return list(self.hits)
        return list(self.hits[:requested])


class _Execution:
    """One query evaluation: options, normalized filter, scratch state.

    The executor keeps per-search state (memoized query-term analysis,
    candidate counts for metrics) out of the engine so concurrent
    searches never share mutables.
    """

    def __init__(
        self,
        engine: "SearchEngine",
        options: ExecutionOptions,
        doc_filter: DocFilter,
    ) -> None:
        self.engine = engine
        self.index = engine.index
        self.scorer = engine.scorer
        self.boosts = engine.field_boosts
        self.options = options
        self.metrics = get_registry()
        self.filter_ids: Optional[frozenset] = None
        self.predicate: Optional[Callable[[IndexableDocument], bool]] = None
        if doc_filter is None:
            pass
        elif isinstance(doc_filter, AbstractSet):
            self.filter_ids = frozenset(doc_filter)
        elif callable(doc_filter):
            self.predicate = doc_filter
        else:
            raise SearchError(
                f"doc_filter must be a set of ids or a predicate, "
                f"got {type(doc_filter).__name__}"
            )
        # Id sets push into traversal only when the option is on; the
        # post-filter picks up whatever was not pushed.
        self.push_ids = (
            self.filter_ids if options.filter_pushdown else None
        )
        self._terms_cache: Dict[str, List[str]] = {}
        self.n_candidates = 0
        self.n_after_filter = 0

    # -- entry ----------------------------------------------------------------

    def ranked(
        self, query: Query, limit: Optional[int]
    ) -> List[Tuple[str, float]]:
        """Evaluate ``query`` and return the (doc_id, score) ranking."""
        if self._prunable(query, limit):
            scores = self._or_top_k(query, limit)
        else:
            scores = self.match(query)
        self.n_candidates = len(scores)
        scores = self._post_filter(scores)
        self.n_after_filter = len(scores)
        return self._select(scores, limit)

    def count_docs(self, query: Query) -> int:
        """Number of matching documents (membership only, no scoring)."""
        docs = self.match_docs(query)
        if self.filter_ids is not None:
            docs &= self.filter_ids
        if self.predicate is not None:
            docs = {
                doc_id
                for doc_id in docs
                if self.predicate(self.index.document(doc_id))
            }
        return len(docs)

    def _prunable(self, query: Query, limit: Optional[int]) -> bool:
        """MaxScore applies to root OR queries under safe conditions.

        A predicate filter (or an un-pushed id filter) would thin the
        candidate set *after* pruning decisions, making the running
        threshold unsound — those searches fall back to full
        evaluation.
        """
        return (
            limit is not None
            and limit > 0
            and self.options.maxscore
            and isinstance(query, OrQuery)
            and self.predicate is None
            and (self.filter_ids is None or self.push_ids is not None)
            and hasattr(self.scorer, "upper_bound")
        )

    def _post_filter(
        self, scores: Dict[str, float]
    ) -> Dict[str, float]:
        if self.filter_ids is not None and self.push_ids is None:
            scores = {
                doc_id: score
                for doc_id, score in scores.items()
                if doc_id in self.filter_ids
            }
        if self.predicate is not None:
            scores = {
                doc_id: score
                for doc_id, score in scores.items()
                if self.predicate(self.index.document(doc_id))
            }
        return scores

    def _select(
        self, scores: Dict[str, float], limit: Optional[int]
    ) -> List[Tuple[str, float]]:
        def sort_key(item: Tuple[str, float]) -> Tuple[float, str]:
            return (-item[1], item[0])

        if (
            limit is not None
            and self.options.top_k_heap
            and limit < len(scores)
        ):
            return heapq.nsmallest(limit, scores.items(), key=sort_key)
        ranked = sorted(scores.items(), key=sort_key)
        return ranked[:limit] if limit is not None else ranked

    # -- scored evaluation ----------------------------------------------------

    def match(
        self, query: Query, restrict: Optional[Set[str]] = None
    ) -> Dict[str, float]:
        """Evaluate a query node to doc_id -> score.

        ``restrict`` narrows evaluation to a candidate set the caller
        already established (the running AND intersection); restricting
        never changes a surviving document's score, only skips
        documents the caller would discard anyway.
        """
        if isinstance(query, TermQuery):
            return self.match_term(query, restrict)
        if isinstance(query, PhraseQuery):
            return self.match_phrase(query, restrict)
        if isinstance(query, AndQuery):
            return self.match_and(query.clauses, restrict)
        if isinstance(query, OrQuery):
            return self.match_or(query.clauses, restrict)
        if isinstance(query, NotQuery):
            # A bare negation matches everything except the clause; at
            # top level that is "all documents minus matches" with a
            # flat score, mirroring common engine behaviour.
            excluded = self.match_docs(query.clause)
            universe = self._universe(restrict)
            return {doc_id: 0.0 for doc_id in universe - excluded}
        raise SearchError(f"unknown query node {query!r}")

    def match_term(
        self, query: TermQuery, restrict: Optional[Set[str]] = None
    ) -> Dict[str, float]:
        terms = self._analyze(query.text)
        if not terms:
            return {}
        if len(terms) > 1:
            # A "term" that analyzes into several tokens (hyphens etc.)
            # behaves as an implicit AND of its parts.
            return self.match_and(
                tuple(TermQuery(t, query.field) for t in terms), restrict
            )
        return self.score_term(terms[0], query.field, restrict)

    def score_term(
        self,
        term: str,
        field: Optional[str],
        restrict: Optional[Set[str]] = None,
    ) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        fields = [field] if field is not None else self.index.fields
        self.metrics.inc("engine.terms_scored")
        allowed = self._combine_restrict(restrict)
        for field_name in fields:
            boost = self.boosts.get(field_name, 1.0)
            if self.options.bulk_scoring and hasattr(
                self.scorer, "score_postings"
            ):
                self._score_field_bulk(
                    term, field_name, boost, allowed, scores
                )
            else:
                self._score_field_per_doc(
                    term, field_name, boost, allowed, scores
                )
        return scores

    def _score_field_bulk(
        self,
        term: str,
        field_name: str,
        boost: float,
        allowed: Optional[Set[str]],
        scores: Dict[str, float],
    ) -> None:
        compiled = self.index.term_postings(term, field_name)
        if compiled is None:
            return
        df = len(compiled)
        if allowed is None:
            doc_ids: Sequence[str] = compiled.doc_ids
            tfs: Sequence[int] = compiled.tfs
            lengths: Sequence[int] = compiled.lengths
        elif not allowed:
            return
        elif len(allowed) * _PROBE_RATIO < df:
            # Tiny filter against a long posting list: probe the filter
            # ids instead of scanning the whole array.
            doc_ids, tfs, lengths = [], [], []
            for doc_id in allowed:
                tf = self.index.term_frequency(term, doc_id, field_name)
                if tf == 0:
                    continue
                doc_ids.append(doc_id)
                tfs.append(tf)
                lengths.append(
                    self.index.field_length(field_name, doc_id)
                )
        else:
            keep = [
                i
                for i, doc_id in enumerate(compiled.doc_ids)
                if doc_id in allowed
            ]
            doc_ids = [compiled.doc_ids[i] for i in keep]
            tfs = [compiled.tfs[i] for i in keep]
            lengths = [compiled.lengths[i] for i in keep]
        if not doc_ids:
            return
        self.metrics.inc("engine.postings_touched", len(doc_ids))
        contributions = self.scorer.score_postings(
            self.index, term, field_name, tfs, lengths, df=df
        )
        for doc_id, contribution in zip(doc_ids, contributions):
            scores[doc_id] = (
                scores.get(doc_id, 0.0) + boost * contribution
            )

    def _score_field_per_doc(
        self,
        term: str,
        field_name: str,
        boost: float,
        allowed: Optional[Set[str]],
        scores: Dict[str, float],
    ) -> None:
        matching = self.index.matching_docs(term, field_name)
        df = len(matching)  # computed once per (term, field)
        if allowed is not None:
            matching &= allowed
        self.metrics.inc("engine.postings_touched", len(matching))
        for doc_id in matching:
            contribution = self.scorer.score(
                self.index, term, doc_id, field_name, df=df
            )
            scores[doc_id] = (
                scores.get(doc_id, 0.0) + boost * contribution
            )

    def match_phrase(
        self, query: PhraseQuery, restrict: Optional[Set[str]] = None
    ) -> Dict[str, float]:
        terms = self._analyze(query.text)
        if not terms:
            return {}
        if len(terms) == 1:
            return self.score_term(terms[0], query.field, restrict)
        docs = self.index.phrase_docs(terms, query.field)
        allowed = self._combine_restrict(restrict)
        if allowed is not None:
            docs &= allowed
        if not docs:
            return {}
        # Score each member term, then sum per phrase document
        # (per-document rescoring is quadratic).  The planner restricts
        # member scoring to the phrase documents themselves; the
        # reference mode scores each member over its full matching set.
        member_restrict = docs if self.options.df_ordering else None
        contributions = [
            self.score_term(term, query.field, member_restrict)
            for term in terms
        ]
        scores: Dict[str, float] = {}
        for doc_id in docs:
            total = sum(c.get(doc_id, 0.0) for c in contributions)
            scores[doc_id] = total * _PHRASE_BOOST
        return scores

    def match_and(
        self,
        clauses: Sequence[Query],
        restrict: Optional[Set[str]] = None,
    ) -> Dict[str, float]:
        positive = [c for c in clauses if not isinstance(c, NotQuery)]
        negative = [c.clause for c in clauses if isinstance(c, NotQuery)]
        if not positive:
            # All clauses negative: everything except the exclusions.
            excluded: Set[str] = set()
            for clause in negative:
                excluded |= self.match_docs(clause)
            universe = self._universe(restrict)
            return {doc_id: 0.0 for doc_id in universe - excluded}
        if self.options.df_ordering:
            order = sorted(
                range(len(positive)),
                key=lambda i: (self.estimate_df(positive[i]), i),
            )
        else:
            order = list(range(len(positive)))
        parts: List[Optional[Dict[str, float]]] = [None] * len(positive)
        candidates: Optional[Set[str]] = (
            set(restrict) if restrict is not None else None
        )
        for i in order:
            # The running intersection narrows every later clause, but
            # only when the planner is on — the reference mode
            # evaluates each clause over its full matching set.
            clause_restrict = (
                candidates if self.options.df_ordering else restrict
            )
            part = self.match(positive[i], clause_restrict)
            parts[i] = part
            matched = set(part)
            candidates = (
                matched if candidates is None else candidates & matched
            )
            if not candidates:
                return {}
        for clause in negative:
            candidates -= self.match_docs(clause)
            if not candidates:
                return {}
        # Sum contributions in original clause order regardless of the
        # evaluation order, so planned and reference execution produce
        # bit-identical scores (float addition is not associative).
        scores: Dict[str, float] = {}
        for doc_id in candidates:
            total = parts[0][doc_id]  # type: ignore[index]
            for part in parts[1:]:
                total = total + part[doc_id]  # type: ignore[index]
            scores[doc_id] = total
        return scores

    def match_or(
        self,
        clauses: Sequence[Query],
        restrict: Optional[Set[str]] = None,
    ) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        for clause in clauses:
            for doc_id, score in self.match(clause, restrict).items():
                scores[doc_id] = max(scores.get(doc_id, 0.0), score)
        return scores

    # -- membership-only evaluation -------------------------------------------

    def match_docs(self, query: Query) -> Set[str]:
        """Matching document ids without any scoring work.

        Produces exactly the key set :meth:`match` would, at a fraction
        of the cost — NOT-clause exclusions and ``count`` never need
        scores.  Always evaluates over the full corpus (exclusion sets
        are subtracted from already-filtered candidates, so an
        unfiltered superset is harmless and cheaper than filtering).
        """
        if isinstance(query, TermQuery):
            terms = self._analyze(query.text)
            if not terms:
                return set()
            docs = self.index.matching_docs(terms[0], query.field)
            for term in terms[1:]:
                if not docs:
                    break
                docs &= self.index.matching_docs(term, query.field)
            return docs
        if isinstance(query, PhraseQuery):
            terms = self._analyze(query.text)
            if not terms:
                return set()
            if len(terms) == 1:
                return self.index.matching_docs(terms[0], query.field)
            return self.index.phrase_docs(terms, query.field)
        if isinstance(query, AndQuery):
            matched: Optional[Set[str]] = None
            excluded: Set[str] = set()
            for clause in query.clauses:
                if isinstance(clause, NotQuery):
                    excluded |= self.match_docs(clause.clause)
                    continue
                docs = self.match_docs(clause)
                matched = docs if matched is None else matched & docs
                if not matched:
                    return set()
            if matched is None:
                return self.index.doc_ids - excluded
            return matched - excluded
        if isinstance(query, OrQuery):
            matched = set()
            for clause in query.clauses:
                matched |= self.match_docs(clause)
            return matched
        if isinstance(query, NotQuery):
            return self.index.doc_ids - self.match_docs(query.clause)
        raise SearchError(f"unknown query node {query!r}")

    # -- planning -------------------------------------------------------------

    def estimate_df(self, query: Query) -> int:
        """Cheap candidate-count estimate for AND clause ordering."""
        if isinstance(query, TermQuery):
            terms = self._analyze(query.text)
            if not terms:
                return 0
            return min(self._term_df(t, query.field) for t in terms)
        if isinstance(query, PhraseQuery):
            terms = self._analyze(query.text)
            if not terms:
                return 0
            return min(self._term_df(t, query.field) for t in terms)
        if isinstance(query, AndQuery):
            positive = [
                c for c in query.clauses if not isinstance(c, NotQuery)
            ]
            if not positive:
                return len(self.index)
            return min(self.estimate_df(c) for c in positive)
        if isinstance(query, OrQuery):
            return sum(self.estimate_df(c) for c in query.clauses)
        return len(self.index)  # NotQuery: evaluate late

    def _term_df(self, term: str, field: Optional[str]) -> int:
        if field is not None:
            return self.index.df(term, field)
        return sum(self.index.df(term, f) for f in self.index.fields)

    def upper_bound(self, query: Query) -> float:
        """Upper bound on any document's score for ``query``.

        ``inf`` (scorer without ``upper_bound``) simply makes the
        clause unprunable — correctness never depends on tightness.
        """
        if isinstance(query, TermQuery):
            terms = self._analyze(query.text)
            if not terms:
                return 0.0
            return sum(self._term_bound(t, query.field) for t in terms)
        if isinstance(query, PhraseQuery):
            terms = self._analyze(query.text)
            if not terms:
                return 0.0
            if len(terms) == 1:
                return self._term_bound(terms[0], query.field)
            return _PHRASE_BOOST * sum(
                self._term_bound(t, query.field) for t in terms
            )
        if isinstance(query, AndQuery):
            return sum(
                self.upper_bound(c)
                for c in query.clauses
                if not isinstance(c, NotQuery)
            )
        if isinstance(query, OrQuery):
            bounds = [self.upper_bound(c) for c in query.clauses]
            return max(bounds) if bounds else 0.0
        return 0.0  # NotQuery contributes flat 0.0 scores

    def _term_bound(self, term: str, field: Optional[str]) -> float:
        if not hasattr(self.scorer, "upper_bound"):
            return math.inf
        fields = [field] if field is not None else self.index.fields
        bound = 0.0
        for field_name in fields:
            df = self.index.df(term, field_name)
            if df == 0:
                continue
            boost = self.boosts.get(field_name, 1.0)
            bound += boost * self.scorer.upper_bound(
                self.index,
                term,
                field_name,
                df,
                max_tf=self.index.max_tf(term, field_name),
            )
        return bound

    def _or_top_k(
        self, query: OrQuery, limit: Optional[int]
    ) -> Dict[str, float]:
        """MaxScore-style OR evaluation: clauses in descending bound
        order, stopping once the remaining bounds cannot crack the
        top k.

        Strict comparison (``bound < theta``) keeps the ranking
        identical to exhaustive evaluation: a skipped clause can only
        contribute scores strictly below the current k-th best, so it
        can neither promote a new document into the top k nor change
        any top-k document's score (OR combines with ``max``, and every
        top-k score is already >= theta > bound).
        """
        assert limit is not None
        self.metrics.inc("engine.maxscore.topk_searches")
        ordered = sorted(
            ((self.upper_bound(c), i, c) for i, c in enumerate(query.clauses)),
            key=lambda item: (-item[0], item[1]),
        )
        scores: Dict[str, float] = {}
        for position, (bound, _, clause) in enumerate(ordered):
            if len(scores) >= limit:
                theta = heapq.nlargest(limit, scores.values())[-1]
                if bound < theta:
                    self.metrics.inc(
                        "engine.maxscore.clauses_pruned",
                        len(ordered) - position,
                    )
                    break
            for doc_id, score in self.match(clause).items():
                scores[doc_id] = max(scores.get(doc_id, 0.0), score)
        return scores

    # -- shared helpers -------------------------------------------------------

    def _analyze(self, text: str) -> List[str]:
        terms = self._terms_cache.get(text)
        if terms is None:
            terms = self.engine.analyzer.analyze_query_terms(text)
            self._terms_cache[text] = terms
        return terms

    def _combine_restrict(
        self, restrict: Optional[Set[str]]
    ) -> Optional[Set[str]]:
        if restrict is None:
            return self.push_ids
        if self.push_ids is None:
            return restrict
        return restrict & self.push_ids

    def _universe(self, restrict: Optional[Set[str]]) -> Set[str]:
        universe = self.index.doc_ids
        allowed = self._combine_restrict(restrict)
        if allowed is not None:
            universe &= allowed
        return universe


class SearchEngine:
    """Index + query planner/executor + ranker.

    Args:
        analyzer: Shared analysis pipeline (defaults to stemmed+stopped).
        scorer: Term scorer (defaults to BM25).
        field_boosts: Multiplier per field name; unlisted fields get 1.0.
            EIL boosts ``title`` because slide titles carry the key point
            (paper Section 3.3, "Custom Parsing").
        cache_size: Result-cache capacity (0 disables caching).  Keys
            embed the index ``epoch``, which every ``add``/``remove``
            bumps, so cached results can never outlive the index state
            they were computed against.  ``limit`` is *not* part of the
            key: one cached ranking serves every limit it covers, sliced
            per request.
        options: Default :class:`ExecutionOptions`; individual searches
            may override via the ``options`` argument.
        index: A prebuilt index to serve instead of a fresh in-memory
            one — typically a :class:`~repro.storage.store
            .SegmentBackedIndex` (loaded from disk or configured with a
            flush threshold).  Must share the engine's analyzer; when
            ``analyzer`` is omitted the index's own analyzer is
            adopted.  Any object implementing the ``InvertedIndex``
            API works.
    """

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        scorer: Optional[Scorer] = None,
        field_boosts: Optional[Mapping[str, float]] = None,
        cache_size: int = 256,
        options: Optional[ExecutionOptions] = None,
        index=None,
    ) -> None:
        if analyzer is None and index is not None:
            analyzer = getattr(index, "analyzer", None)
        self.analyzer = analyzer or Analyzer()
        self.scorer: Scorer = scorer or Bm25Scorer()
        self.field_boosts = dict(field_boosts or {})
        self.index = (
            index if index is not None else InvertedIndex(self.analyzer)
        )
        self.options = options or ExecutionOptions()
        self.epoch = 0
        self._cache = LruCache("engine.cache", cache_size)
        # Searches run under the read side, index mutations + their
        # epoch bump under the write side: a query's (epoch, index)
        # view is a consistent snapshot, and incremental maintenance
        # can never tear an in-flight query's posting traversal.
        self._rw = ReadWriteLock()

    # -- indexing -----------------------------------------------------------

    def add(self, document: IndexableDocument) -> None:
        """Index one document."""
        with self._rw.write():
            self.index.add(document)
            self.epoch += 1

    def add_all(self, documents: Iterable[IndexableDocument]) -> int:
        """Index many documents; returns the count."""
        count = 0
        for document in documents:
            self.add(document)
            count += 1
        return count

    def remove(self, doc_id: str) -> None:
        """Remove a document from the index."""
        with self._rw.write():
            self.index.remove(doc_id)
            self.epoch += 1

    def bump_epoch(self) -> None:
        """Advance the epoch without touching the index.

        The sharded engine calls this on its children after a
        corpus-global statistics change (any shard's mutation moves N
        and avgdl for every shard), so per-child cached rankings keyed
        on the child epoch can never survive a cross-shard mutation.
        """
        with self._rw.write():
            self.epoch += 1

    # -- persistence ---------------------------------------------------------

    def replace_index(self, index) -> None:
        """Swap the engine onto a different index under the write lock.

        The epoch bump retires every cached ranking computed against
        the old index; in-flight queries finish against the snapshot
        they started with (they hold the read side).
        """
        with self._rw.write():
            self.index = index
            self.epoch += 1

    def save_index(self, directory: str) -> Dict[str, object]:
        """Persist the index as delta-varint segments under ``directory``.

        A segment-backed index flushes and writes its manifest; a plain
        in-memory index is encoded through a transient
        :class:`~repro.storage.store.SegmentBackedIndex` without being
        modified (encoding only reads).  Returns the storage stats of
        the written state.  Runs under the write lock so a concurrent
        mutation can never tear the on-disk snapshot.
        """
        from repro.storage.store import SegmentBackedIndex

        with self._rw.write():
            index = self.index
            if isinstance(index, SegmentBackedIndex):
                return index.save(directory)
            return SegmentBackedIndex.from_inverted(index).save(directory)

    def load_index(self, directory: str, **load_options):
        """Cold-start the engine from segments saved by ``save_index``.

        Returns the loaded :class:`~repro.storage.store
        .SegmentBackedIndex`, already installed via
        :meth:`replace_index`.  Extra keyword arguments
        (``memtable_limit``, ``merge_fanout``, ``verify``) pass through
        to :meth:`SegmentBackedIndex.load`.
        """
        from repro.storage.store import SegmentBackedIndex

        store = SegmentBackedIndex.load(
            directory, analyzer=self.analyzer, **load_options
        )
        self.replace_index(store)
        return store

    def __len__(self) -> int:
        return len(self.index)

    # -- search --------------------------------------------------------------

    def search(
        self,
        query: Union[str, Query],
        limit: Optional[int] = None,
        doc_filter: DocFilter = None,
        options: Optional[ExecutionOptions] = None,
    ) -> List[SearchHit]:
        """Run ``query`` and return ranked hits.

        Args:
            query: Query string (parsed with the engine's grammar) or a
                prebuilt AST.
            limit: Maximum hits to return (None = all).  The top-k
                hits under a limit are guaranteed identical (documents,
                scores, order) to the head of the unlimited ranking.
            doc_filter: Restrict the searchable set — either a set of
                doc ids (pushed down into posting traversal) or a
                predicate over stored documents (applied to matched
                candidates only).
            options: Per-call :class:`ExecutionOptions` override;
                ``ExecutionOptions.exhaustive()`` forces the reference
                interpreter.

        Returns:
            Hits sorted by descending score; ties broken by doc id for
            determinism.

        This is the ``index`` fault point (the engine stands in for the
        OmniFind service, which can be down as a whole): an installed
        injector checks *before* the result cache, modelling an
        unreachable service rather than a slow query.
        """
        get_injector().check("index")
        if isinstance(query, str):
            query = parse_query(query)
        opts = options if options is not None else self.options
        metrics = get_registry()
        metrics.inc("engine.searches")
        # The whole evaluation — epoch read, cache probe, posting
        # traversal, snippet building, cache store — runs under the
        # read side of the engine lock, so concurrent mutations can
        # neither tear the traversal nor let a post-mutation epoch key
        # a pre-mutation ranking.
        with self._rw.read():
            execution = _Execution(self, opts, doc_filter)
            cache_key = self._cache_key(query, doc_filter, opts)
            if cache_key is not None:
                cached = self._cache.get(cache_key)
                if cached is not None and cached.covers(limit):
                    if cached.limit is None or limit != cached.limit:
                        metrics.inc("engine.cache.sliced")
                    return cached.slice(limit)
            ranked = execution.ranked(query, limit)
            metrics.observe("engine.candidates", execution.n_candidates)
            metrics.observe(
                "engine.candidates_after_filter", execution.n_after_filter
            )
            surfaces = _query_surfaces(query)
            highlight_terms: Set[str] = set()
            for surface in surfaces:
                highlight_terms.update(
                    self.analyzer.analyze_query_terms(surface)
                )
            hits = []
            for doc_id, score in ranked:
                document = self.index.document(doc_id)
                hits.append(
                    SearchHit(
                        doc_id=doc_id,
                        score=score,
                        document=document,
                        snippet=_make_snippet(
                            document.text,
                            surfaces,
                            highlight_terms,
                            self.analyzer,
                        ),
                    )
                )
            if cache_key is not None:
                self._cache.put(
                    cache_key, _CachedRanking(tuple(hits), limit)
                )
            return list(hits)

    def _cache_key(
        self,
        query: Query,
        doc_filter: DocFilter,
        options: ExecutionOptions,
    ):
        """Hashable cache key, or None when the search is uncacheable.

        Predicate filters are opaque (no stable identity), so those
        searches always recompute; id-set filters are folded into the
        key as frozensets.  The index epoch is part of every key, which
        is how ``add``/``remove`` invalidate without touching the
        cache.  ``limit`` is deliberately absent: the cached value
        records its own coverage and serves any covered limit by
        slicing (see :class:`_CachedRanking`).
        """
        if doc_filter is None:
            filter_key = None
        elif isinstance(doc_filter, AbstractSet):
            filter_key = frozenset(doc_filter)
        else:
            # Predicates have no stable identity.
            return None
        try:
            hash(query)
        except TypeError:  # pragma: no cover - unhashable custom node
            return None
        return (self.epoch, query, filter_key, options)

    def count(self, query: Union[str, Query], doc_filter: DocFilter = None) -> int:
        """Number of documents matching ``query`` (no ranking work).

        Answered from a cached *complete* search ranking when one
        exists; otherwise evaluated membership-only (no scores are ever
        computed for a count).
        """
        get_injector().check("index")
        if isinstance(query, str):
            query = parse_query(query)
        metrics = get_registry()
        metrics.inc("engine.counts")
        with self._rw.read():
            cache_key = self._cache_key(query, doc_filter, self.options)
            if cache_key is not None:
                cached = self._cache.get(cache_key)
                if cached is not None and cached.limit is None:
                    metrics.inc("engine.counts_from_cache")
                    return len(cached.hits)
            execution = _Execution(self, self.options, doc_filter)
            return execution.count_docs(query)


def _query_surfaces(query: Query) -> List[str]:
    """Positive surface strings in the query, for snippet highlighting."""
    if isinstance(query, TermQuery):
        return [query.text]
    if isinstance(query, PhraseQuery):
        return [query.text]
    if isinstance(query, (AndQuery, OrQuery)):
        surfaces: List[str] = []
        for clause in query.clauses:
            surfaces.extend(_query_surfaces(clause))
        return surfaces
    return []  # NotQuery: nothing to highlight


def _make_snippet(
    text: str,
    surfaces: List[str],
    highlight_terms: Set[str],
    analyzer: Analyzer,
    width: int = 80,
) -> str:
    """A short window of text around the first query-term occurrence.

    Exact surface substrings win (cheapest, and what users expect to
    see highlighted); when no surface occurs verbatim, the document is
    run through the analyzer and the window anchors on the first token
    whose *analyzed* form matches a query term — a query for
    "financing" lands on a document's "financed" instead of falling
    back to the document head.
    """
    lowered = text.lower()
    best = None
    for surface in surfaces:
        position = lowered.find(surface.lower())
        if position != -1 and (best is None or position < best):
            best = position
    if best is None and highlight_terms:
        for analyzed in analyzer.analyze(text):
            if analyzed.term in highlight_terms:
                best = analyzed.start
                break
    if best is None:
        snippet = text[:width]
    else:
        start = max(0, best - width // 3)
        snippet = text[start:start + width]
    return re.sub(r"\s+", " ", snippet).strip()
