"""Keyword query language: terms, phrases, fields, AND/OR/NOT.

Grammar (whitespace separated)::

    query   := clause (OR clause)*
    clause  := unit+                        # units are implicitly AND-ed
    unit    := [-] [field:] (term | "phrase" | ( query ))

Examples matching the paper's keyword-search episodes::

    End User Services                 # all three terms must appear
    EUS OR "Customer Services Center" OR "Distributed Computing Services"
    Sam White ABC CSE                 # the query that returned nothing
    title:"cross tower TSA" -template

The parser produces a small AST; the engine interprets it.  Terms are
kept as surface text here and analyzed (stemmed/stopped) by the engine
so the query and the index always agree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.errors import QuerySyntaxError

__all__ = [
    "Query",
    "TermQuery",
    "PhraseQuery",
    "AndQuery",
    "OrQuery",
    "NotQuery",
    "parse_query",
]


@dataclass(frozen=True)
class TermQuery:
    """Match documents containing one term (optionally in a field)."""

    text: str
    field: Optional[str] = None


@dataclass(frozen=True)
class PhraseQuery:
    """Match documents containing the words consecutively in one field."""

    text: str
    field: Optional[str] = None


@dataclass(frozen=True)
class AndQuery:
    """All sub-queries must match."""

    clauses: Tuple["Query", ...]


@dataclass(frozen=True)
class OrQuery:
    """At least one sub-query must match."""

    clauses: Tuple["Query", ...]


@dataclass(frozen=True)
class NotQuery:
    """Exclude documents matching the sub-query."""

    clause: "Query"


Query = Union[TermQuery, PhraseQuery, AndQuery, OrQuery, NotQuery]


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<phrase>"[^"]*")
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<minus>-)
  | (?P<word>[^\s()"-][^\s()"]*)
    """,
    re.VERBOSE,
)


def _lex(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r} in query"
            )
        position = match.end()
        kind = match.lastgroup or "word"
        if kind == "ws":
            continue
        tokens.append((kind, match.group(0)))
    return tokens


class _QueryParser:
    def __init__(self, text: str) -> None:
        self._tokens = _lex(text)
        self._pos = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> Tuple[str, str]:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def parse(self) -> Query:
        query = self._parse_or()
        if self._peek() is not None:
            raise QuerySyntaxError("unexpected trailing input in query")
        return query

    def _parse_or(self) -> Query:
        clauses = [self._parse_and()]
        while True:
            token = self._peek()
            if token is not None and token[0] == "word" and token[1].upper() == "OR":
                self._advance()
                clauses.append(self._parse_and())
            else:
                break
        if len(clauses) == 1:
            return clauses[0]
        return OrQuery(tuple(clauses))

    def _parse_and(self) -> Query:
        units: List[Query] = []
        while True:
            token = self._peek()
            if token is None or token[0] == "rparen":
                break
            if token[0] == "word" and token[1].upper() == "OR":
                break
            if token[0] == "word" and token[1].upper() == "AND":
                self._advance()  # explicit AND is a no-op
                continue
            units.append(self._parse_unit())
        if not units:
            raise QuerySyntaxError("empty query clause")
        if len(units) == 1:
            return units[0]
        return AndQuery(tuple(units))

    def _parse_unit(self) -> Query:
        token = self._advance()
        if token[0] == "minus":
            return NotQuery(self._parse_unit())
        if token[0] == "word" and token[1].upper() == "NOT":
            return NotQuery(self._parse_unit())
        if token[0] == "lparen":
            inner = self._parse_or()
            closing = self._peek()
            if closing is None or closing[0] != "rparen":
                raise QuerySyntaxError("missing ')' in query")
            self._advance()
            return inner
        if token[0] == "phrase":
            return PhraseQuery(token[1][1:-1])
        if token[0] == "word":
            return self._finish_word(token[1])
        raise QuerySyntaxError(f"unexpected token {token[1]!r} in query")

    def _finish_word(self, word: str) -> Query:
        # field:term and field:"phrase" forms.
        if ":" in word and not word.endswith(":"):
            field, _, rest = word.partition(":")
            if rest:
                return TermQuery(rest, field=field.lower())
        if word.endswith(":"):
            field = word[:-1].lower()
            token = self._peek()
            if token is not None and token[0] == "phrase":
                self._advance()
                return PhraseQuery(token[1][1:-1], field=field)
            raise QuerySyntaxError(f"field {field!r} has no value")
        return TermQuery(word)


def parse_query(text: str) -> Query:
    """Parse a keyword query string into a query AST."""
    if not text or not text.strip():
        raise QuerySyntaxError("empty query")
    return _QueryParser(text).parse()
