"""Data-acquisition crawler: walks document sources into the index.

The paper's offline pipeline starts with "Data Acquisition" components
that crawl various data repositories.  The crawler here is source-
agnostic: anything iterable over :class:`IndexableDocument` can be
crawled, and the engagement-workbook repositories in
:mod:`repro.docmodel` implement that protocol.

Fault tolerance (docs/OPERATIONS.md): each per-document fetch passes a
keyed ``crawler`` fault-point check and is retried under the crawler's
:class:`~repro.faults.RetryPolicy`; a document that keeps failing is
skipped and recorded, never fatal.  A :class:`TransientError` raised by
the *source iterator itself* (the ``repository`` fault point) aborts
that source — generators cannot be resumed — which the report records
in ``sources_aborted``; the crawl over the remaining sources continues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Protocol

from repro.errors import SearchError, TransientError
from repro.faults import RetryPolicy, get_injector
from repro.obs import get_registry
from repro.search.document import IndexableDocument
from repro.search.engine import SearchEngine

__all__ = ["DocumentSource", "CrawlReport", "Crawler"]


class DocumentSource(Protocol):
    """Anything the crawler can pull documents from."""

    def iter_documents(self) -> Iterable[IndexableDocument]:
        """Yield the source's documents."""
        ...


@dataclass
class CrawlReport:
    """Outcome of one crawl.

    Attributes:
        indexed: Documents successfully indexed.
        skipped: Documents rejected (already indexed, malformed) or
            persistently failing their fetch.
        sources_aborted: Sources whose iterator died mid-crawl (a
            repository outage); their remaining documents were never
            seen.
        errors: Human-readable reasons for each skip or abort.
    """

    indexed: int = 0
    skipped: int = 0
    sources_aborted: int = 0
    errors: List[str] = field(default_factory=list)


class Crawler:
    """Feeds document sources into a search engine.

    Args:
        engine: The index to feed.
        retry: Retry policy for transient per-document fetch failures
            (defaults to 3 quick attempts).
    """

    def __init__(
        self, engine: SearchEngine, retry: Optional[RetryPolicy] = None
    ) -> None:
        self.engine = engine
        self.retry = retry or RetryPolicy()

    def _fetch_one(self, document: IndexableDocument) -> None:
        """One fetch+index attempt, preceded by the fault-point check."""
        get_injector().check("crawler", key=document.doc_id)
        self.engine.add(document)

    def crawl(self, source: DocumentSource) -> CrawlReport:
        """Crawl one source; per-document failures are skipped, not fatal.

        A crawl over enterprise repositories must be resilient: one bad
        workbook must not abort the nightly rebuild, so per-document
        failures are recorded in the report instead of raised, and
        transient fetch errors are retried before being recorded.
        """
        report = CrawlReport()
        metrics = get_registry()
        try:
            for document in source.iter_documents():
                try:
                    self.retry.call(self._fetch_one, document)
                except SearchError as exc:
                    report.skipped += 1
                    report.errors.append(str(exc))
                except TransientError as exc:
                    report.skipped += 1
                    metrics.inc("crawler.documents_skipped_transient")
                    report.errors.append(
                        f"doc {document.doc_id}: "
                        f"{type(exc).__name__}: {exc}"
                    )
                else:
                    report.indexed += 1
        except TransientError as exc:
            # The source iterator itself failed (repository outage):
            # the generator is dead, so the rest of this source is lost.
            report.sources_aborted += 1
            metrics.inc("crawler.sources_aborted")
            report.errors.append(
                f"source aborted after {report.indexed} documents: "
                f"{type(exc).__name__}: {exc}"
            )
        return report

    def crawl_all(self, sources: Iterable[DocumentSource]) -> CrawlReport:
        """Crawl several sources into one combined report."""
        combined = CrawlReport()
        for source in sources:
            report = self.crawl(source)
            combined.indexed += report.indexed
            combined.skipped += report.skipped
            combined.sources_aborted += report.sources_aborted
            combined.errors.extend(report.errors)
        return combined
