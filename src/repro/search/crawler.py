"""Data-acquisition crawler: walks document sources into the index.

The paper's offline pipeline starts with "Data Acquisition" components
that crawl various data repositories.  The crawler here is source-
agnostic: anything iterable over :class:`IndexableDocument` can be
crawled, and the engagement-workbook repositories in
:mod:`repro.docmodel` implement that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Protocol

from repro.errors import SearchError
from repro.search.document import IndexableDocument
from repro.search.engine import SearchEngine

__all__ = ["DocumentSource", "CrawlReport", "Crawler"]


class DocumentSource(Protocol):
    """Anything the crawler can pull documents from."""

    def iter_documents(self) -> Iterable[IndexableDocument]:
        """Yield the source's documents."""
        ...


@dataclass
class CrawlReport:
    """Outcome of one crawl.

    Attributes:
        indexed: Documents successfully indexed.
        skipped: Documents rejected (already indexed, malformed).
        errors: Human-readable reasons for each skip.
    """

    indexed: int = 0
    skipped: int = 0
    errors: List[str] = field(default_factory=list)


class Crawler:
    """Feeds document sources into a search engine."""

    def __init__(self, engine: SearchEngine) -> None:
        self.engine = engine

    def crawl(self, source: DocumentSource) -> CrawlReport:
        """Crawl one source; malformed documents are skipped, not fatal.

        A crawl over enterprise repositories must be resilient: one bad
        workbook must not abort the nightly rebuild, so per-document
        failures are recorded in the report instead of raised.
        """
        report = CrawlReport()
        for document in source.iter_documents():
            try:
                self.engine.add(document)
            except SearchError as exc:
                report.skipped += 1
                report.errors.append(str(exc))
            else:
                report.indexed += 1
        return report

    def crawl_all(self, sources: Iterable[DocumentSource]) -> CrawlReport:
        """Crawl several sources into one combined report."""
        combined = CrawlReport()
        for source in sources:
            report = self.crawl(source)
            combined.indexed += report.indexed
            combined.skipped += report.skipped
            combined.errors.extend(report.errors)
        return combined
