"""Access control: principals, roles, repository ACLs.

The paper bakes security into the architecture: *"if a user is not
authorized to access a data repository, the system presents to the user
only a synopsis of the desired information including a list of contact
persons with whom the user could communicate."*  The controller
therefore answers two distinct questions: may the user see a
repository's *documents*, and may they see the *synopsis* (extracted,
regularized information) — the second is almost always yes, which is
EIL's advantage over document search under access control (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import AccessDeniedError
from repro.obs import get_registry

__all__ = ["User", "AccessController", "ANONYMOUS"]


@dataclass(frozen=True)
class User:
    """A principal.

    Attributes:
        user_id: Login identifier.
        roles: Role names ("sales", "delivery", "admin", ...).
    """

    user_id: str
    roles: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "roles", frozenset(self.roles))

    def has_role(self, role: str) -> bool:
        """True when the user holds ``role``."""
        return role in self.roles


ANONYMOUS = User("anonymous")


class AccessController:
    """Repository-level document ACLs with synopsis fallback.

    Policy model:

    * Every authenticated user may read synopses (the extracted business
      context) — matching the paper's design where the synopsis with
      contact list is the fallback view.
    * Document access is per repository: granted to specific users, to
      specific roles, or to everyone when the repository is public.
    * ``admin`` role bypasses all checks.
    """

    def __init__(self, default_open: bool = True) -> None:
        # With no registered ACL a repository follows ``default_open``,
        # which mirrors the paper's experimental setup ("assume there
        # are no access controls on the documents").
        self.default_open = default_open
        self._allowed_users: Dict[str, Set[str]] = {}
        self._allowed_roles: Dict[str, Set[str]] = {}
        self._public: Set[str] = set()
        self._restricted: Set[str] = set()
        # Bumped on every policy mutation; query caches embed it in
        # their keys so ACL changes invalidate cached results.
        self.policy_version = 0

    # -- policy management -----------------------------------------------

    def restrict(self, repository: str) -> None:
        """Mark a repository as restricted (explicit grants required)."""
        self._restricted.add(repository)
        self._public.discard(repository)
        self.policy_version += 1

    def make_public(self, repository: str) -> None:
        """Open a repository to everyone."""
        self._public.add(repository)
        self._restricted.discard(repository)
        self.policy_version += 1

    def grant_user(self, repository: str, user_id: str) -> None:
        """Allow one user to read a repository's documents."""
        self._restricted.add(repository)
        self._allowed_users.setdefault(repository, set()).add(user_id)
        self.policy_version += 1

    def grant_role(self, repository: str, role: str) -> None:
        """Allow a role to read a repository's documents."""
        self._restricted.add(repository)
        self._allowed_roles.setdefault(repository, set()).add(role)
        self.policy_version += 1

    def revoke_user(self, repository: str, user_id: str) -> None:
        """Remove a user grant."""
        self._allowed_users.get(repository, set()).discard(user_id)
        self.policy_version += 1

    # -- checks --------------------------------------------------------------

    def can_read_documents(self, user: User, repository: str) -> bool:
        """May ``user`` read the repository's raw documents?"""
        allowed = self._can_read_documents(user, repository)
        metrics = get_registry()
        metrics.inc("access.document_checks")
        if not allowed:
            metrics.inc("access.document_denials")
        return allowed

    def _can_read_documents(self, user: User, repository: str) -> bool:
        if user.has_role("admin"):
            return True
        if repository in self._public:
            return True
        if repository in self._restricted:
            if user.user_id in self._allowed_users.get(repository, ()):
                return True
            granted_roles = self._allowed_roles.get(repository, set())
            return bool(granted_roles & user.roles)
        return self.default_open

    def presentable_documents(
        self, user: User, repository: str, hits: Sequence
    ) -> Tuple[List, bool]:
        """Step 19's redaction decision: ``(visible_hits, withheld)``.

        The paper's fallback — and the template the fault layer's
        ``degraded="no-index"`` rung mirrors — is *synopsis + contact
        list* whenever documents cannot be shown: here because the user
        lacks repository access, there because the index is down.  The
        caller renders contacts either way; this method only decides
        document visibility and records the redaction metric.
        """
        may_read = self.can_read_documents(user, repository)
        if may_read:
            return list(hits), False
        if hits:
            get_registry().inc("access.documents_redacted", len(hits))
        return [], bool(hits)

    def can_read_synopsis(self, user: User) -> bool:
        """May ``user`` read extracted synopses?  Anonymous may not."""
        return user.user_id != ANONYMOUS.user_id

    def require_synopsis_access(self, user: User) -> None:
        """Raise AccessDeniedError when synopses are off-limits."""
        if not self.can_read_synopsis(user):
            get_registry().inc("access.synopsis_denials")
            raise AccessDeniedError(
                f"user {user.user_id!r} may not read synopses"
            )

    def readable_repositories(
        self, user: User, repositories: Iterable[str]
    ) -> Set[str]:
        """Filter ``repositories`` down to document-readable ones."""
        return {
            repository
            for repository in repositories
            if self.can_read_documents(user, repository)
        }
