"""Access control for EIL: principals, repository ACLs, synopsis fallback."""

from repro.security.access import ANONYMOUS, AccessController, User

__all__ = ["User", "AccessController", "ANONYMOUS"]
