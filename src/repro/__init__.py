"""repro — EIL: business-activity driven enterprise search.

A from-scratch reproduction of "Improving Information Access for a
Community of Practice Using Business Process as Context" (Deng,
Devarakonda, Mahindru, Rajamani, Vogl, Zadrozny; ICDE 2008): the EIL
system plus every substrate it needs — an in-memory relational engine,
a BM25 full-text engine with SIAPI-style scoped search, a UIMA-like
annotation framework, the Table 1 annotator family, the Figure 3
social-networking annotator, access control, and a deterministic
synthetic enterprise corpus replacing the proprietary IBM data.

Quickstart::

    from repro import CorpusGenerator, EILSystem, FormQuery, User

    corpus = CorpusGenerator().generate()
    eil = EILSystem.build(corpus)
    results = eil.search(FormQuery(tower="End User Services"),
                         user=User("alice", {"sales"}))
    for activity in results.activities:
        print(activity.name, activity.score)
"""

from repro.core import (
    BuildReport,
    DealSynopsis,
    EILSystem,
    EilResults,
    FormQuery,
    GraphQuery,
    graph_expertise_query,
    graph_role_capacity_query,
    graph_team_overlap_query,
    graph_worked_with_query,
    render_deal_list,
    render_results,
    render_synopsis,
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.corpus import Corpus, CorpusConfig, CorpusGenerator
from repro.db import Database
from repro.errors import ReproError
from repro.graph import EntityGraph
from repro.search import IndexableDocument, SearchEngine, SiapiQuery
from repro.security import ANONYMOUS, AccessController, User

__version__ = "1.0.0"

__all__ = [
    "EILSystem",
    "BuildReport",
    "FormQuery",
    "EilResults",
    "DealSynopsis",
    "CorpusGenerator",
    "CorpusConfig",
    "Corpus",
    "Database",
    "SearchEngine",
    "SiapiQuery",
    "IndexableDocument",
    "AccessController",
    "User",
    "ANONYMOUS",
    "ReproError",
    "render_deal_list",
    "render_synopsis",
    "render_results",
    "scope_query",
    "worked_with_query",
    "role_capacity_query",
    "service_keyword_query",
    "EntityGraph",
    "GraphQuery",
    "graph_worked_with_query",
    "graph_role_capacity_query",
    "graph_expertise_query",
    "graph_team_overlap_query",
    "__version__",
]
