"""Exception hierarchy for the repro package.

Every subsystem raises subclasses of :class:`ReproError` so applications
can catch one base class at API boundaries.  Database errors follow the
DB-API 2.0 naming conventions (IntegrityError, ProgrammingError, ...)
since the `repro.db` engine plays the role DB2 plays in the paper.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DatabaseError",
    "SchemaError",
    "TypeMismatchError",
    "IntegrityError",
    "ProgrammingError",
    "SqlSyntaxError",
    "TransactionError",
    "SearchError",
    "QuerySyntaxError",
    "StorageError",
    "AnnotatorError",
    "TypeSystemError",
    "AccessDeniedError",
    "CorpusError",
    "ConfigurationError",
    "TransientError",
    "InjectedFaultError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "ServerOverloadedError",
    "BuildAbortedError",
    "EILUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# --- database -----------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for relational-engine errors."""


class SchemaError(DatabaseError):
    """Invalid schema definition (duplicate column, unknown type, ...)."""


class TypeMismatchError(DatabaseError):
    """A value cannot be stored in a column of the declared type."""


class IntegrityError(DatabaseError):
    """Constraint violation: NOT NULL, UNIQUE, PRIMARY KEY, FOREIGN KEY."""


class ProgrammingError(DatabaseError):
    """Invalid operation: unknown table/column, wrong parameter count."""


class SqlSyntaxError(ProgrammingError):
    """The SQL text could not be parsed."""


class TransactionError(DatabaseError):
    """Invalid transaction state (commit without begin, nested begin)."""


# --- search -------------------------------------------------------------


class SearchError(ReproError):
    """Base class for full-text engine errors."""


class QuerySyntaxError(SearchError):
    """The search query string could not be parsed."""


class StorageError(ReproError):
    """A persistent index segment or manifest is corrupt or unreadable.

    Raised by :mod:`repro.storage` on foreign files (bad magic), format
    version mismatches, checksum failures, and truncated segments —
    never a bare ``KeyError``/``struct.error`` leaking from the decoder.
    """


# --- annotation ---------------------------------------------------------


class AnnotatorError(ReproError):
    """An analysis engine failed or was misconfigured."""


class TypeSystemError(AnnotatorError):
    """Unknown annotation type or feature in the CAS type system."""


# --- security / corpus / config ----------------------------------------


class AccessDeniedError(ReproError):
    """The principal is not authorized for the requested resource."""


class CorpusError(ReproError):
    """Invalid corpus configuration or generation failure."""


class ConfigurationError(ReproError):
    """Invalid system configuration."""


# --- fault tolerance -----------------------------------------------------


class TransientError(ReproError):
    """A temporary substrate failure that may succeed on retry.

    The retryable-exception class: :class:`repro.faults.RetryPolicy`
    retries these by default, and the CPE quarantines (rather than
    fails) documents that keep raising them.
    """


class InjectedFaultError(TransientError):
    """An error injected by the fault harness (:mod:`repro.faults`)."""


class DeadlineExceededError(TransientError):
    """An operation overran its deadline (real or injected timeout)."""


class CircuitOpenError(TransientError):
    """A circuit breaker is open; the protected call was not attempted."""


class ServerOverloadedError(TransientError):
    """The serving layer shed the request (admission queue full).

    Transient by design: the client's correct move is to back off and
    retry, exactly as for any other momentary substrate failure.
    """


class BuildAbortedError(ReproError):
    """The offline build failed its quality gate (``max_failure_ratio``).

    Attributes:
        report: The partial :class:`~repro.uima.cpe.CpeReport`, when the
            CPE aborted the run (None otherwise).
    """

    def __init__(self, message: str, report: object = None) -> None:
        super().__init__(message)
        self.report = report


class EILUnavailableError(ReproError):
    """Every rung of the online degradation ladder failed.

    Raised by :meth:`BusinessActivityDrivenSearch.execute
    <repro.core.search.BusinessActivityDrivenSearch.execute>` only when
    *both* the synopsis store and the SIAPI index are down — any
    single-substrate outage degrades instead (see docs/OPERATIONS.md).

    Attributes:
        failures: component name -> the failure that took it out.
    """

    def __init__(self, message: str, failures: object = None) -> None:
        super().__init__(message)
        self.failures = dict(failures or {})
