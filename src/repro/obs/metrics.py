"""Dependency-free metrics: counters, gauges, histograms, a registry.

The EIL pipelines emit three kinds of telemetry:

* :class:`Counter` — monotonically increasing totals (queries executed,
  postings touched, rows scanned).
* :class:`Gauge` — last-written values (index size, deals populated).
* :class:`Histogram` — distributions with p50/p95/p99 summaries (stage
  latencies, candidate-set sizes).

A :class:`MetricsRegistry` owns a namespace of metrics and is the unit
of injection: components resolve a registry at *call time* (the global
default from :func:`repro.obs.get_registry`, unless one was injected),
so a test or benchmark can swap in a fresh or disabled registry without
rebuilding the system.  A disabled registry turns every record call
into an immediate return, which keeps instrumentation overhead on hot
paths bounded.
"""

from __future__ import annotations

import threading
from bisect import insort
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Timer"]


class Counter:
    """A monotonically increasing count.

    Increments are lock-protected: the serving layer counts admissions
    and rejections from many threads at once, and a bare ``value +=
    amount`` is a read-modify-write that loses updates under
    contention.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        """Exportable representation."""
        return {"type": "counter", "value": self.value}

    def __getstate__(self) -> Dict[str, Any]:
        # Counters cross process boundaries inside worker registries;
        # the lock is process-local state.
        return {"name": self.name, "value": self.value}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.name = state["name"]
        self.value = state["value"]
        self._lock = threading.Lock()


class Gauge:
    """A last-written value (may go up or down)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def to_dict(self) -> Dict[str, Any]:
        """Exportable representation."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A sample distribution with exact totals and rank percentiles.

    Samples are kept sorted for percentile queries.  Memory is bounded:
    past ``max_samples`` the buffer is decimated (every other sample
    dropped) and further samples are recorded with a matching stride,
    so percentiles stay representative while ``count``/``sum``/``min``/
    ``max`` remain exact.
    """

    __slots__ = ("name", "count", "sum", "min", "max",
                 "_samples", "_stride", "_pending", "max_samples",
                 "_lock")

    def __init__(self, name: str, max_samples: int = 8192) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1
        self._pending = 0
        self.max_samples = max_samples
        # Serving latencies are observed from many request threads at
        # once; an unguarded insort would corrupt the sorted buffer.
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample (thread-safe)."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._pending += 1
            if self._pending >= self._stride:
                self._pending = 0
                insort(self._samples, value)
                if len(self._samples) > self.max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples.

        Args:
            q: Percentile in [0, 100].
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of [0, 100]")
        with self._lock:
            if not self._samples:
                return 0.0
            rank = max(0, min(len(self._samples) - 1,
                              round(q / 100.0 * (len(self._samples) - 1))))
            return self._samples[rank]

    def summary(self) -> Dict[str, float]:
        """count/sum/mean/min/max plus p50/p95/p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Exportable representation."""
        return {"type": "histogram", **self.summary()}

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one.

        ``count``/``sum``/``min``/``max`` stay exact; the retained
        sample buffers are concatenated and re-decimated, so
        percentiles remain representative (the same approximation the
        buffer already makes past ``max_samples``).  Used to merge
        worker-process registries into the parent's after a
        process-sharded offline build.
        """
        with self._lock:
            self.count += other.count
            self.sum += other.sum
            if other.min is not None:
                self.min = (other.min if self.min is None
                            else min(self.min, other.min))
            if other.max is not None:
                self.max = (other.max if self.max is None
                            else max(self.max, other.max))
            if other._samples:
                merged = sorted(self._samples + other._samples)
                self._stride = max(self._stride, other._stride)
                while len(merged) > self.max_samples:
                    merged = merged[::2]
                    self._stride *= 2
                self._samples = merged
                self._pending = 0

    def __getstate__(self) -> Dict[str, Any]:
        # Histograms cross process boundaries inside worker registries;
        # the lock is process-local state.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_lock"
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._lock = threading.Lock()


class Timer:
    """Context manager recording elapsed seconds into a histogram."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        from time import perf_counter

        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        from time import perf_counter

        if self._start is not None:
            self._registry.observe(self._name, perf_counter() - self._start)


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Args:
        enabled: When False every record call is a no-op — the registry
            for measuring instrumentation overhead, and the cheap path
            for deployments that do not scrape metrics.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- metric accessors (create on first use) ---------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name)
                )
        return histogram

    # -- recording shortcuts ----------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram sample (no-op when disabled)."""
        if not self.enabled:
            return
        self.histogram(name).observe(value)

    def timer(self, name: str) -> Timer:
        """Context manager timing a block into histogram ``name``."""
        return Timer(self, name)

    # -- merging / serialization -------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one.

        Counters add, gauges take the other registry's (more recent)
        value, histograms merge sample-wise.  The process-sharded CPE
        uses this to land worker-side telemetry (parse timers,
        per-annotator costs, injected-fault counters) in the parent
        registry, so ``repro stats`` keeps offline coverage under
        process execution.
        """
        if not self.enabled:
            return
        for name, counter in other._counters.items():
            if counter.value:
                self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge(histogram)

    def __getstate__(self) -> Dict[str, Any]:
        # Registries cross process boundaries when shard workers ship
        # their telemetry home; the lock is process-local state.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- introspection ------------------------------------------------------

    @property
    def counters(self) -> Dict[str, Counter]:
        """All counters by name (copy)."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        """All gauges by name (copy)."""
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """All histograms by name (copy)."""
        return dict(self._histograms)

    def names(self) -> List[str]:
        """Every metric name in the registry, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as plain dicts, keyed by name."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, counter in self._counters.items():
            out[name] = counter.to_dict()
        for name, gauge in self._gauges.items():
            out[name] = gauge.to_dict()
        for name, histogram in self._histograms.items():
            out[name] = histogram.to_dict()
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Drop every metric (the registry stays usable)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
