"""Human-readable rendering of a metrics registry (``repro stats``).

Groups the registry's contents into the shapes an operator scans for:
per-stage latency histograms (the ``span.*`` namespace the tracer
feeds), other distributions, counters, and gauges.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["render_stats", "stats_dict"]

_MS = 1000.0


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * _MS:9.2f}ms"


def render_stats(registry: MetricsRegistry) -> str:
    """The registry as an aligned text report."""
    lines: List[str] = []
    spans = {
        name: histogram
        for name, histogram in sorted(registry.histograms.items())
        if name.startswith("span.")
    }
    if spans:
        lines.append("stage timings (from spans)")
        lines.append(
            f"  {'stage':<34} {'calls':>7} {'total':>11} "
            f"{'p50':>11} {'p95':>11} {'p99':>11}"
        )
        for name, histogram in spans.items():
            summary = histogram.summary()
            lines.append(
                f"  {name[len('span.'):]:<34} {summary['count']:>7} "
                f"{_fmt_ms(summary['sum'])} {_fmt_ms(summary['p50'])} "
                f"{_fmt_ms(summary['p95'])} {_fmt_ms(summary['p99'])}"
            )

    others = {
        name: histogram
        for name, histogram in sorted(registry.histograms.items())
        if not name.startswith("span.")
    }
    if others:
        lines.append("")
        lines.append("distributions")
        lines.append(
            f"  {'name':<34} {'count':>7} {'mean':>11} "
            f"{'p50':>11} {'p95':>11} {'max':>11}"
        )
        for name, histogram in others.items():
            summary = histogram.summary()
            lines.append(
                f"  {name:<34} {summary['count']:>7} "
                f"{summary['mean']:>11.4g} {summary['p50']:>11.4g} "
                f"{summary['p95']:>11.4g} {summary['max']:>11.4g}"
            )

    if registry.counters:
        lines.append("")
        lines.append("counters")
        for name, counter in sorted(registry.counters.items()):
            lines.append(f"  {name:<42} {counter.value:>12}")

    if registry.gauges:
        lines.append("")
        lines.append("gauges")
        for name, gauge in sorted(registry.gauges.items()):
            lines.append(f"  {name:<42} {gauge.value:>12g}")

    if not lines:
        lines.append("no metrics recorded")
    return "\n".join(lines)


def stats_dict(registry: MetricsRegistry, tracer: Tracer) -> Dict[str, Any]:
    """Registry snapshot plus retained span trees, JSON-ready."""
    return {"metrics": registry.snapshot(), "traces": tracer.export()}
