"""Hierarchical spans over monotonic clocks.

A :class:`Span` is one timed region of a pipeline stage; spans nest,
so one ``query.execute`` root span holds the ``query.synopsis`` /
``query.siapi`` / ``query.rank`` children the paper's Figure 1 steps
map to.  The :class:`Tracer` hands out spans as context managers and
keeps the finished roots for export.

Span durations are also recorded into the metrics registry as
``span.<name>`` histograms, which is what aggregate per-stage latency
reporting (``repro stats``, the latency benchmark) reads — the span
tree itself is the per-request view.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer"]


class Span:
    """One timed, attributable region of work.

    Attributes:
        name: Stage name (dotted, e.g. ``"query.siapi"``).
        attributes: Arbitrary key/value annotations set at creation or
            via :meth:`set_attribute`.
        children: Sub-spans, in start order.
    """

    __slots__ = ("name", "attributes", "children", "parent",
                 "_start", "_end")

    def __init__(
        self,
        name: str,
        parent: Optional["Span"] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.parent = parent
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self._start = perf_counter()
        self._end: Optional[float] = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one annotation to the span."""
        self.attributes[key] = value

    def finish(self) -> None:
        """Stop the clock (idempotent)."""
        if self._end is None:
            self._end = perf_counter()

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` ran."""
        return self._end is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self._end if self._end is not None else perf_counter()
        return end - self._start

    def to_dict(self) -> Dict[str, Any]:
        """The span subtree as plain dicts (for JSON export)."""
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class _ActiveSpan:
    """Context manager binding a span to the tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self.span)


class _NullSpanContext:
    """The disabled tracer's span: no clocks, no bookkeeping."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        """Discard the annotation."""


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Produces nested spans and retains finished root spans.

    Args:
        registry: Metrics registry for ``span.<name>`` duration
            histograms; mutually exclusive with ``registry_provider``.
        registry_provider: Zero-arg callable resolving the registry at
            record time — how the default tracer follows the global
            default registry even after it is swapped.
        max_roots: Finished root spans retained for export (oldest are
            dropped first); per-stage aggregates live in the registry,
            so the cap only bounds the per-request trace view.
        enabled: When False, :meth:`span` returns a shared no-op
            context manager.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        registry_provider: Optional[Callable[[], MetricsRegistry]] = None,
        max_roots: int = 256,
        enabled: bool = True,
    ) -> None:
        if registry is not None and registry_provider is not None:
            raise ValueError("pass registry or registry_provider, not both")
        self._registry = registry
        self._registry_provider = registry_provider
        self.max_roots = max_roots
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []

    # -- span production ----------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span as a context manager.

        The span nests under the thread's currently open span; a span
        with no parent becomes a root and is retained for export.
        """
        if not self.enabled:
            return _NULL_SPAN
        parent = self.current()
        span = Span(name, parent=parent, attributes=attributes)
        if parent is not None:
            parent.children.append(span)
        self._stack().append(span)
        return _ActiveSpan(self, span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        span.finish()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit; drop it wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        registry = self._resolve_registry()
        if registry is not None:
            registry.observe(f"span.{span.name}", span.duration)
        if span.parent is None:
            with self._lock:
                self._roots.append(span)
                if len(self._roots) > self.max_roots:
                    del self._roots[: len(self._roots) - self.max_roots]

    def _resolve_registry(self) -> Optional[MetricsRegistry]:
        if self._registry is not None:
            return self._registry
        if self._registry_provider is not None:
            return self._registry_provider()
        return None

    # -- export -------------------------------------------------------------

    @property
    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def export(self) -> List[Dict[str, Any]]:
        """Every retained root span tree as plain dicts."""
        return [root.to_dict() for root in self.roots]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON dump of :meth:`export`."""
        return json.dumps(self.export(), indent=indent)

    def reset(self) -> None:
        """Drop retained roots and this thread's open stack."""
        with self._lock:
            self._roots.clear()
        self._local.stack = []
