"""Observability for the EIL pipelines: metrics + tracing.

Dependency-free telemetry with a *global default, injectable override*
pattern: instrumented components resolve :func:`get_registry` /
:func:`get_tracer` at call time, so

* ordinary use needs zero wiring — everything records into the process
  defaults, and ``repro stats`` renders them;
* a test or benchmark swaps in its own registry with
  :func:`use_registry` (or :func:`set_registry`) without rebuilding the
  system under test;
* :func:`set_enabled` (False) turns all recording into immediate
  returns, bounding instrumentation overhead on hot paths.

Typical use::

    from repro import obs

    with obs.use_registry(obs.MetricsRegistry()) as registry:
        eil = EILSystem.build(corpus)
        eil.search(FormQuery(tower="End User Services"), user)
        print(obs.render_stats(registry))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.report import render_stats, stats_dict
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "Span",
    "Tracer",
    "get_registry",
    "set_registry",
    "use_registry",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "set_enabled",
    "reset",
    "render_stats",
    "stats_dict",
]


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the default (None installs a fresh one)."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return _registry


@contextmanager
def use_registry(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Temporarily install a registry; restores the previous on exit."""
    previous = get_registry()
    installed = set_registry(registry)
    try:
        yield installed
    finally:
        set_registry(previous)


_tracer = Tracer(registry_provider=get_registry)


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the default (None installs a fresh one)."""
    global _tracer
    _tracer = (
        tracer
        if tracer is not None
        else Tracer(registry_provider=get_registry)
    )
    return _tracer


@contextmanager
def use_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Temporarily install a tracer; restores the previous on exit."""
    previous = get_tracer()
    installed = set_tracer(tracer)
    try:
        yield installed
    finally:
        set_tracer(previous)


def set_enabled(enabled: bool) -> None:
    """Enable/disable both process-wide defaults in place."""
    _registry.enabled = enabled
    _tracer.enabled = enabled


def reset() -> None:
    """Fresh default registry and tracer (both enabled)."""
    set_registry(None)
    set_tracer(None)
