"""The concurrent front door: admission control, deadlines, shedding.

:class:`EILServer` puts a thread-pool facade in front of an
:class:`~repro.core.eil.EILSystem` (or any object with the same online
API).  Its job is not to make queries faster — it is to keep the system
*well-behaved under overload*:

* **Bounded admission** — at most ``max_concurrency`` requests execute
  while at most ``queue_depth`` wait; anything beyond is shed
  immediately with :class:`~repro.errors.ServerOverloadedError`
  (a :class:`~repro.errors.TransientError`: back off and retry), so the
  queue can never grow without bound and latency stays bounded by
  design.
* **Deadline-aware rejection** — a request that exhausted its deadline
  while still queued is rejected with
  :class:`~repro.errors.DeadlineExceededError` *before* any query work
  runs; under overload the server spends its capacity only on requests
  that can still meet their deadline.
* **Circuit breaking** — request execution runs under a
  :class:`~repro.faults.CircuitBreaker`, so a persistent substrate
  outage flips to instant :class:`~repro.errors.CircuitOpenError`
  fast-fails instead of tying every worker up in retries.  Single-rung
  degradations inside :class:`~repro.core.search
  .BusinessActivityDrivenSearch` still resolve to results (the
  degradation ladder is below the breaker); only a full
  :class:`~repro.errors.EILUnavailableError` outage trips it.

Metrics (``repro stats`` vocabulary, see docs/OPERATIONS.md):
``serving.admitted`` / ``serving.shed`` / ``serving.rejected.deadline``
/ ``serving.completed`` / ``serving.errors`` counters,
``serving.latency`` / ``serving.queue_wait`` histograms (seconds), and
``serving.inflight`` / ``serving.queue_depth`` gauges.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Optional, TypeVar

from repro.concurrency import AtomicCounter
from repro.errors import (
    DeadlineExceededError,
    EILUnavailableError,
    ServerOverloadedError,
    TransientError,
)
from repro.faults import CircuitBreaker
from repro.obs import get_registry

__all__ = ["EILServer"]

_T = TypeVar("_T")


class EILServer:
    """Thread-pool serving facade with admission control.

    Args:
        eil: The system to serve — anything exposing ``search`` /
            ``keyword_search`` (an :class:`~repro.core.eil.EILSystem`).
        max_concurrency: Worker threads executing requests.
        queue_depth: Requests allowed to *wait* beyond the executing
            ones; an arriving request past ``max_concurrency +
            queue_depth`` is shed.
        breaker: Circuit breaker around request execution; the default
            trips on :class:`~repro.errors.TransientError` and
            :class:`~repro.errors.EILUnavailableError` (both-substrates
            outages), never on user errors.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        eil: Any,
        max_concurrency: int = 4,
        queue_depth: int = 16,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        self.eil = eil
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.clock = clock
        self.breaker = breaker or CircuitBreaker(
            "serving",
            trip_on=(TransientError, EILUnavailableError),
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="eil-serve"
        )
        # The admission bound: executing + queued slots.  Non-blocking
        # acquire at the door is what makes shedding immediate.
        self._slots = threading.BoundedSemaphore(
            max_concurrency + queue_depth
        )
        self._inflight = AtomicCounter()
        self._queued = AtomicCounter()
        self._closed = False

    # -- the public request surface -----------------------------------------

    def search(self, *args, deadline_seconds: Optional[float] = None,
               **kwargs):
        """Business-activity driven search through the front door.

        Blocks the caller for the result; the request still passes
        admission control, so a saturated server sheds it instead of
        queueing without bound.
        """
        return self.submit_search(
            *args, deadline_seconds=deadline_seconds, **kwargs
        ).result()

    def keyword_search(self, *args,
                       deadline_seconds: Optional[float] = None,
                       **kwargs):
        """Baseline keyword search through the front door."""
        return self.submit_keyword_search(
            *args, deadline_seconds=deadline_seconds, **kwargs
        ).result()

    def graph_query(self, *args,
                    deadline_seconds: Optional[float] = None,
                    **kwargs):
        """Entity-graph people & role query through the front door.

        Graph traversals share the same worker pool and admission
        bound as form queries — under overload a ``worked_with`` burst
        sheds exactly like a search burst, and ``serving.*`` metrics
        count both uniformly.
        """
        return self.submit_graph_query(
            *args, deadline_seconds=deadline_seconds, **kwargs
        ).result()

    def submit_search(
        self, *args, deadline_seconds: Optional[float] = None, **kwargs
    ) -> "Future":
        """Async variant of :meth:`search`; sheds at submission time."""
        return self._admit(
            lambda: self.eil.search(*args, **kwargs), deadline_seconds
        )

    def submit_keyword_search(
        self, *args, deadline_seconds: Optional[float] = None, **kwargs
    ) -> "Future":
        """Async variant of :meth:`keyword_search`."""
        return self._admit(
            lambda: self.eil.keyword_search(*args, **kwargs),
            deadline_seconds,
        )

    def submit_graph_query(
        self, *args, deadline_seconds: Optional[float] = None, **kwargs
    ) -> "Future":
        """Async variant of :meth:`graph_query`."""
        return self._admit(
            lambda: self.eil.graph_query(*args, **kwargs),
            deadline_seconds,
        )

    # -- admission / execution ----------------------------------------------

    def _admit(
        self,
        request: Callable[[], _T],
        deadline_seconds: Optional[float],
    ) -> "Future":
        if self._closed:
            raise RuntimeError("server is shut down")
        metrics = get_registry()
        if not self._slots.acquire(blocking=False):
            metrics.inc("serving.shed")
            raise ServerOverloadedError(
                f"admission queue full "
                f"({self.max_concurrency} executing + "
                f"{self.queue_depth} queued)"
            )
        metrics.inc("serving.admitted")
        enqueued_at = self.clock()
        deadline = (
            enqueued_at + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        metrics.set_gauge("serving.queue_depth",
                          self._queued.increment())
        try:
            return self._pool.submit(
                self._execute, request, enqueued_at, deadline
            )
        except BaseException:
            self._slots.release()
            metrics.set_gauge("serving.queue_depth",
                              self._queued.decrement())
            raise

    def _execute(
        self,
        request: Callable[[], _T],
        enqueued_at: float,
        deadline: Optional[float],
    ) -> _T:
        metrics = get_registry()
        started_at = self.clock()
        metrics.set_gauge("serving.queue_depth",
                          self._queued.decrement())
        metrics.observe("serving.queue_wait", started_at - enqueued_at)
        metrics.set_gauge("serving.inflight",
                          self._inflight.increment())
        try:
            if deadline is not None and started_at >= deadline:
                # The request aged out while queued; spending a worker
                # on it now would only make every later deadline worse.
                metrics.inc("serving.rejected.deadline")
                raise DeadlineExceededError(
                    f"request spent "
                    f"{started_at - enqueued_at:.3f}s in queue, "
                    f"past its deadline"
                )
            result = self.breaker.call(request)
            metrics.inc("serving.completed")
            return result
        except BaseException:
            metrics.inc("serving.errors")
            raise
        finally:
            metrics.set_gauge("serving.inflight",
                              self._inflight.decrement())
            metrics.observe("serving.latency",
                            self.clock() - enqueued_at)
            self._slots.release()

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests and (optionally) drain the pool."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "EILServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
