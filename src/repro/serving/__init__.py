"""Concurrent serving layer: sharded fan-out plus a front door.

The paper's production EIL served an entire community of practice from
one deployment; this package is the repro's equivalent of that serving
tier, in two layers:

* :mod:`repro.serving.sharding` — partition the inverted index
  (:class:`ShardedSearchEngine`) and the synopsis database
  (:class:`ShardedOrganized`) into shards keyed by deal, execute
  queries by fan-out + rank-merge, and keep rankings **bit-identical**
  to the unsharded engine by scoring every shard with corpus-global
  statistics.
* :mod:`repro.serving.server` — :class:`EILServer`, a thread-pool
  front door with a bounded admission queue, deadline-aware rejection,
  load shedding (:class:`~repro.errors.ServerOverloadedError`) and a
  circuit breaker, surfaced through ``serving.*`` metrics.

Snapshot semantics: every engine mutation and its epoch bump run under
the write side of a writer-preferring read/write lock, every query
under the read side, so a query racing ``add_workbook`` /
``remove_deal`` always observes *some* quiesced epoch — never a torn
index.
"""

from repro.serving.server import EILServer
from repro.serving.sharding import (
    ShardedOrganized,
    ShardedSearchEngine,
    shard_for,
)

__all__ = [
    "EILServer",
    "ShardedOrganized",
    "ShardedSearchEngine",
    "shard_for",
]
