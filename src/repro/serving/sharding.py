"""Deal-keyed sharding for the semantic index and the synopsis DB.

Partitioning reuses the ``shard_key=deal_id`` convention of the
process-sharded offline build: a deal's documents and synopsis rows all
land in one shard (:func:`shard_for` is a stable content hash, so the
assignment survives restarts and process boundaries).

**Why sharded rankings are bit-identical to the unsharded engine.**
BM25 (and TF-IDF) scores depend on per-document facts — tf and field
length, which are shard-invariant — and three corpus-global statistics:
corpus size N, document frequency df, and average field length avgdl.
Each shard engine therefore scores with a wrapper scorer
(:class:`_GlobalStatsScorer`) that substitutes the *global* view for
the shard-local one: N and df are integer sums over shards (exact,
since every document lives in exactly one shard) and avgdl is computed
as ``sum(int token totals) / sum(int doc counts)`` — one float divide
over exact integers, which is the same float the unsharded index
produces.  With identical per-document scores, merging the per-shard
rankings by the engine's own tie-break key ``(-score, doc_id)`` and
slicing to the limit reproduces the unsharded ranking exactly; each
shard's top-``limit`` covers the global top-``limit`` because shards
partition the corpus.

The synopsis side needs no score rewriting at all: every
:class:`~repro.core.query_analyzer.SynopsisSearch` statement is keyed
or grouped by ``deal_id``, so per-shard execution + row concatenation
is exactly equivalent to the unsharded query (no group ever spans two
shards).

Concurrency: the sharded engine has a parent-level writer-preferring
:class:`~repro.concurrency.ReadWriteLock`.  Queries fan out under the
read side; mutations run under the write side and bump **every**
child's epoch (any shard's mutation moves N/avgdl/df for all shards,
so all per-shard cached rankings must go stale together).
"""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    TypeVar,
    Union,
)

from repro.cache import LruCache
from repro.concurrency import AtomicCounter, ReadWriteLock
from repro.core.organized import OrganizedInformation
from repro.errors import SearchError
from repro.faults import get_injector
from repro.obs import get_registry
from repro.search.analyzer import Analyzer
from repro.search.document import IndexableDocument, SearchHit
from repro.search.engine import (
    DocFilter,
    ExecutionOptions,
    SearchEngine,
    _CachedRanking,
)
from repro.search.querylang import Query, parse_query
from repro.search.scoring import Bm25Scorer, Scorer

__all__ = ["shard_for", "ShardedSearchEngine", "ShardedOrganized"]

_T = TypeVar("_T")


def shard_for(key: Any, shards: int) -> int:
    """Stable shard assignment for ``key`` (deal id, usually).

    CRC32 of the key's string form — deterministic across processes and
    runs (``hash()`` is salted for strings), cheap, and uniform enough
    for the deal-count scales this system serves.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return zlib.crc32(str(key).encode("utf-8")) % shards


class _ShardedIndexView:
    """Corpus-global view over the shard indexes.

    Plays two roles:

    * the *statistics provider* for :class:`_GlobalStatsScorer` — N,
      df, avgdl and per-document lookups computed over all shards, so
      per-shard scoring uses corpus-global numbers;
    * the engine-compatible ``.index`` attribute of
      :class:`ShardedSearchEngine` — callers that walk
      ``engine.index`` (the SIAPI scope filter, incremental
      offboarding) keep working unmodified.

    The statistics methods take no lock: they are called from inside a
    fan-out query, which already holds the parent read lock (the lock
    is not reentrant, so taking it again would deadlock against a
    waiting writer).  The structure-walking methods (``doc_ids``,
    ``docs_with_metadata``, ``document`` ...) are external entry points
    and *do* take the read lock, so iterating them can never race a
    mutation.
    """

    def __init__(self, parent: "ShardedSearchEngine") -> None:
        self._parent = parent

    @property
    def _indexes(self):
        return [shard.index for shard in self._parent.shards]

    # -- corpus-global statistics (lock-free; see class docstring) --------

    def __len__(self) -> int:
        return sum(len(index) for index in self._indexes)

    def df(self, term: str, field: Optional[str] = None) -> int:
        """Global document frequency (sum of disjoint per-shard dfs)."""
        return sum(index.df(term, field) for index in self._indexes)

    def document_frequency(
        self, term: str, field: Optional[str] = None
    ) -> int:
        """Exact global document frequency."""
        return sum(
            index.document_frequency(term, field)
            for index in self._indexes
        )

    def average_length(self, field: Optional[str] = None) -> float:
        """Global average field length, bit-identical to unsharded.

        Integer token totals and document counts are summed across
        shards first and divided once, so the result is the exact float
        the unsharded index would compute.
        """
        if field is not None:
            docs = sum(
                index.field_document_count(field)
                for index in self._indexes
            )
            if docs == 0:
                return 0.0
            total = sum(
                index.field_token_total(field) for index in self._indexes
            )
            return total / docs
        docs = len(self)
        if docs == 0:
            return 0.0
        return sum(index.token_total() for index in self._indexes) / docs

    def field_document_count(self, field: str) -> int:
        """Global number of documents carrying ``field``."""
        return sum(
            index.field_document_count(field) for index in self._indexes
        )

    def field_token_total(self, field: str) -> int:
        """Global token total of ``field`` (exact integer)."""
        return sum(
            index.field_token_total(field) for index in self._indexes
        )

    def token_total(self) -> int:
        """Global token total across all fields (exact integer)."""
        return sum(index.token_total() for index in self._indexes)

    def term_frequency(
        self, term: str, doc_id: str, field: Optional[str] = None
    ) -> int:
        """tf of ``term`` in ``doc_id`` — routed to the owning shard."""
        shard = self._parent._shard_of_doc(doc_id)
        if shard is None:
            return 0
        return shard.index.term_frequency(term, doc_id, field)

    def field_length(self, field: str, doc_id: str) -> int:
        """Field length of ``doc_id`` — routed to the owning shard."""
        shard = self._parent._shard_of_doc(doc_id)
        if shard is None:
            return 0
        return shard.index.field_length(field, doc_id)

    def total_length(self, doc_id: str) -> int:
        """Total length of ``doc_id`` — routed to the owning shard."""
        shard = self._parent._shard_of_doc(doc_id)
        if shard is None:
            return 0
        return shard.index.total_length(doc_id)

    # -- structure-walking entry points (read-locked) ----------------------

    @property
    def doc_ids(self) -> Set[str]:
        """Ids of all indexed documents (consistent snapshot)."""
        with self._parent._rw.read():
            ids: Set[str] = set()
            for index in self._indexes:
                ids |= index.doc_ids
            return ids

    @property
    def fields(self) -> List[str]:
        """All field names seen by any shard."""
        with self._parent._rw.read():
            names: Set[str] = set()
            for index in self._indexes:
                names.update(index.fields)
            return sorted(names)

    def document(self, doc_id: str) -> IndexableDocument:
        """Fetch a stored document from its owning shard."""
        with self._parent._rw.read():
            shard = self._parent._shard_of_doc(doc_id)
            if shard is None:
                raise SearchError(f"document {doc_id!r} not indexed")
            return shard.index.document(doc_id)

    def has_document(self, doc_id: str) -> bool:
        """True if any shard holds ``doc_id``."""
        with self._parent._rw.read():
            return self._parent._shard_of_doc(doc_id) is not None

    def docs_with_metadata(
        self, key: str, values: Iterable[Any]
    ) -> Set[str]:
        """Union of the per-shard metadata matches (shards disjoint)."""
        values = list(values)
        with self._parent._rw.read():
            matches: Set[str] = set()
            for index in self._indexes:
                matches |= index.docs_with_metadata(key, values)
            return matches

    def matching_docs(
        self, term: str, field: Optional[str] = None
    ) -> Set[str]:
        """Union of the per-shard term matches."""
        with self._parent._rw.read():
            matches: Set[str] = set()
            for index in self._indexes:
                matches |= index.matching_docs(term, field)
            return matches

    def vocabulary(self, field: Optional[str] = None) -> Set[str]:
        """Union of the per-shard vocabularies."""
        with self._parent._rw.read():
            terms: Set[str] = set()
            for index in self._indexes:
                terms |= index.vocabulary(field)
            return terms


class _GlobalStatsScorer:
    """Wraps a shard engine's scorer to score with global statistics.

    The shard engine hands its *local* index and df to the scorer; this
    wrapper swaps in the :class:`_ShardedIndexView` (global N, avgdl,
    routed per-document lookups) and replaces the local df with the
    global one, so every shard computes exactly the score the unsharded
    engine would.

    Capability passthrough: ``score_postings`` / ``upper_bound`` are
    bound onto the *instance* only when the base scorer has them, so
    the engine's ``hasattr`` capability checks (bulk scoring, MaxScore)
    resolve exactly as they would against the base scorer.  The
    shard-local ``max_tf`` the engine passes to ``upper_bound`` remains
    a valid bound for that shard's own postings.
    """

    def __init__(self, base: Scorer, view: _ShardedIndexView) -> None:
        self._base = base
        self._view = view
        if hasattr(base, "score_postings"):
            self.score_postings = self._score_postings
        if hasattr(base, "upper_bound"):
            self.upper_bound = self._upper_bound

    def _global_df(self, term: str, field: Optional[str]) -> int:
        if field is not None:
            return self._view.df(term, field)
        return self._view.document_frequency(term)

    def score(
        self,
        index,
        term: str,
        doc_id: str,
        field: Optional[str] = None,
        df: Optional[int] = None,
    ) -> float:
        if df is not None:
            df = self._global_df(term, field)
        return self._base.score(self._view, term, doc_id, field, df=df)

    def _score_postings(
        self,
        index,
        term: str,
        field: Optional[str],
        tfs: Sequence[int],
        lengths: Sequence[int],
        df: int,
    ) -> List[float]:
        return self._base.score_postings(
            self._view, term, field, tfs, lengths,
            df=self._global_df(term, field),
        )

    def _upper_bound(
        self,
        index,
        term: str,
        field: Optional[str],
        df: int,
        max_tf: Optional[int] = None,
    ) -> float:
        return self._base.upper_bound(
            self._view, term, field, self._global_df(term, field),
            max_tf=max_tf,
        )

    def clear_caches(self) -> None:
        """Passthrough to the base scorer's cache reset, if any."""
        clear = getattr(self._base, "clear_caches", None)
        if clear is not None:
            clear()


class ShardedSearchEngine:
    """A drop-in :class:`~repro.search.engine.SearchEngine` over shards.

    Documents route to shards by their ``shard_key`` metadata (deal id
    by default, the process-sharded build's convention); queries fan
    out to every shard and merge by the engine's tie-break ordering.
    Rankings are bit-identical to one unsharded engine over the same
    corpus (see the module docstring for why).

    Args:
        shards: Number of index partitions (>= 1).
        analyzer, scorer, field_boosts, cache_size, options: As for
            :class:`~repro.search.engine.SearchEngine`; every child
            shares the analyzer and (via the global-stats wrapper) the
            scorer, so idf caches warm once for the whole corpus.
        shard_key: Metadata key that routes a document to its shard;
            documents without it route by their own ``doc_id``.
        fanout_workers: ``0`` executes the fan-out serially on the
            calling thread (the default; cheapest for small shard
            counts under the GIL), ``> 0`` uses a shared thread pool.
    """

    def __init__(
        self,
        shards: int = 4,
        analyzer: Optional[Analyzer] = None,
        scorer: Optional[Scorer] = None,
        field_boosts: Optional[Mapping[str, float]] = None,
        cache_size: int = 256,
        options: Optional[ExecutionOptions] = None,
        shard_key: str = "deal_id",
        fanout_workers: int = 0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.analyzer = analyzer or Analyzer()
        self.scorer: Scorer = scorer or Bm25Scorer()
        self.field_boosts = dict(field_boosts or {})
        self.options = options or ExecutionOptions()
        self.shard_key = shard_key
        self._rw = ReadWriteLock()
        self._epoch = AtomicCounter()
        self.index = _ShardedIndexView(self)
        wrapped = _GlobalStatsScorer(self.scorer, self.index)
        # Result caching happens at the parent (one logical query, one
        # hit/miss, no fan-out on a hit); the children run uncached so
        # cache metrics keep their unsharded per-query semantics.
        self.shards: List[SearchEngine] = [
            SearchEngine(
                analyzer=self.analyzer,
                scorer=wrapped,
                field_boosts=self.field_boosts,
                cache_size=0,
                options=self.options,
            )
            for _ in range(shards)
        ]
        self._cache = LruCache("engine.cache", cache_size)
        self._doc_shard: Dict[str, SearchEngine] = {}
        self._pool = (
            ThreadPoolExecutor(
                max_workers=min(fanout_workers, shards),
                thread_name_prefix="shard-fanout",
            )
            if fanout_workers > 0
            else None
        )

    @property
    def epoch(self) -> int:
        """Parent mutation epoch; bumped by every ``add``/``remove``."""
        return self._epoch.value

    def _shard_of_doc(self, doc_id: str) -> Optional[SearchEngine]:
        return self._doc_shard.get(doc_id)

    def _route(self, document: IndexableDocument) -> SearchEngine:
        key = document.metadata.get(self.shard_key, document.doc_id)
        return self.shards[shard_for(key, len(self.shards))]

    def _bump_children(self) -> None:
        # Any mutation moves N/avgdl/df for EVERY shard, so every
        # child's cached rankings must go stale, not just the mutated
        # shard's.  Caller holds the parent write lock.
        for shard in self.shards:
            shard.bump_epoch()
        self._epoch.increment()

    # -- indexing -----------------------------------------------------------

    def add(self, document: IndexableDocument) -> None:
        """Index one document into its deal's shard."""
        with self._rw.write():
            shard = self._route(document)
            shard.index.add(document)
            self._doc_shard[document.doc_id] = shard
            self._bump_children()

    def add_all(self, documents: Iterable[IndexableDocument]) -> int:
        """Index many documents; returns the count."""
        count = 0
        for document in documents:
            self.add(document)
            count += 1
        return count

    def remove(self, doc_id: str) -> None:
        """Remove a document from its owning shard."""
        with self._rw.write():
            shard = self._doc_shard.pop(doc_id, None)
            if shard is None:
                raise SearchError(f"document {doc_id!r} not indexed")
            shard.index.remove(doc_id)
            self._bump_children()

    def bump_epoch(self) -> None:
        """Advance every epoch without touching any index."""
        with self._rw.write():
            self._bump_children()

    def __len__(self) -> int:
        return len(self.index)

    # -- search --------------------------------------------------------------

    def _map_shards(
        self, fn: Callable[[SearchEngine], _T]
    ) -> List[_T]:
        if self._pool is None:
            return [fn(shard) for shard in self.shards]
        return list(self._pool.map(fn, self.shards))

    def search(
        self,
        query: Union[str, Query],
        limit: Optional[int] = None,
        doc_filter: DocFilter = None,
        options: Optional[ExecutionOptions] = None,
    ) -> List[SearchHit]:
        """Fan the query out to every shard and rank-merge.

        Each shard returns its own top ``limit`` (scored with global
        statistics); since the shards partition the corpus, the merged
        ``(-score, doc_id)`` order sliced to ``limit`` is exactly the
        unsharded ranking.
        """
        get_injector().check("index")
        if isinstance(query, str):
            query = parse_query(query)
        opts = options if options is not None else self.options
        metrics = get_registry()
        with self._rw.read():
            cache_key = self._cache_key(query, doc_filter, opts)
            if cache_key is not None:
                cached = self._cache.get(cache_key)
                if cached is not None and cached.covers(limit):
                    if cached.limit is None or limit != cached.limit:
                        metrics.inc("engine.cache.sliced")
                    return cached.slice(limit)
            per_shard = self._map_shards(
                lambda shard: shard.search(
                    query, limit, doc_filter, options
                )
            )
            merged: List[SearchHit] = []
            for hits in per_shard:
                merged.extend(hits)
            merged.sort(key=lambda hit: (-hit.score, hit.doc_id))
            if limit is not None:
                merged = merged[:limit]
            if cache_key is not None:
                self._cache.put(
                    cache_key, _CachedRanking(tuple(merged), limit)
                )
            return list(merged)

    def _cache_key(
        self,
        query: Query,
        doc_filter: DocFilter,
        options: ExecutionOptions,
    ):
        """Parent-level cache key, mirroring the unsharded engine's.

        The parent epoch stands in for the index epoch — every
        mutation on any shard bumps it, so a cached merged ranking can
        never outlive the corpus state it was computed against.
        """
        from collections.abc import Set as AbstractSet

        if doc_filter is None:
            filter_key = None
        elif isinstance(doc_filter, AbstractSet):
            filter_key = frozenset(doc_filter)
        else:
            return None  # predicates have no stable identity
        try:
            hash(query)
        except TypeError:  # pragma: no cover - unhashable custom node
            return None
        return (self.epoch, query, filter_key, options)

    def count(
        self, query: Union[str, Query], doc_filter: DocFilter = None
    ) -> int:
        """Total matching documents (per-shard counts are disjoint)."""
        get_injector().check("index")
        if isinstance(query, str):
            query = parse_query(query)
        metrics = get_registry()
        with self._rw.read():
            cache_key = self._cache_key(query, doc_filter, self.options)
            if cache_key is not None:
                cached = self._cache.get(cache_key)
                if cached is not None and cached.limit is None:
                    metrics.inc("engine.counts_from_cache")
                    return len(cached.hits)
            return sum(
                self._map_shards(
                    lambda shard: shard.count(query, doc_filter)
                )
            )

    def close(self) -> None:
        """Shut the fan-out pool down (no-op for serial fan-out)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- persistence ---------------------------------------------------------

    SHARDS_MANIFEST = "SHARDS.json"
    _SHARDS_FORMAT = "repro-sharded-index"
    _SHARDS_VERSION = 1

    def save_index(self, directory: str) -> Dict[str, Any]:
        """Persist every shard's index under ``directory``.

        Layout: ``SHARDS.json`` (format marker + shard count) plus one
        ``shard-NN/`` segment directory per shard.  Runs under the
        parent write lock so the per-shard snapshots are mutually
        consistent.  Returns combined storage stats.
        """
        import json as _json
        import os as _os

        from repro.storage.atomic import atomic_write_text

        directory = _os.path.abspath(directory)
        _os.makedirs(directory, exist_ok=True)
        with self._rw.write():
            combined: Dict[str, Any] = {}
            for position, shard in enumerate(self.shards):
                stats = shard.save_index(
                    _os.path.join(directory, f"shard-{position:02d}")
                )
                for key, value in stats.items():
                    combined[key] = combined.get(key, 0) + value
            if combined.get("docs"):
                combined["bytes_per_doc"] = (
                    combined["size_bytes"] / combined["docs"]
                )
            atomic_write_text(
                _os.path.join(directory, self.SHARDS_MANIFEST),
                _json.dumps(
                    {
                        "format": self._SHARDS_FORMAT,
                        "version": self._SHARDS_VERSION,
                        "shards": len(self.shards),
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n",
            )
            return combined

    def load_index(self, directory: str, **load_options) -> None:
        """Cold-start every shard from a ``save_index`` directory.

        The on-disk shard count must match this engine's — documents
        were partitioned by :func:`shard_for` at save time, and loading
        them into a different partition count would misroute every
        query fan-out.
        """
        import json as _json
        import os as _os

        from repro.errors import StorageError

        manifest_path = _os.path.join(directory, self.SHARDS_MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                body = _json.load(handle)
        except OSError as exc:
            raise StorageError(
                f"cannot read shard manifest {manifest_path}: {exc}"
            ) from exc
        except ValueError as exc:
            raise StorageError(
                f"shard manifest {manifest_path} is not valid JSON: {exc}"
            ) from exc
        if (
            not isinstance(body, dict)
            or body.get("format") != self._SHARDS_FORMAT
        ):
            raise StorageError(
                f"{manifest_path} is not a sharded index manifest"
            )
        if body.get("version") != self._SHARDS_VERSION:
            raise StorageError(
                f"shard manifest version {body.get('version')!r} "
                f"unsupported (expected {self._SHARDS_VERSION})"
            )
        saved_shards = body.get("shards")
        if saved_shards != len(self.shards):
            raise StorageError(
                f"index was saved with {saved_shards} shards but this "
                f"engine has {len(self.shards)} — shard counts must "
                f"match (set REPRO_SHARDS/--shards accordingly)"
            )
        with self._rw.write():
            for position, shard in enumerate(self.shards):
                shard.load_index(
                    _os.path.join(directory, f"shard-{position:02d}"),
                    **load_options,
                )
            self._doc_shard = {
                doc_id: shard
                for shard in self.shards
                for doc_id in shard.index.doc_ids
            }
            self._bump_children()


class _FanoutResult:
    """Concatenated result rows from a fanned-out SQL statement."""

    def __init__(self, results: Sequence[Any]) -> None:
        self._results = list(results)

    def to_dicts(self) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for result in self._results:
            rows.extend(result.to_dicts())
        return rows

    def column(self, name: str) -> List[Any]:
        values: List[Any] = []
        for result in self._results:
            values.extend(result.column(name))
        return values


class _FanoutDb:
    """Broadcasts SQL to every shard database and concatenates rows.

    Exactly equivalent to one database for the synopsis workload
    because every statement the online side issues is keyed or grouped
    by ``deal_id`` and a deal's rows live in exactly one shard: no
    SELECT group ever spans shards, and a broadcast DELETE only finds
    rows in the owning shard.
    """

    def __init__(self, dbs: Sequence[Any]) -> None:
        self._dbs = list(dbs)

    def execute(self, sql: str, params: Optional[Sequence] = None):
        return _FanoutResult(
            [db.execute(sql, params) for db in self._dbs]
        )

    def query_one(self, sql: str, params: Optional[Sequence] = None):
        for db in self._dbs:
            row = db.query_one(sql, params)
            if row is not None:
                return row
        return None

    @property
    def table_names(self):
        return self._dbs[0].table_names


class ShardedOrganized:
    """Deal-sharded organized information, API-compatible fan-out.

    Holds one :class:`~repro.core.organized.OrganizedInformation` per
    shard; writes route by deal id, deal-scoped reads route to the
    owning shard, and the ``db`` attribute is a fan-out facade so the
    deal-keyed SQL of :class:`~repro.core.query_analyzer
    .SynopsisSearch` (and the broadcast DELETEs of incremental
    offboarding) runs unmodified.
    """

    def __init__(self, shards: int = 4) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = [OrganizedInformation() for _ in range(shards)]
        self.db = _FanoutDb([shard.db for shard in self.shards])

    def _shard(self, deal_id: str) -> OrganizedInformation:
        return self.shards[shard_for(deal_id, len(self.shards))]

    # -- population ---------------------------------------------------------

    def store_deal_context(
        self, deal_id: str, context: Mapping[str, str]
    ) -> None:
        """Route the deal's overview row to its shard."""
        self._shard(deal_id).store_deal_context(deal_id, context)

    def store_scopes(self, deal_id: str, entries) -> None:
        """Route the deal's scope rows to its shard."""
        self._shard(deal_id).store_scopes(deal_id, entries)

    def store_contacts(self, deal_id: str, contacts) -> None:
        """Route the deal's contact rows to its shard."""
        self._shard(deal_id).store_contacts(deal_id, contacts)

    def store_win_strategies(self, deal_id: str, strategies) -> None:
        """Route the deal's win-strategy rows to its shard."""
        self._shard(deal_id).store_win_strategies(deal_id, strategies)

    def store_technologies(self, deal_id: str, technologies) -> None:
        """Route the deal's technology rows to its shard."""
        self._shard(deal_id).store_technologies(deal_id, technologies)

    def store_client_references(self, deal_id: str, references) -> None:
        """Route the deal's client-reference rows to its shard."""
        self._shard(deal_id).store_client_references(deal_id, references)

    # -- reads ---------------------------------------------------------------

    def deal_ids(self) -> List[str]:
        """All populated deal ids across shards, sorted."""
        ids: List[str] = []
        for shard in self.shards:
            ids.extend(shard.deal_ids())
        return sorted(ids)

    def deal_row(self, deal_id: str):
        """One deal's overview row from its owning shard."""
        return self._shard(deal_id).deal_row(deal_id)

    def scopes_of(self, deal_id: str):
        """Ordered scope rows from the owning shard."""
        return self._shard(deal_id).scopes_of(deal_id)

    def contacts_of(self, deal_id: str):
        """Contact rows from the owning shard."""
        return self._shard(deal_id).contacts_of(deal_id)

    def strategies_of(self, deal_id: str):
        """Win-strategy texts from the owning shard."""
        return self._shard(deal_id).strategies_of(deal_id)

    def technologies_of(self, deal_id: str):
        """Technology rows from the owning shard."""
        return self._shard(deal_id).technologies_of(deal_id)

    def references_of(self, deal_id: str):
        """Client-reference texts from the owning shard."""
        return self._shard(deal_id).references_of(deal_id)
