"""Intranet personnel directory (the paper's "hidden database")."""

from repro.intranet.directory import DirectoryRecord, PersonnelDirectory

__all__ = ["DirectoryRecord", "PersonnelDirectory"]
