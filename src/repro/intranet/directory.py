"""The intranet personnel directory (the paper's "hidden database").

Paper Section 3.3 ("Data Integration"): *"the internal personnel website
has a hidden database containing each employee's information ... we
integrated data from our internal personnel website to validate the
extracted people's status and update their contact information."*

The directory is a small structured store over :class:`repro.db`,
exposing the lookups the social-networking annotator needs (Figure 3,
step 13): by email, by normalized name, and an "is this person still
active" status check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.corpus.people import Person
from repro.db import Column, Database, DataType, TableSchema
from repro.text.normalize import name_key, normalize_email

__all__ = ["DirectoryRecord", "PersonnelDirectory"]


@dataclass(frozen=True)
class DirectoryRecord:
    """One employee's authoritative record.

    Attributes:
        serial: Employee serial number.
        full_name: Canonical display name.
        email: Canonical corporate email.
        phone: Current phone number.
        organization: Current employer/business unit.
        active: False for people who left (their extracted contacts
            should be flagged, not offered as connections).
    """

    serial: str
    full_name: str
    email: str
    phone: str
    organization: str
    active: bool = True


class PersonnelDirectory:
    """Structured personnel lookups backed by the relational engine."""

    def __init__(self) -> None:
        self._db = Database()
        self._db.create_table(
            TableSchema(
                "personnel",
                [
                    Column("serial", DataType.TEXT),
                    Column("full_name", DataType.TEXT, nullable=False),
                    Column("name_key", DataType.TEXT, nullable=False),
                    Column("email", DataType.TEXT, nullable=False),
                    Column("phone", DataType.TEXT),
                    Column("organization", DataType.TEXT),
                    Column("active", DataType.BOOLEAN, nullable=False,
                           default=True),
                ],
                primary_key=["serial"],
                unique=[["email"]],
            )
        )
        table = self._db.table("personnel")
        table.create_index("ix_personnel_name", ("name_key",))
        table.create_index("ix_personnel_email", ("email",))
        self._next_serial = 1

    # -- loading ------------------------------------------------------------

    def add(self, record: DirectoryRecord) -> None:
        """Insert one authoritative record."""
        self._db.insert(
            "personnel",
            {
                "serial": record.serial,
                "full_name": record.full_name,
                "name_key": name_key(record.full_name),
                "email": normalize_email(record.email),
                "phone": record.phone,
                "organization": record.organization,
                "active": record.active,
            },
        )

    def add_person(self, person: Person, active: bool = True) -> DirectoryRecord:
        """Register a corpus person; serials are assigned sequentially."""
        record = DirectoryRecord(
            serial=f"{self._next_serial:06d}",
            full_name=person.full_name,
            email=person.email,
            phone=person.phone,
            organization=person.organization,
            active=active,
        )
        self._next_serial += 1
        self.add(record)
        return record

    def load_people(self, people: Iterable[Person]) -> int:
        """Bulk-register people, skipping duplicate emails; returns count."""
        count = 0
        seen = set()
        for person in people:
            email = normalize_email(person.email)
            if email in seen or self.lookup_email(email) is not None:
                continue
            seen.add(email)
            self.add_person(person)
            count += 1
        return count

    # -- lookups ---------------------------------------------------------------

    def lookup_email(self, email: str) -> Optional[DirectoryRecord]:
        """The record owning ``email``, or None."""
        row = self._db.query_one(
            "SELECT * FROM personnel WHERE email = ?",
            [normalize_email(email)],
        )
        return _to_record(row)

    def lookup_name(self, name: str) -> List[DirectoryRecord]:
        """Records whose name matches ``name`` (order-insensitive)."""
        result = self._db.execute(
            "SELECT * FROM personnel WHERE name_key = ? ORDER BY serial",
            [name_key(name)],
        )
        return [_to_record(row) for row in result.to_dicts()]

    def is_active(self, email: str) -> Optional[bool]:
        """Active flag for ``email``, or None when unknown."""
        record = self.lookup_email(email)
        return record.active if record is not None else None

    def __len__(self) -> int:
        return self._db.execute("SELECT COUNT(*) FROM personnel").scalar()


def _to_record(row) -> Optional[DirectoryRecord]:
    if row is None:
        return None
    return DirectoryRecord(
        serial=row["serial"],
        full_name=row["full_name"],
        email=row["email"],
        phone=row["phone"],
        organization=row["organization"],
        active=row["active"],
    )
