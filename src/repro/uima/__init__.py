"""Annotation framework (the paper's UIMA substitute).

Core concepts mirror UIMA: a :class:`TypeSystem` registers annotation
types; a :class:`Cas` holds one document's text, metadata and typed
annotations; :class:`AnalysisEngine` subclasses (annotators) add
annotations; :class:`AggregateAnalysisEngine` composes them; and a
:class:`CollectionProcessingEngine` drives whole collections and feeds
:class:`CasConsumer` components that aggregate across documents.
"""

from repro.uima.cas import Annotation, Cas
from repro.uima.cpe import CasConsumer, CollectionProcessingEngine, CpeReport
from repro.uima.engine import (
    AggregateAnalysisEngine,
    AnalysisEngine,
    EngineResult,
)
from repro.uima.typesystem import AnnotationType, TypeSystem

__all__ = [
    "Annotation",
    "Cas",
    "TypeSystem",
    "AnnotationType",
    "AnalysisEngine",
    "AggregateAnalysisEngine",
    "EngineResult",
    "CasConsumer",
    "CollectionProcessingEngine",
    "CpeReport",
]
