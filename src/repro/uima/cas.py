"""CAS — Common Analysis Structure.

A CAS carries one document's text ("sofa" in UIMA terms), its metadata,
and every annotation produced so far.  Annotators read the text, add
typed annotations with character spans and feature values, and later
stages (other annotators, CPEs) select annotations by type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.errors import TypeSystemError
from repro.uima.typesystem import TypeSystem

__all__ = ["Annotation", "Cas"]


@dataclass(frozen=True)
class Annotation:
    """One typed span with feature values.

    Attributes:
        annotation_id: Unique within its CAS (assigned by the CAS).
        type_name: The annotation's type in the CAS's type system.
        begin: Start offset into the CAS text (inclusive).
        end: End offset (exclusive); ``begin == end`` marks a
            document-level annotation with no specific span.
        features: Feature name -> value.
    """

    annotation_id: int
    type_name: str
    begin: int
    end: int
    features: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", dict(self.features))

    def get(self, feature: str, default: Any = None) -> Any:
        """Feature value, or ``default`` when unset."""
        return self.features.get(feature, default)

    def __getitem__(self, feature: str) -> Any:
        try:
            return self.features[feature]
        except KeyError:
            raise KeyError(
                f"annotation {self.type_name}#{self.annotation_id} has no "
                f"feature {feature!r}"
            ) from None


class Cas:
    """One document's analysis state.

    Args:
        text: The document text annotations index into.
        type_system: The validating type registry.
        metadata: Document metadata (activity id, repository, doc type);
            available to all annotators, stored but never validated.
    """

    def __init__(
        self,
        text: str,
        type_system: TypeSystem,
        metadata: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.text = text
        self.type_system = type_system
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self._annotations: List[Annotation] = []
        self._next_id = 1

    # -- adding annotations ----------------------------------------------

    def annotate(
        self,
        type_name: str,
        begin: int = 0,
        end: int = 0,
        **features: Any,
    ) -> Annotation:
        """Create, validate and store one annotation.

        Raises TypeSystemError on unknown type or feature, ValueError on
        an out-of-bounds span, so annotator bugs surface immediately.
        """
        allowed = self.type_system.all_features(type_name)
        unknown = set(features) - set(allowed)
        if unknown:
            raise TypeSystemError(
                f"type {type_name!r} has no feature(s) {sorted(unknown)}"
            )
        if not 0 <= begin <= end <= len(self.text):
            raise ValueError(
                f"span [{begin}, {end}) out of bounds for text of length "
                f"{len(self.text)}"
            )
        annotation = Annotation(
            self._next_id, type_name, begin, end, features
        )
        self._next_id += 1
        self._annotations.append(annotation)
        return annotation

    # -- selecting annotations -------------------------------------------

    def select(self, type_name: Optional[str] = None) -> List[Annotation]:
        """Annotations of ``type_name`` (or all), in document order.

        Selection is polymorphic: selecting a supertype returns its
        subtypes' annotations too.
        """
        if type_name is None:
            selected = list(self._annotations)
        else:
            wanted = self.type_system.subtypes_of(type_name)
            selected = [
                a for a in self._annotations if a.type_name in wanted
            ]
        selected.sort(key=lambda a: (a.begin, a.end, a.annotation_id))
        return selected

    def select_covered(
        self, type_name: str, begin: int, end: int
    ) -> List[Annotation]:
        """Annotations of ``type_name`` fully inside [begin, end)."""
        return [
            a
            for a in self.select(type_name)
            if a.begin >= begin and a.end <= end
        ]

    def covered_text(self, annotation: Annotation) -> str:
        """The text span an annotation covers."""
        return self.text[annotation.begin:annotation.end]

    def remove(self, annotation: Annotation) -> None:
        """Delete one annotation (used by de-duplicating CPEs)."""
        try:
            self._annotations.remove(annotation)
        except ValueError:
            raise KeyError(
                f"annotation #{annotation.annotation_id} not in CAS"
            ) from None

    # -- serialization -----------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """A compact, picklable CAS stream.

        The process-sharded CPE ships analyzed CASes from worker
        processes back to the consumers, so serialization is explicit
        API, not an accident of the attribute layout: text, type
        system, metadata, the annotation tuples, and the next
        annotation id (so a round-tripped CAS keeps assigning unique
        ids).
        """
        return {
            "text": self.text,
            "type_system": self.type_system,
            "metadata": self.metadata,
            "annotations": [
                (a.annotation_id, a.type_name, a.begin, a.end, a.features)
                for a in self._annotations
            ],
            "next_id": self._next_id,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.text = state["text"]
        self.type_system = state["type_system"]
        self.metadata = dict(state["metadata"])
        self._annotations = [
            Annotation(annotation_id, type_name, begin, end, features)
            for annotation_id, type_name, begin, end, features
            in state["annotations"]
        ]
        self._next_id = state["next_id"]

    def __iter__(self) -> Iterator[Annotation]:
        return iter(self.select())

    def __len__(self) -> int:
        return len(self._annotations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cas(text_len={len(self.text)}, "
            f"annotations={len(self._annotations)})"
        )
