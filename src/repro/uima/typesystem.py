"""Annotation type system (the UIMA substitute's type registry).

Annotators declare the annotation types they produce — name, allowed
feature slots, optional supertype — and the CAS validates every
annotation against this registry, so a typo in a feature name fails
loudly at annotation time instead of silently producing empty synopsis
fields downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.errors import TypeSystemError

__all__ = ["AnnotationType", "TypeSystem"]


@dataclass(frozen=True)
class AnnotationType:
    """One annotation type.

    Attributes:
        name: Dotted type name, e.g. ``eil.Person``.
        features: Feature slots annotations of this type may carry.
        supertype: Optional parent type name; ``select`` on a parent
            also returns annotations of its subtypes, and feature slots
            are inherited.
    """

    name: str
    features: FrozenSet[str] = frozenset()
    supertype: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TypeSystemError("annotation type name must be non-empty")
        object.__setattr__(self, "features", frozenset(self.features))


class TypeSystem:
    """Registry of annotation types with inheritance."""

    def __init__(self) -> None:
        self._types: Dict[str, AnnotationType] = {}

    def define(
        self,
        name: str,
        features: Iterable[str] = (),
        supertype: Optional[str] = None,
    ) -> AnnotationType:
        """Register a type; re-defining an existing name raises."""
        if name in self._types:
            raise TypeSystemError(f"type {name!r} already defined")
        if supertype is not None and supertype not in self._types:
            raise TypeSystemError(
                f"supertype {supertype!r} of {name!r} is not defined"
            )
        annotation_type = AnnotationType(name, frozenset(features), supertype)
        self._types[name] = annotation_type
        return annotation_type

    def get(self, name: str) -> AnnotationType:
        """Look up a type by name."""
        annotation_type = self._types.get(name)
        if annotation_type is None:
            raise TypeSystemError(f"unknown annotation type {name!r}")
        return annotation_type

    def __contains__(self, name: str) -> bool:
        return name in self._types

    @property
    def type_names(self) -> Set[str]:
        """All registered type names."""
        return set(self._types)

    def all_features(self, name: str) -> FrozenSet[str]:
        """Feature slots of ``name`` including inherited ones."""
        features: Set[str] = set()
        current: Optional[str] = name
        seen: Set[str] = set()
        while current is not None:
            if current in seen:  # defensive: cycles cannot normally occur
                raise TypeSystemError(f"supertype cycle at {current!r}")
            seen.add(current)
            annotation_type = self.get(current)
            features |= annotation_type.features
            current = annotation_type.supertype
        return frozenset(features)

    def is_subtype(self, name: str, ancestor: str) -> bool:
        """True if ``name`` is ``ancestor`` or inherits from it."""
        current: Optional[str] = name
        while current is not None:
            if current == ancestor:
                return True
            current = self.get(current).supertype
        return False

    def subtypes_of(self, ancestor: str) -> Set[str]:
        """All type names that are ``ancestor`` or inherit from it."""
        self.get(ancestor)  # raise early on unknown ancestor
        return {
            name for name in self._types if self.is_subtype(name, ancestor)
        }
