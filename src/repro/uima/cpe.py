"""Collection Processing Engines (paper Section 3.4).

A CPE drives a whole collection through an analysis engine and then
hands the per-document results to *CAS consumers* — collection-level
components that aggregate across documents: counting scope occurrences
per business activity, de-duplicating contacts, normalizing fields.
Consumers receive each processed CAS and a final
``collection_process_complete`` callback where cross-document reasoning
happens.

The per-document stage (optional ``prepare`` — e.g. parsing a raw
document to a CAS — followed by the analysis engine) is embarrassingly
parallel, so :meth:`CollectionProcessingEngine.run` fans it out over a
pluggable **executor**:

``serial``
    One document at a time on the calling thread — the historical
    reference execution every other mode must reproduce exactly.
``threads``
    A :class:`~concurrent.futures.ThreadPoolExecutor` fan-out.  Cheap
    to start and shares memory, but Python's GIL serializes the
    CPU-bound annotators, so wall-clock gains are limited to whatever
    releases the GIL (I/O, injected latency).
``processes``
    The corpus is sharded — by deal when a ``shard_key`` is given,
    contiguous chunks otherwise — across ``multiprocessing`` worker
    processes, each running prepare+annotate for its shard and sending
    pickled per-document outcomes back.  This is true multi-core: every
    worker has its own interpreter and its own GIL.

Consumers are inherently order-sensitive collection-level state, so in
every mode the per-worker streams are merged back in stable submission
(document) order before any consumer sees a CAS — a ``workers=N`` run
feeds consumers the exact sequence the serial run would, making the
runs' results identical at any worker count under any executor.  The
merge is *streaming*: outcomes are consumed in submission order as they
complete (bounded submission window), so a run configured with
``continue_on_error=False`` — or one that hits a fatal ``prepare``
error — raises at the same document the serial run would, with wasted
work bounded by the in-flight window instead of the whole collection.

Process-mode determinism has two extra legs (see
docs/ARCHITECTURE.md):

* Worker processes never *inherit* fault-injection state via fork.
  Each shard task installs a fresh :class:`~repro.faults.FaultInjector`
  rebuilt from the parent's ``(profile, seed)``; keyed draws depend
  only on ``(seed, component, key, nth-call-for-that-key)``, so the
  same documents fail no matter which process drew them.
* Worker-side metrics (parse timers, per-annotator costs, injected
  fault counters) are recorded into a fresh per-shard
  :class:`~repro.obs.MetricsRegistry` that rides back with the shard's
  outcomes and is merged into the parent registry, so ``repro stats``
  keeps its offline coverage under process execution.

Fault tolerance (docs/OPERATIONS.md): per-document outcomes fall into
three buckets.  *Processed* documents feed the consumers.  *Failed*
documents raised a hard :class:`AnnotatorError` — a bug or bad input
that a retry would not fix.  *Quarantined* documents hit a
:class:`TransientError` (injected fault, repository hiccup, timeout)
that survived the CPE's :class:`~repro.faults.RetryPolicy`, or overran
the per-document ``deadline_seconds``; they are set aside — never fed
to consumers — and the build continues.  A run whose combined
failed+quarantined ratio exceeds ``max_failure_ratio`` aborts with
:class:`BuildAbortedError` *before* the consumers complete, so a
mostly-dead substrate cannot masquerade as a thin-but-valid build.
"""

from __future__ import annotations

import multiprocessing
import pickle
from collections import OrderedDict, deque
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    AnnotatorError,
    BuildAbortedError,
    DeadlineExceededError,
    TransientError,
)
from repro.faults import FaultInjector, RetryPolicy, get_injector, set_injector
from repro.obs import MetricsRegistry, get_registry, get_tracer, set_registry
from repro.uima.cas import Cas
from repro.uima.engine import AnalysisEngine

__all__ = ["CasConsumer", "CpeReport", "CollectionProcessingEngine",
           "EXECUTORS"]

EXECUTORS = ("serial", "threads", "processes")

# Streaming merge keeps at most workers * _WINDOW_FACTOR outcomes in
# flight: enough to hide merge latency, small enough to bound wasted
# work when a merged outcome aborts the run.
_WINDOW_FACTOR = 4


class CasConsumer:
    """Collection-level aggregation component."""

    name: str = "consumer"

    def process_cas(self, cas: Cas) -> None:
        """Observe one analyzed CAS (default: no-op)."""

    def collection_process_complete(self) -> Any:
        """Finish cross-document reasoning; return the consumer's result."""
        return None


@dataclass
class CpeReport:
    """Outcome of one CPE run.

    Attributes:
        documents_processed: CASes successfully analyzed.
        documents_failed: CASes whose analysis raised a hard
            (non-transient) error.
        documents_quarantined: CASes set aside after transient failures
            or deadline overruns; distinct from hard failures so
            operators can tell "rerun the build" from "fix the data".
        failures: Error strings for each failed document, each carrying
            the document's identity (doc id + deal) and the originating
            exception type so parallel-run failures stay attributable.
        quarantined: Same format, for quarantined documents.
        consumer_results: ``collection_process_complete`` return values,
            keyed by consumer name.
    """

    documents_processed: int = 0
    documents_failed: int = 0
    documents_quarantined: int = 0
    failures: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    consumer_results: dict = field(default_factory=dict)

    @property
    def failure_ratio(self) -> float:
        """(failed + quarantined) / total seen (0.0 on an empty run)."""
        total = (self.documents_processed + self.documents_failed
                 + self.documents_quarantined)
        if not total:
            return 0.0
        return (self.documents_failed + self.documents_quarantined) / total


def _describe_failure(cas: Optional[Cas], exc: BaseException) -> str:
    """One attributable failure line: doc identity + originating error.

    ``AnnotatorError`` wraps the real exception as ``__cause__``; surface
    the wrapped type so a log line names the actual bug class.
    """
    doc_id = deal_id = "<unknown>"
    if cas is not None:
        doc_id = str(cas.metadata.get("doc_id") or "<unknown>")
        deal_id = str(cas.metadata.get("deal_id") or "<unknown>")
    origin = type(exc.__cause__ or exc).__name__
    return f"doc {doc_id} (deal {deal_id}): {origin}: {exc}"


@dataclass
class _Outcome:
    """One document's fate, produced in the workers, merged serially.

    ``elapsed`` is the wall-clock of the document's *final* attempt and
    is recorded for every status — a slow document that then fails must
    stay visible in the latency histograms (docs/OPERATIONS.md).
    """

    cas: Optional[Cas]
    status: str  # "ok" | "failed" | "quarantined" | "fatal"
    error: Optional[BaseException]
    elapsed: float


def _picklable_error(exc: Optional[BaseException]) -> Optional[BaseException]:
    """``exc`` if it survives a pickle round-trip, else a safe stand-in.

    Process-mode outcomes cross a pipe.  Exceptions wrapping
    unpicklable state (rare — a socket in ``__cause__``, say) are
    replaced by an :class:`AnnotatorError` that preserves the original
    type name and message, so the merge loop still raises/records
    something attributable instead of dying on a ``PicklingError``.
    """
    if exc is None:
        return None
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return AnnotatorError(f"{type(exc).__name__}: {exc}")


@dataclass
class _DocumentProcessor:
    """The per-document worker body: prepare + engine under retry.

    Extracted from the CPE so the ``processes`` executor can pickle
    exactly the state the per-document stage needs (engine, prepare
    callable, retry policy, deadline) without dragging the consumers —
    collection-level, main-process-only state — across the pipe.
    """

    engine: AnalysisEngine
    prepare: Optional[Callable[[Any], Cas]]
    retry: Optional[RetryPolicy]
    deadline_seconds: Optional[float]

    def process(self, item: Any) -> _Outcome:
        """Process one item, never raising.

        The recorded elapsed time covers only the final attempt (retry
        backoff must not count against the document's deadline), for
        every outcome status — failures keep their real latency.
        """
        state = {
            "cas": None,
            "prepared": self.prepare is None,
            "started": perf_counter(),
        }

        def attempt() -> float:
            state["started"] = perf_counter()
            if self.prepare is not None:
                state["prepared"] = False
                state["cas"] = self.prepare(item)
                state["prepared"] = True
            else:
                state["cas"] = item
            self.engine.run(state["cas"])
            return perf_counter() - state["started"]

        try:
            if self.retry is not None:
                elapsed = self.retry.call(attempt, metric="cpe.retry")
            else:
                elapsed = attempt()
        except TransientError as exc:
            return _Outcome(state["cas"], "quarantined", exc,
                            perf_counter() - state["started"])
        except AnnotatorError as exc:
            if not state["prepared"]:
                # prepare() raised a hard error: propagate, as before
                # the fault layer (the collection itself is broken).
                return _Outcome(state["cas"], "fatal", exc,
                                perf_counter() - state["started"])
            return _Outcome(state["cas"], "failed", exc,
                            perf_counter() - state["started"])
        except BaseException as exc:  # re-raised by the merge loop
            return _Outcome(state["cas"], "fatal", exc,
                            perf_counter() - state["started"])
        if (self.deadline_seconds is not None
                and elapsed > self.deadline_seconds):
            return _Outcome(
                state["cas"],
                "quarantined",
                DeadlineExceededError(
                    f"document processing took {elapsed:.3f}s "
                    f"(deadline {self.deadline_seconds:.3f}s)"
                ),
                elapsed,
            )
        return _Outcome(state["cas"], "ok", None, elapsed)


@dataclass
class _ShardWorkerState:
    """Everything a worker process needs, shipped once per worker.

    The fault injector is *not* shipped: workers rebuild one from
    ``(fault_profile, fault_seed)`` so no decision-stream state is
    inherited via fork (keyed draws are position-independent, so a
    rebuilt injector makes exactly the serial run's decisions).
    """

    processor: _DocumentProcessor
    continue_on_error: bool
    fault_profile: Any
    fault_seed: int


_WORKER_STATE: Optional[_ShardWorkerState] = None


def _init_shard_worker(state: _ShardWorkerState) -> None:
    """Process-pool initializer: stash the shipped worker state."""
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_shard(
    shard: Sequence[Tuple[int, Any]],
) -> Tuple[List[Tuple[int, _Outcome]], MetricsRegistry]:
    """Worker-process task: process one shard, return indexed outcomes.

    Installs a fresh injector (re-seeded, never fork-inherited) and a
    fresh metrics registry per shard; the registry rides back with the
    outcomes so the parent can merge worker-side telemetry.  Processing
    stops at the first outcome the parent's merge loop would raise on
    (fatal, or any non-ok under ``continue_on_error=False``), so wasted
    work is bounded shard-locally too.
    """
    state = _WORKER_STATE
    assert state is not None, "worker initializer did not run"
    set_injector(FaultInjector(state.fault_profile, seed=state.fault_seed))
    registry = MetricsRegistry()
    set_registry(registry)
    outcomes: List[Tuple[int, _Outcome]] = []
    for index, item in shard:
        outcome = state.processor.process(item)
        outcome.error = _picklable_error(outcome.error)
        outcomes.append((index, outcome))
        if outcome.status == "fatal" or (
            outcome.status != "ok" and not state.continue_on_error
        ):
            break
    return outcomes, registry


def _build_shards(
    items: Sequence[Any],
    workers: int,
    shard_key: Optional[Callable[[Any], Hashable]],
) -> List[List[Tuple[int, Any]]]:
    """Partition ``items`` (tagged with their submission index).

    With a ``shard_key`` (the offline build keys on deal id) every
    distinct key becomes one shard, in first-seen order — a deal's
    documents always travel together, which keeps per-deal state
    (repository handles, fault keys) process-local.  Without a key the
    items are cut into contiguous chunks, several per worker so the
    pool can load-balance.  Outcomes carry their submission index, so
    the merge is order-exact regardless of how shards are formed.
    """
    indexed = list(enumerate(items))
    if not indexed:
        return []
    if shard_key is not None:
        groups: "OrderedDict[Hashable, List[Tuple[int, Any]]]" = OrderedDict()
        for index, item in indexed:
            groups.setdefault(shard_key(item), []).append((index, item))
        return list(groups.values())
    chunks = min(len(indexed), workers * _WINDOW_FACTOR)
    size = (len(indexed) + chunks - 1) // chunks
    return [indexed[i:i + size] for i in range(0, len(indexed), size)]


class CollectionProcessingEngine:
    """Run ``engine`` over a CAS collection, then finish the consumers.

    Args:
        engine: Document-level analysis (usually an aggregate).
        consumers: Collection-level components, run per CAS in order.
        continue_on_error: When True (the default, matching a nightly
            batch pipeline), per-document failures and quarantines are
            recorded and the run continues; when False the first one
            raises — at the same document under every executor, because
            outcomes merge in submission order.
        workers: Default worker count for :meth:`run` — 1 keeps the
            historical serial execution.
        executor: Default execution mode for :meth:`run` — one of
            ``"serial"``, ``"threads"`` (default), ``"processes"``.
            See the module docstring for the trade-offs; results are
            identical under all three.
        retry: Retry policy for transient per-document errors (None
            disables retrying; transients then quarantine immediately).
        deadline_seconds: Per-document budget for prepare+analysis.  A
            document whose (final-attempt) processing overran it is
            quarantined.  Workers cannot be pre-empted, so this is a
            post-hoc check: the slow document still consumed its worker
            slot once, but its results are withheld from the consumers.
        max_failure_ratio: Abort threshold for
            ``(failed + quarantined) / total``; the default 1.0 never
            aborts (pre-fault-layer behaviour).
    """

    def __init__(
        self,
        engine: AnalysisEngine,
        consumers: Sequence[CasConsumer] = (),
        continue_on_error: bool = True,
        workers: int = 1,
        executor: str = "threads",
        retry: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
        max_failure_ratio: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if not 0.0 <= max_failure_ratio <= 1.0:
            raise ValueError(
                f"max_failure_ratio must be in [0, 1], "
                f"got {max_failure_ratio}"
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {deadline_seconds}"
            )
        self.engine = engine
        self.consumers = list(consumers)
        self.continue_on_error = continue_on_error
        self.workers = workers
        self.executor = executor
        self.retry = retry
        self.deadline_seconds = deadline_seconds
        self.max_failure_ratio = max_failure_ratio

    def run(
        self,
        collection: Iterable[Any],
        prepare: Optional[Callable[[Any], Cas]] = None,
        workers: Optional[int] = None,
        executor: Optional[str] = None,
        shard_key: Optional[Callable[[Any], Hashable]] = None,
    ) -> CpeReport:
        """Process every item; returns the collection-level report.

        Args:
            collection: CASes, or raw items when ``prepare`` is given.
            prepare: Maps a raw item to a CAS (e.g. document parsing);
                runs inside the worker pool so parse *and* annotate fan
                out together.  ``None`` treats items as ready CASes.
                Under the ``processes`` executor it must be picklable,
                as must the items and the CASes it produces.
            workers: Pool size for this run (defaults to the engine's
                configured ``workers``); 1 runs strictly serially under
                any executor.
            executor: Execution mode for this run (defaults to the
                engine's configured ``executor``).
            shard_key: ``item -> shard identity`` for the ``processes``
                executor (the offline build passes the deal id, so a
                deal's documents stay in one worker).  ``None`` shards
                into contiguous chunks.  Ignored by other executors.

        Raises:
            BuildAbortedError: When more than ``max_failure_ratio`` of
                the documents failed or were quarantined; the partial
                report rides on the exception's ``report`` attribute.
        """
        count = self.workers if workers is None else workers
        if count < 1:
            raise ValueError(f"workers must be >= 1, got {count}")
        mode = self.executor if executor is None else executor
        if mode not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {mode!r}"
            )
        processor = _DocumentProcessor(
            self.engine, prepare, self.retry, self.deadline_seconds
        )
        if mode == "serial" or count == 1:
            return self._run_serial(collection, processor)
        if mode == "threads":
            return self._run_threads(collection, processor, count)
        return self._run_processes(collection, processor, count, shard_key)

    # -- serial path --------------------------------------------------------

    def _run_serial(
        self,
        collection: Iterable[Any],
        processor: _DocumentProcessor,
    ) -> CpeReport:
        report = CpeReport()
        with get_tracer().span("cpe.run", executor="serial"):
            for item in collection:
                self._merge_outcome(report, processor.process(item))
            self._check_failure_ratio(report)
            self._complete_consumers(report)
        return report

    # -- thread-pool path ---------------------------------------------------

    def _run_threads(
        self,
        collection: Iterable[Any],
        processor: _DocumentProcessor,
        workers: int,
    ) -> CpeReport:
        """Thread fan-out with a streaming, submission-order merge.

        Outcomes are merged strictly in submission order *as they
        complete*, with at most ``workers * 4`` documents in flight —
        so the consumers observe the exact serial sequence, and when a
        merged outcome raises (fatal error, or ``continue_on_error=
        False``) no further documents are submitted: the run fails at
        the same document as the serial run, with wasted work bounded
        by the window instead of the whole collection.
        """
        report = CpeReport()
        with get_tracer().span("cpe.run", workers=workers,
                               executor="threads"):
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="cpe"
            ) as pool:
                items = iter(collection)
                pending: Deque[Future] = deque()

                def submit_next() -> None:
                    for item in items:
                        pending.append(pool.submit(processor.process, item))
                        return

                for _ in range(workers * _WINDOW_FACTOR):
                    submit_next()
                try:
                    while pending:
                        outcome = pending.popleft().result()
                        submit_next()
                        self._merge_outcome(report, outcome)
                except BaseException:
                    for future in pending:
                        future.cancel()
                    raise
            self._check_failure_ratio(report)
            self._complete_consumers(report)
        return report

    # -- process-pool path --------------------------------------------------

    def _run_processes(
        self,
        collection: Iterable[Any],
        processor: _DocumentProcessor,
        workers: int,
        shard_key: Optional[Callable[[Any], Hashable]],
    ) -> CpeReport:
        """Shard across worker processes; merge in submission order.

        Each shard task returns ``(submission index, outcome)`` pairs
        plus its worker-side metrics registry.  The merge buffers
        whatever arrives out of order and feeds the consumers strictly
        by submission index, so results — including the document a
        failing run raises at — are identical to the serial run.
        """
        items = list(collection)
        report = CpeReport()
        injector = get_injector()
        state = _ShardWorkerState(
            processor=processor,
            continue_on_error=self.continue_on_error,
            fault_profile=injector.profile,
            fault_seed=injector.seed,
        )
        shards = _build_shards(items, workers, shard_key)
        registry = get_registry()
        with get_tracer().span("cpe.run", workers=workers,
                               executor="processes", shards=len(shards)):
            if shards:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(shards)),
                    mp_context=_pool_context(),
                    initializer=_init_shard_worker,
                    initargs=(state,),
                ) as pool:
                    futures = [
                        pool.submit(_run_shard, shard) for shard in shards
                    ]
                    buffered: Dict[int, _Outcome] = {}
                    next_index = 0
                    try:
                        for future in as_completed(futures):
                            outcomes, shard_registry = future.result()
                            registry.merge(shard_registry)
                            for index, outcome in outcomes:
                                buffered[index] = outcome
                            while next_index in buffered:
                                self._merge_outcome(
                                    report, buffered.pop(next_index)
                                )
                                next_index += 1
                    except BaseException:
                        for future in futures:
                            future.cancel()
                        raise
            self._check_failure_ratio(report)
            self._complete_consumers(report)
        return report

    # -- shared bookkeeping -------------------------------------------------

    def _merge_outcome(self, report: CpeReport, outcome: _Outcome) -> None:
        if outcome.status == "fatal":
            raise outcome.error
        if outcome.status == "failed":
            self._record_failure(report, outcome)
            if not self.continue_on_error:
                raise outcome.error
            return
        if outcome.status == "quarantined":
            self._record_quarantine(report, outcome)
            if not self.continue_on_error:
                raise outcome.error
            return
        self._record_success(report, outcome)

    def _record_success(self, report: CpeReport, outcome: _Outcome) -> None:
        metrics = get_registry()
        report.documents_processed += 1
        metrics.inc("cpe.documents_processed")
        metrics.observe("cpe.document_seconds", outcome.elapsed)
        for consumer in self.consumers:
            consumer.process_cas(outcome.cas)

    def _record_failure(self, report: CpeReport, outcome: _Outcome) -> None:
        metrics = get_registry()
        report.documents_failed += 1
        report.failures.append(
            _describe_failure(outcome.cas, outcome.error)
        )
        metrics.inc("cpe.documents_failed")
        metrics.observe("cpe.document_seconds.failed", outcome.elapsed)

    def _record_quarantine(
        self, report: CpeReport, outcome: _Outcome
    ) -> None:
        metrics = get_registry()
        report.documents_quarantined += 1
        report.quarantined.append(
            _describe_failure(outcome.cas, outcome.error)
        )
        metrics.inc("cpe.documents_quarantined")
        metrics.observe("cpe.document_seconds.quarantined", outcome.elapsed)

    def _check_failure_ratio(self, report: CpeReport) -> None:
        if report.failure_ratio > self.max_failure_ratio:
            get_registry().inc("cpe.builds_aborted")
            raise BuildAbortedError(
                f"build aborted: {report.documents_failed} failed + "
                f"{report.documents_quarantined} quarantined of "
                f"{report.documents_processed + report.documents_failed + report.documents_quarantined}"
                f" documents ({report.failure_ratio:.0%} > "
                f"max_failure_ratio {self.max_failure_ratio:.0%})",
                report=report,
            )

    def _complete_consumers(self, report: CpeReport) -> None:
        with get_tracer().span("cpe.consumers_complete"):
            for consumer in self.consumers:
                report.consumer_results[consumer.name] = (
                    consumer.collection_process_complete()
                )


def _pool_context():
    """The multiprocessing context for shard pools.

    Prefer ``fork`` (cheap start, no re-import) where the platform
    offers it; shard workers re-seed their injector and registry
    explicitly, so nothing correctness-relevant rides on fork
    inheritance, and the spawn fallback works because every shipped
    object (processor, profile, outcomes) is picklable.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
