"""Collection Processing Engines (paper Section 3.4).

A CPE drives a whole collection through an analysis engine and then
hands the per-document results to *CAS consumers* — collection-level
components that aggregate across documents: counting scope occurrences
per business activity, de-duplicating contacts, normalizing fields.
Consumers receive each processed CAS and a final
``collection_process_complete`` callback where cross-document reasoning
happens.

The per-document stage (optional ``prepare`` — e.g. parsing a raw
document to a CAS — followed by the analysis engine) is embarrassingly
parallel, so :meth:`CollectionProcessingEngine.run` accepts a
``workers`` count and fans that stage across a thread pool.  Consumers
are inherently order-sensitive collection-level state, so the per-worker
streams are merged back in stable submission (document) order before
any consumer sees a CAS — a ``workers=N`` run feeds consumers the exact
sequence the serial run would, making the two runs' results identical.

Fault tolerance (docs/OPERATIONS.md): per-document outcomes fall into
three buckets.  *Processed* documents feed the consumers.  *Failed*
documents raised a hard :class:`AnnotatorError` — a bug or bad input
that a retry would not fix.  *Quarantined* documents hit a
:class:`TransientError` (injected fault, repository hiccup, timeout)
that survived the CPE's :class:`~repro.faults.RetryPolicy`, or overran
the per-document ``deadline_seconds``; they are set aside — never fed
to consumers — and the build continues.  A run whose combined
failed+quarantined ratio exceeds ``max_failure_ratio`` aborts with
:class:`BuildAbortedError` *before* the consumers complete, so a
mostly-dead substrate cannot masquerade as a thin-but-valid build.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.errors import (
    AnnotatorError,
    BuildAbortedError,
    DeadlineExceededError,
    TransientError,
)
from repro.faults import RetryPolicy
from repro.obs import get_registry, get_tracer
from repro.uima.cas import Cas
from repro.uima.engine import AnalysisEngine

__all__ = ["CasConsumer", "CpeReport", "CollectionProcessingEngine"]


class CasConsumer:
    """Collection-level aggregation component."""

    name: str = "consumer"

    def process_cas(self, cas: Cas) -> None:
        """Observe one analyzed CAS (default: no-op)."""

    def collection_process_complete(self) -> Any:
        """Finish cross-document reasoning; return the consumer's result."""
        return None


@dataclass
class CpeReport:
    """Outcome of one CPE run.

    Attributes:
        documents_processed: CASes successfully analyzed.
        documents_failed: CASes whose analysis raised a hard
            (non-transient) error.
        documents_quarantined: CASes set aside after transient failures
            or deadline overruns; distinct from hard failures so
            operators can tell "rerun the build" from "fix the data".
        failures: Error strings for each failed document, each carrying
            the document's identity (doc id + deal) and the originating
            exception type so parallel-run failures stay attributable.
        quarantined: Same format, for quarantined documents.
        consumer_results: ``collection_process_complete`` return values,
            keyed by consumer name.
    """

    documents_processed: int = 0
    documents_failed: int = 0
    documents_quarantined: int = 0
    failures: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    consumer_results: dict = field(default_factory=dict)

    @property
    def failure_ratio(self) -> float:
        """(failed + quarantined) / total seen (0.0 on an empty run)."""
        total = (self.documents_processed + self.documents_failed
                 + self.documents_quarantined)
        if not total:
            return 0.0
        return (self.documents_failed + self.documents_quarantined) / total


def _describe_failure(cas: Optional[Cas], exc: BaseException) -> str:
    """One attributable failure line: doc identity + originating error.

    ``AnnotatorError`` wraps the real exception as ``__cause__``; surface
    the wrapped type so a log line names the actual bug class.
    """
    doc_id = deal_id = "<unknown>"
    if cas is not None:
        doc_id = str(cas.metadata.get("doc_id") or "<unknown>")
        deal_id = str(cas.metadata.get("deal_id") or "<unknown>")
    origin = type(exc.__cause__ or exc).__name__
    return f"doc {doc_id} (deal {deal_id}): {origin}: {exc}"


@dataclass
class _Outcome:
    """One document's fate, produced in the workers, merged serially."""

    cas: Optional[Cas]
    status: str  # "ok" | "failed" | "quarantined" | "fatal"
    error: Optional[BaseException]
    elapsed: float


class CollectionProcessingEngine:
    """Run ``engine`` over a CAS collection, then finish the consumers.

    Args:
        engine: Document-level analysis (usually an aggregate).
        consumers: Collection-level components, run per CAS in order.
        continue_on_error: When True (the default, matching a nightly
            batch pipeline), per-document failures and quarantines are
            recorded and the run continues; when False the first one
            raises.
        workers: Default worker count for :meth:`run` — 1 keeps the
            historical serial execution.
        retry: Retry policy for transient per-document errors (None
            disables retrying; transients then quarantine immediately).
        deadline_seconds: Per-document budget for prepare+analysis.  A
            document whose (final-attempt) processing overran it is
            quarantined.  Threads cannot be pre-empted, so this is a
            post-hoc check: the slow document still consumed its worker
            slot once, but its results are withheld from the consumers.
        max_failure_ratio: Abort threshold for
            ``(failed + quarantined) / total``; the default 1.0 never
            aborts (pre-fault-layer behaviour).
    """

    def __init__(
        self,
        engine: AnalysisEngine,
        consumers: Sequence[CasConsumer] = (),
        continue_on_error: bool = True,
        workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
        max_failure_ratio: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not 0.0 <= max_failure_ratio <= 1.0:
            raise ValueError(
                f"max_failure_ratio must be in [0, 1], "
                f"got {max_failure_ratio}"
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {deadline_seconds}"
            )
        self.engine = engine
        self.consumers = list(consumers)
        self.continue_on_error = continue_on_error
        self.workers = workers
        self.retry = retry
        self.deadline_seconds = deadline_seconds
        self.max_failure_ratio = max_failure_ratio

    def run(
        self,
        collection: Iterable[Any],
        prepare: Optional[Callable[[Any], Cas]] = None,
        workers: Optional[int] = None,
    ) -> CpeReport:
        """Process every item; returns the collection-level report.

        Args:
            collection: CASes, or raw items when ``prepare`` is given.
            prepare: Maps a raw item to a CAS (e.g. document parsing);
                runs inside the worker pool so parse *and* annotate fan
                out together.  ``None`` treats items as ready CASes.
            workers: Pool size for this run (defaults to the engine's
                configured ``workers``); 1 runs strictly serially.

        Raises:
            BuildAbortedError: When more than ``max_failure_ratio`` of
                the documents failed or were quarantined; the partial
                report rides on the exception's ``report`` attribute.
        """
        count = self.workers if workers is None else workers
        if count < 1:
            raise ValueError(f"workers must be >= 1, got {count}")
        if count == 1:
            return self._run_serial(collection, prepare)
        return self._run_parallel(collection, prepare, count)

    # -- serial path --------------------------------------------------------

    def _run_serial(
        self,
        collection: Iterable[Any],
        prepare: Optional[Callable[[Any], Cas]],
    ) -> CpeReport:
        report = CpeReport()
        with get_tracer().span("cpe.run"):
            for item in collection:
                self._merge_outcome(
                    report, self._process_one(item, prepare)
                )
            self._check_failure_ratio(report)
            self._complete_consumers(report)
        return report

    # -- parallel path ------------------------------------------------------

    def _run_parallel(
        self,
        collection: Iterable[Any],
        prepare: Optional[Callable[[Any], Cas]],
        workers: int,
    ) -> CpeReport:
        report = CpeReport()
        with get_tracer().span("cpe.run", workers=workers):
            items = list(collection)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="cpe"
            ) as pool:
                outcomes = list(
                    pool.map(
                        lambda item: self._process_one(item, prepare),
                        items,
                    )
                )
            # Merge per-worker streams in stable document order so the
            # consumers observe the exact serial sequence.
            for outcome in outcomes:
                self._merge_outcome(report, outcome)
            self._check_failure_ratio(report)
            self._complete_consumers(report)
        return report

    def _process_one(
        self,
        item: Any,
        prepare: Optional[Callable[[Any], Cas]],
    ) -> _Outcome:
        """Worker body: prepare + engine under retry, never raising.

        The returned elapsed time covers only the final attempt (retry
        backoff must not count against the document's deadline).
        """
        state = {"cas": None, "prepared": prepare is None}

        def attempt() -> float:
            started = perf_counter()
            if prepare is not None:
                state["cas"] = prepare(item)
                state["prepared"] = True
            else:
                state["cas"] = item
            self.engine.run(state["cas"])
            return perf_counter() - started

        try:
            if self.retry is not None:
                elapsed = self.retry.call(attempt, metric="cpe.retry")
            else:
                elapsed = attempt()
        except TransientError as exc:
            return _Outcome(state["cas"], "quarantined", exc, 0.0)
        except AnnotatorError as exc:
            if not state["prepared"]:
                # prepare() raised a hard error: propagate, as before
                # the fault layer (the collection itself is broken).
                return _Outcome(state["cas"], "fatal", exc, 0.0)
            return _Outcome(state["cas"], "failed", exc, 0.0)
        except BaseException as exc:  # re-raised by the merge loop
            return _Outcome(state["cas"], "fatal", exc, 0.0)
        if (self.deadline_seconds is not None
                and elapsed > self.deadline_seconds):
            return _Outcome(
                state["cas"],
                "quarantined",
                DeadlineExceededError(
                    f"document processing took {elapsed:.3f}s "
                    f"(deadline {self.deadline_seconds:.3f}s)"
                ),
                elapsed,
            )
        return _Outcome(state["cas"], "ok", None, elapsed)

    # -- shared bookkeeping -------------------------------------------------

    def _merge_outcome(self, report: CpeReport, outcome: _Outcome) -> None:
        if outcome.status == "fatal":
            raise outcome.error
        if outcome.status == "failed":
            self._record_failure(report, outcome.cas, outcome.error)
            if not self.continue_on_error:
                raise outcome.error
            return
        if outcome.status == "quarantined":
            self._record_quarantine(report, outcome.cas, outcome.error)
            if not self.continue_on_error:
                raise outcome.error
            return
        self._record_success(report, outcome.cas, outcome.elapsed)

    def _record_success(
        self, report: CpeReport, cas: Cas, elapsed: float
    ) -> None:
        metrics = get_registry()
        report.documents_processed += 1
        metrics.inc("cpe.documents_processed")
        metrics.observe("cpe.document_seconds", elapsed)
        for consumer in self.consumers:
            consumer.process_cas(cas)

    def _record_failure(
        self, report: CpeReport, cas: Optional[Cas], exc: BaseException
    ) -> None:
        report.documents_failed += 1
        report.failures.append(_describe_failure(cas, exc))
        get_registry().inc("cpe.documents_failed")

    def _record_quarantine(
        self, report: CpeReport, cas: Optional[Cas], exc: BaseException
    ) -> None:
        report.documents_quarantined += 1
        report.quarantined.append(_describe_failure(cas, exc))
        get_registry().inc("cpe.documents_quarantined")

    def _check_failure_ratio(self, report: CpeReport) -> None:
        if report.failure_ratio > self.max_failure_ratio:
            get_registry().inc("cpe.builds_aborted")
            raise BuildAbortedError(
                f"build aborted: {report.documents_failed} failed + "
                f"{report.documents_quarantined} quarantined of "
                f"{report.documents_processed + report.documents_failed + report.documents_quarantined}"
                f" documents ({report.failure_ratio:.0%} > "
                f"max_failure_ratio {self.max_failure_ratio:.0%})",
                report=report,
            )

    def _complete_consumers(self, report: CpeReport) -> None:
        with get_tracer().span("cpe.consumers_complete"):
            for consumer in self.consumers:
                report.consumer_results[consumer.name] = (
                    consumer.collection_process_complete()
                )
