"""Collection Processing Engines (paper Section 3.4).

A CPE drives a whole collection through an analysis engine and then
hands the per-document results to *CAS consumers* — collection-level
components that aggregate across documents: counting scope occurrences
per business activity, de-duplicating contacts, normalizing fields.
Consumers receive each processed CAS and a final
``collection_process_complete`` callback where cross-document reasoning
happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterable, List, Sequence

from repro.errors import AnnotatorError
from repro.obs import get_registry, get_tracer
from repro.uima.cas import Cas
from repro.uima.engine import AnalysisEngine

__all__ = ["CasConsumer", "CpeReport", "CollectionProcessingEngine"]


class CasConsumer:
    """Collection-level aggregation component."""

    name: str = "consumer"

    def process_cas(self, cas: Cas) -> None:
        """Observe one analyzed CAS (default: no-op)."""

    def collection_process_complete(self) -> Any:
        """Finish cross-document reasoning; return the consumer's result."""
        return None


@dataclass
class CpeReport:
    """Outcome of one CPE run.

    Attributes:
        documents_processed: CASes successfully analyzed.
        documents_failed: CASes whose analysis raised.
        failures: Error strings for each failed document.
        consumer_results: ``collection_process_complete`` return values,
            keyed by consumer name.
    """

    documents_processed: int = 0
    documents_failed: int = 0
    failures: List[str] = field(default_factory=list)
    consumer_results: dict = field(default_factory=dict)


class CollectionProcessingEngine:
    """Run ``engine`` over a CAS collection, then finish the consumers.

    Args:
        engine: Document-level analysis (usually an aggregate).
        consumers: Collection-level components, run per CAS in order.
        continue_on_error: When True (the default, matching a nightly
            batch pipeline), per-document analysis failures are recorded
            and the run continues; when False the first failure raises.
    """

    def __init__(
        self,
        engine: AnalysisEngine,
        consumers: Sequence[CasConsumer] = (),
        continue_on_error: bool = True,
    ) -> None:
        self.engine = engine
        self.consumers = list(consumers)
        self.continue_on_error = continue_on_error

    def run(self, collection: Iterable[Cas]) -> CpeReport:
        """Process every CAS; returns the collection-level report."""
        report = CpeReport()
        metrics = get_registry()
        with get_tracer().span("cpe.run"):
            for cas in collection:
                started = perf_counter()
                try:
                    self.engine.run(cas)
                except AnnotatorError as exc:
                    report.documents_failed += 1
                    report.failures.append(str(exc))
                    metrics.inc("cpe.documents_failed")
                    if not self.continue_on_error:
                        raise
                    continue
                report.documents_processed += 1
                metrics.inc("cpe.documents_processed")
                metrics.observe(
                    "cpe.document_seconds", perf_counter() - started
                )
                for consumer in self.consumers:
                    consumer.process_cas(cas)
            with get_tracer().span("cpe.consumers_complete"):
                for consumer in self.consumers:
                    report.consumer_results[consumer.name] = (
                        consumer.collection_process_complete()
                    )
        return report
