"""Collection Processing Engines (paper Section 3.4).

A CPE drives a whole collection through an analysis engine and then
hands the per-document results to *CAS consumers* — collection-level
components that aggregate across documents: counting scope occurrences
per business activity, de-duplicating contacts, normalizing fields.
Consumers receive each processed CAS and a final
``collection_process_complete`` callback where cross-document reasoning
happens.

The per-document stage (optional ``prepare`` — e.g. parsing a raw
document to a CAS — followed by the analysis engine) is embarrassingly
parallel, so :meth:`CollectionProcessingEngine.run` accepts a
``workers`` count and fans that stage across a thread pool.  Consumers
are inherently order-sensitive collection-level state, so the per-worker
streams are merged back in stable submission (document) order before
any consumer sees a CAS — a ``workers=N`` run feeds consumers the exact
sequence the serial run would, making the two runs' results identical.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AnnotatorError
from repro.obs import get_registry, get_tracer
from repro.uima.cas import Cas
from repro.uima.engine import AnalysisEngine

__all__ = ["CasConsumer", "CpeReport", "CollectionProcessingEngine"]


class CasConsumer:
    """Collection-level aggregation component."""

    name: str = "consumer"

    def process_cas(self, cas: Cas) -> None:
        """Observe one analyzed CAS (default: no-op)."""

    def collection_process_complete(self) -> Any:
        """Finish cross-document reasoning; return the consumer's result."""
        return None


@dataclass
class CpeReport:
    """Outcome of one CPE run.

    Attributes:
        documents_processed: CASes successfully analyzed.
        documents_failed: CASes whose analysis raised.
        failures: Error strings for each failed document, each carrying
            the document's identity (doc id + deal) and the originating
            exception type so parallel-run failures stay attributable.
        consumer_results: ``collection_process_complete`` return values,
            keyed by consumer name.
    """

    documents_processed: int = 0
    documents_failed: int = 0
    failures: List[str] = field(default_factory=list)
    consumer_results: dict = field(default_factory=dict)


def _describe_failure(cas: Optional[Cas], exc: BaseException) -> str:
    """One attributable failure line: doc identity + originating error.

    ``AnnotatorError`` wraps the real exception as ``__cause__``; surface
    the wrapped type so a log line names the actual bug class.
    """
    doc_id = deal_id = "<unknown>"
    if cas is not None:
        doc_id = str(cas.metadata.get("doc_id") or "<unknown>")
        deal_id = str(cas.metadata.get("deal_id") or "<unknown>")
    origin = type(exc.__cause__ or exc).__name__
    return f"doc {doc_id} (deal {deal_id}): {origin}: {exc}"


class CollectionProcessingEngine:
    """Run ``engine`` over a CAS collection, then finish the consumers.

    Args:
        engine: Document-level analysis (usually an aggregate).
        consumers: Collection-level components, run per CAS in order.
        continue_on_error: When True (the default, matching a nightly
            batch pipeline), per-document analysis failures are recorded
            and the run continues; when False the first failure raises.
        workers: Default worker count for :meth:`run` — 1 keeps the
            historical serial execution.
    """

    def __init__(
        self,
        engine: AnalysisEngine,
        consumers: Sequence[CasConsumer] = (),
        continue_on_error: bool = True,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.consumers = list(consumers)
        self.continue_on_error = continue_on_error
        self.workers = workers

    def run(
        self,
        collection: Iterable[Any],
        prepare: Optional[Callable[[Any], Cas]] = None,
        workers: Optional[int] = None,
    ) -> CpeReport:
        """Process every item; returns the collection-level report.

        Args:
            collection: CASes, or raw items when ``prepare`` is given.
            prepare: Maps a raw item to a CAS (e.g. document parsing);
                runs inside the worker pool so parse *and* annotate fan
                out together.  ``None`` treats items as ready CASes.
            workers: Pool size for this run (defaults to the engine's
                configured ``workers``); 1 runs strictly serially.
        """
        count = self.workers if workers is None else workers
        if count < 1:
            raise ValueError(f"workers must be >= 1, got {count}")
        if count == 1:
            return self._run_serial(collection, prepare)
        return self._run_parallel(collection, prepare, count)

    # -- serial path --------------------------------------------------------

    def _run_serial(
        self,
        collection: Iterable[Any],
        prepare: Optional[Callable[[Any], Cas]],
    ) -> CpeReport:
        report = CpeReport()
        metrics = get_registry()
        with get_tracer().span("cpe.run"):
            for item in collection:
                cas = item if prepare is None else prepare(item)
                started = perf_counter()
                try:
                    self.engine.run(cas)
                except AnnotatorError as exc:
                    self._record_failure(report, cas, exc)
                    if not self.continue_on_error:
                        raise
                    continue
                self._record_success(
                    report, cas, perf_counter() - started
                )
            self._complete_consumers(report)
        return report

    # -- parallel path ------------------------------------------------------

    def _run_parallel(
        self,
        collection: Iterable[Any],
        prepare: Optional[Callable[[Any], Cas]],
        workers: int,
    ) -> CpeReport:
        report = CpeReport()
        with get_tracer().span("cpe.run", workers=workers):
            items = list(collection)
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="cpe"
            ) as pool:
                outcomes = list(
                    pool.map(
                        lambda item: self._analyze_one(item, prepare),
                        items,
                    )
                )
            # Merge per-worker streams in stable document order so the
            # consumers observe the exact serial sequence.
            for cas, exc, elapsed in outcomes:
                if exc is not None:
                    if not isinstance(exc, AnnotatorError):
                        raise exc  # prepare() errors propagate, as serial
                    self._record_failure(report, cas, exc)
                    if not self.continue_on_error:
                        raise exc
                    continue
                self._record_success(report, cas, elapsed)
            self._complete_consumers(report)
        return report

    def _analyze_one(
        self,
        item: Any,
        prepare: Optional[Callable[[Any], Cas]],
    ) -> Tuple[Optional[Cas], Optional[BaseException], float]:
        """Worker body: prepare + engine, never raising across the pool."""
        cas: Optional[Cas] = None
        try:
            cas = item if prepare is None else prepare(item)
            started = perf_counter()
            self.engine.run(cas)
            return cas, None, perf_counter() - started
        except BaseException as exc:  # re-raised or recorded by merge
            return cas, exc, 0.0

    # -- shared bookkeeping -------------------------------------------------

    def _record_success(
        self, report: CpeReport, cas: Cas, elapsed: float
    ) -> None:
        metrics = get_registry()
        report.documents_processed += 1
        metrics.inc("cpe.documents_processed")
        metrics.observe("cpe.document_seconds", elapsed)
        for consumer in self.consumers:
            consumer.process_cas(cas)

    def _record_failure(
        self, report: CpeReport, cas: Optional[Cas], exc: BaseException
    ) -> None:
        report.documents_failed += 1
        report.failures.append(_describe_failure(cas, exc))
        get_registry().inc("cpe.documents_failed")

    def _complete_consumers(self, report: CpeReport) -> None:
        with get_tracer().span("cpe.consumers_complete"):
            for consumer in self.consumers:
                report.consumer_results[consumer.name] = (
                    consumer.collection_process_complete()
                )
