"""Analysis engines: the units annotators are packaged as.

An :class:`AnalysisEngine` processes one CAS at a time.  An
:class:`AggregateAnalysisEngine` runs a fixed sequence of delegates —
the "composite annotator" row of the paper's Table 1 — optionally with
per-delegate flow control (skip predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import AnnotatorError
from repro.obs import get_registry
from repro.uima.cas import Cas
from repro.uima.typesystem import TypeSystem

__all__ = ["AnalysisEngine", "AggregateAnalysisEngine", "EngineResult"]


@dataclass
class EngineResult:
    """Per-engine outcome bookkeeping (used by CPE reports).

    Attributes:
        engine_name: The engine that ran.
        annotations_added: Count of annotations the engine created.
        skipped: True when flow control skipped the engine.
    """

    engine_name: str
    annotations_added: int = 0
    skipped: bool = False


class AnalysisEngine:
    """Base class for all annotators.

    Subclasses implement :meth:`process`; :meth:`initialize_types` is
    called once to declare output types in the shared type system
    (idempotent registration is the subclass's responsibility — use
    ``name in type_system`` guards).
    """

    name: str = "engine"

    def initialize_types(self, type_system: TypeSystem) -> None:
        """Declare output annotation types (default: none)."""

    def process(self, cas: Cas) -> None:
        """Analyze one CAS, adding annotations in place."""
        raise NotImplementedError

    def run(self, cas: Cas) -> EngineResult:
        """Process with bookkeeping; wraps errors with the engine name.

        Per-annotator wall time and annotation counts are recorded as
        ``annotator.<name>.seconds`` / ``.annotations`` — the Table 1
        cost breakdown the offline pipeline is steered by.
        """
        before = len(cas)
        started = perf_counter()
        try:
            self.process(cas)
        except AnnotatorError:
            get_registry().inc(f"annotator.{self.name}.failures")
            raise
        except Exception as exc:
            get_registry().inc(f"annotator.{self.name}.failures")
            raise AnnotatorError(
                f"engine {self.name!r} failed: {exc}"
            ) from exc
        added = len(cas) - before
        metrics = get_registry()
        metrics.observe(
            f"annotator.{self.name}.seconds", perf_counter() - started
        )
        metrics.inc(f"annotator.{self.name}.annotations", max(0, added))
        return EngineResult(self.name, annotations_added=added)


FlowPredicate = Callable[[Cas], bool]


class AggregateAnalysisEngine(AnalysisEngine):
    """Run a sequence of delegate engines against each CAS.

    Args:
        name: Aggregate's display name.
        delegates: Engines in execution order.  Each entry is either an
            engine or an ``(engine, predicate)`` pair — the predicate
            decides per-CAS whether the delegate runs, which is how EIL
            restricts expensive annotators to candidate documents
            (paper Fig. 3, steps 1-2).
    """

    def __init__(
        self,
        name: str,
        delegates: Sequence[object],
    ) -> None:
        self.name = name
        self._delegates: List[Tuple[AnalysisEngine, Optional[FlowPredicate]]] = []
        for delegate in delegates:
            if isinstance(delegate, AnalysisEngine):
                self._delegates.append((delegate, None))
            elif (
                isinstance(delegate, tuple)
                and len(delegate) == 2
                and isinstance(delegate[0], AnalysisEngine)
            ):
                self._delegates.append((delegate[0], delegate[1]))
            else:
                raise AnnotatorError(
                    f"invalid delegate {delegate!r} in aggregate {name!r}"
                )
        if not self._delegates:
            raise AnnotatorError(f"aggregate {name!r} has no delegates")

    @property
    def delegates(self) -> List[AnalysisEngine]:
        """The delegate engines, in order."""
        return [engine for engine, _ in self._delegates]

    def initialize_types(self, type_system: TypeSystem) -> None:
        for engine, _ in self._delegates:
            engine.initialize_types(type_system)

    def process(self, cas: Cas) -> None:
        for engine, predicate in self._delegates:
            if predicate is not None and not predicate(cas):
                continue
            engine.run(cas)

    def run_detailed(self, cas: Cas) -> List[EngineResult]:
        """Like :meth:`process` but reporting per-delegate results."""
        results = []
        for engine, predicate in self._delegates:
            if predicate is not None and not predicate(cas):
                results.append(EngineResult(engine.name, skipped=True))
                continue
            results.append(engine.run(cas))
        return results
