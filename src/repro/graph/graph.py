"""The EIL entity graph: materialization, queries, persistence.

:class:`EntityGraph` is the people-and-role search substrate the
ROADMAP calls for: the Social Networking Annotator's rolled-up contact
lists, the scope CPE's tower rankings and the synopsis technology rows,
materialized as one typed graph (person—deal—tower—technology) that
answers the meta-query classes flat per-deal lists cannot:

* :meth:`worked_with` — "who has worked with X across deals"
  (meta-query 2, Figure 7's three-step keyword episode in one hop);
* :meth:`role_capacity` — "who has worked in the capacity of R"
  (meta-query 3) with the deals as evidence;
* :meth:`expertise` — "who knows technology/service T", a traversal
  from technology and tower nodes through deals to people;
* :meth:`team_overlap` — colleagues of X ranked by how much of their
  deal history is shared (Jaccard overlap).

Consistency contract (the same one the search engine keeps):

* every mutation (:meth:`index_deal`, :meth:`remove_deal`) runs under
  the write side of a :class:`~repro.concurrency.ReadWriteLock` and
  bumps :attr:`epoch`; every query runs under the read side, so a
  query's view of (epoch, graph state) is a consistent snapshot while
  ``EILSystem.add_workbook`` / ``remove_deal`` mutate concurrently;
* every edge cites the organized-information row it came from, so
  graph answers are provably consistent with the per-deal contact
  lists — the equivalence suite asserts it row by row;
* serialization is canonical (sorted nodes, edges and keys), so
  ``save`` → ``load`` → ``save`` is bit-identical and cold starts
  reload the exact graph that was persisted.

Metrics (``repro stats`` vocabulary): ``graph.nodes`` /
``graph.edges`` / ``graph.deals`` gauges after every mutation,
``graph.queries`` + ``graph.queries.<class>`` counters and the
``graph.query_seconds`` histogram around every query.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.concurrency import AtomicCounter, ReadWriteLock
from repro.errors import StorageError
from repro.graph.model import (
    DEAL,
    IN_SCOPE,
    MEMBER_OF,
    PERSON,
    TECHNOLOGY,
    TOWER,
    USES,
    Edge,
    NodeRef,
    Provenance,
    person_key,
)
from repro.obs import get_registry
from repro.storage.atomic import atomic_write_text
from repro.text.normalize import name_key, normalize_email, normalize_role

__all__ = [
    "Colleague",
    "PersonEvidence",
    "WorkedWithAnswer",
    "RoleCapacityAnswer",
    "ExpertiseAnswer",
    "TeamOverlapAnswer",
    "EntityGraph",
]

_GRAPH_FORMAT = "repro-entity-graph"
_GRAPH_VERSION = 1


@dataclass
class Colleague:
    """One co-worker of the queried person.

    Attributes:
        key: The colleague's person-node key.
        name: Display name (most-mentioned, ties broken
            lexicographically).
        shared_deals: Deals both people worked on, sorted.
        roles: Distinct roles the colleague held on those deals.
        provenance: Citations of the contact rows backing the shared
            memberships (``contacts:<id>``).
        overlap: Jaccard overlap of deal histories; 0.0 unless ranked
            by :meth:`EntityGraph.team_overlap`.
    """

    key: str
    name: str
    shared_deals: List[str]
    roles: List[str]
    provenance: List[str]
    overlap: float = 0.0


@dataclass
class PersonEvidence:
    """One person plus the deals/rows that justify the answer.

    Attributes:
        key: Person-node key.
        name: Display name.
        deals: Supporting deal ids, sorted.
        roles: Distinct roles held on those deals.
        provenance: Contact-row citations for the memberships.
        evidence: For expertise answers: the matched technology/tower
            node keys reached through each deal.
    """

    key: str
    name: str
    deals: List[str]
    roles: List[str]
    provenance: List[str]
    evidence: List[str] = field(default_factory=list)


@dataclass
class WorkedWithAnswer:
    """Meta-query 2 over the graph: X's deals and colleagues."""

    query: str
    persons: List[str]
    deals: List[str]
    colleagues: List[Colleague]


@dataclass
class RoleCapacityAnswer:
    """Meta-query 3 over the graph: who held a role, with evidence."""

    query: str
    role: str
    people: List[PersonEvidence]


@dataclass
class ExpertiseAnswer:
    """Expertise lookup: people reached through matching tech/towers."""

    query: str
    matched: List[str]
    people: List[PersonEvidence]


@dataclass
class TeamOverlapAnswer:
    """Colleagues of X ranked by Jaccard overlap of deal histories."""

    query: str
    persons: List[str]
    colleagues: List[Colleague]


class EntityGraph:
    """The typed entity graph (see the module docstring)."""

    def __init__(self) -> None:
        self._lock = ReadWriteLock()
        self._epoch = AtomicCounter()
        # Every edge is owned by exactly one deal; the incident maps
        # are keyed by id(edge) so removal is O(edges of the deal)
        # rather than O(degree) list scans on popular tower nodes.
        self._deal_edges: Dict[str, List[Edge]] = {}
        self._deal_attrs: Dict[str, Dict[str, object]] = {}
        self._incident: Dict[NodeRef, Dict[int, Edge]] = {}
        # Secondary index: name_key -> person nodes whose membership
        # edges carry that display name (resolves "Sam White" to an
        # email-keyed node).  Values are reference counts for removal.
        self._name_index: Dict[str, Dict[NodeRef, int]] = {}

    # -- epoch / introspection ----------------------------------------------

    @property
    def epoch(self) -> int:
        """Mutation epoch; bumped by every index/remove."""
        return self._epoch.value

    def deal_ids(self) -> List[str]:
        """Indexed deals, sorted."""
        with self._lock.read():
            return sorted(self._deal_attrs)

    def stats(self) -> Dict[str, object]:
        """Node/edge counts by kind (one consistent snapshot)."""
        with self._lock.read():
            nodes: Dict[str, int] = {}
            for ref in self._node_refs():
                nodes[ref.kind] = nodes.get(ref.kind, 0) + 1
            edges: Dict[str, int] = {}
            for deal_edges in self._deal_edges.values():
                for edge in deal_edges:
                    edges[edge.kind] = edges.get(edge.kind, 0) + 1
            return {
                "deals": len(self._deal_attrs),
                "nodes": sum(nodes.values()),
                "edges": sum(edges.values()),
                "nodes_by_kind": {k: nodes[k] for k in sorted(nodes)},
                "edges_by_kind": {k: edges[k] for k in sorted(edges)},
                "epoch": self.epoch,
            }

    def _node_refs(self) -> Set[NodeRef]:
        refs = {NodeRef(DEAL, deal_id) for deal_id in self._deal_attrs}
        refs.update(self._incident)
        return refs

    # -- materialization ----------------------------------------------------

    def index_deal(
        self,
        deal_id: str,
        deal_row: Optional[Mapping[str, object]],
        contact_rows: Iterable[Mapping[str, object]],
        scope_rows: Iterable[Mapping[str, object]] = (),
        technology_rows: Iterable[Mapping[str, object]] = (),
    ) -> int:
        """(Re)index one deal's subgraph from organized-information rows.

        Idempotent: any existing subgraph for ``deal_id`` is dropped
        first, so re-running after ``add_workbook`` upserts never
        duplicates edges.  Returns the number of edges indexed.
        """
        edges: List[Edge] = []
        deal_node = NodeRef(DEAL, deal_id)
        for row in contact_rows:
            name = str(row.get("name") or "")
            email = normalize_email(str(row.get("email") or ""))
            key = person_key(name, email)
            if key is None:
                continue
            edges.append(Edge(
                kind=MEMBER_OF,
                source=NodeRef(PERSON, key),
                target=deal_node,
                deal_id=deal_id,
                provenance=Provenance(
                    "contacts", str(row.get("contact_id"))
                ),
                attrs={
                    "name": name or email,
                    "email": email,
                    "role": str(row.get("role") or ""),
                    "category": str(row.get("category") or ""),
                    "validated": bool(row.get("validated")),
                },
            ))
        for row in scope_rows:
            tower = str(row.get("tower") or row.get("canonical") or "")
            if not tower:
                continue
            rank = row.get("rank")
            edges.append(Edge(
                kind=IN_SCOPE,
                source=deal_node,
                target=NodeRef(TOWER, tower.lower()),
                deal_id=deal_id,
                provenance=Provenance(
                    "deal_scopes", f"{deal_id}#{rank}"
                ),
                attrs={
                    "tower": tower,
                    "canonical": str(row.get("canonical") or ""),
                    "weight": float(row.get("weight") or 0.0),
                    "rank": int(rank or 0),
                },
            ))
        for row in technology_rows:
            term = str(row.get("term") or "")
            if not term:
                continue
            edges.append(Edge(
                kind=USES,
                source=deal_node,
                target=NodeRef(TECHNOLOGY, term.lower()),
                deal_id=deal_id,
                provenance=Provenance(
                    "technologies", str(row.get("technology_id"))
                ),
                attrs={
                    "term": term,
                    "tower": str(row.get("tower") or ""),
                },
            ))
        attrs = {
            "name": str((deal_row or {}).get("name") or deal_id),
            "customer": (deal_row or {}).get("customer"),
            "industry": (deal_row or {}).get("industry"),
        }
        with self._lock.write():
            self._remove_deal_locked(deal_id)
            self._deal_attrs[deal_id] = attrs
            self._deal_edges[deal_id] = edges
            for edge in edges:
                self._incident.setdefault(edge.source, {})[id(edge)] = edge
                self._incident.setdefault(edge.target, {})[id(edge)] = edge
                if edge.kind == MEMBER_OF:
                    self._index_name(edge)
            self._epoch.increment()
            self._set_gauges_locked()
        get_registry().inc("graph.deals_indexed")
        return len(edges)

    def remove_deal(self, deal_id: str) -> int:
        """Drop one deal's subgraph; orphaned nodes disappear with it.

        Returns the number of edges removed.
        """
        with self._lock.write():
            removed = self._remove_deal_locked(deal_id)
            if removed:
                self._epoch.increment()
                self._set_gauges_locked()
        if removed:
            get_registry().inc("graph.deals_removed")
        return removed

    def _remove_deal_locked(self, deal_id: str) -> int:
        edges = self._deal_edges.pop(deal_id, [])
        self._deal_attrs.pop(deal_id, None)
        for edge in edges:
            for endpoint in (edge.source, edge.target):
                incident = self._incident.get(endpoint)
                if incident is not None:
                    incident.pop(id(edge), None)
                    if not incident:
                        del self._incident[endpoint]
            if edge.kind == MEMBER_OF:
                self._unindex_name(edge)
        return len(edges)

    def _index_name(self, edge: Edge) -> None:
        key = name_key(str(edge.attrs.get("name") or ""))
        if not key:
            return
        holders = self._name_index.setdefault(key, {})
        holders[edge.source] = holders.get(edge.source, 0) + 1

    def _unindex_name(self, edge: Edge) -> None:
        key = name_key(str(edge.attrs.get("name") or ""))
        holders = self._name_index.get(key)
        if not holders:
            return
        count = holders.get(edge.source, 0) - 1
        if count > 0:
            holders[edge.source] = count
        else:
            holders.pop(edge.source, None)
            if not holders:
                del self._name_index[key]

    def _set_gauges_locked(self) -> None:
        registry = get_registry()
        registry.set_gauge("graph.deals", len(self._deal_attrs))
        registry.set_gauge("graph.nodes", len(self._node_refs()))
        registry.set_gauge(
            "graph.edges",
            sum(len(edges) for edges in self._deal_edges.values()),
        )

    # -- shared traversal helpers (caller holds the read lock) --------------

    def _resolve_persons_locked(self, text: str) -> List[NodeRef]:
        """Person nodes matching ``text`` (email, key, or display name)."""
        text = (text or "").strip()
        if not text:
            return []
        matches: Set[NodeRef] = set()
        if "@" in text:
            ref = NodeRef(PERSON, f"email:{normalize_email(text)}")
            if ref in self._incident:
                matches.add(ref)
        else:
            key = name_key(text)
            ref = NodeRef(PERSON, f"name:{key}")
            if ref in self._incident:
                matches.add(ref)
            matches.update(self._name_index.get(key, ()))
        return sorted(matches)

    def _memberships_locked(self, ref: NodeRef) -> List[Edge]:
        return [
            edge for edge in self._incident.get(ref, {}).values()
            if edge.kind == MEMBER_OF and edge.source == ref
        ]

    def _deal_members_locked(self, deal_id: str) -> List[Edge]:
        return [
            edge for edge in self._deal_edges.get(deal_id, [])
            if edge.kind == MEMBER_OF
        ]

    def _person_name_locked(self, ref: NodeRef) -> str:
        """Display name: most mentions, ties lexicographically smallest.

        Derived from the membership edges rather than stored, so the
        result is independent of indexing order (incremental
        ``add_workbook`` and a full rebuild agree).
        """
        counts: Dict[str, int] = {}
        for edge in self._memberships_locked(ref):
            name = str(edge.attrs.get("name") or "")
            if name:
                counts[name] = counts.get(name, 0) + 1
        if not counts:
            return ref.key.partition(":")[2]
        return min(counts, key=lambda name: (-counts[name], name))

    @staticmethod
    def _collect(
        per_person: Dict[NodeRef, Dict[str, set]],
        edge: Edge,
        extra: Optional[str] = None,
    ) -> None:
        slot = per_person.setdefault(
            edge.source,
            {"deals": set(), "roles": set(), "provenance": set(),
             "evidence": set()},
        )
        slot["deals"].add(edge.deal_id)
        role = str(edge.attrs.get("role") or "")
        if role:
            slot["roles"].add(role)
        slot["provenance"].add(edge.provenance.cite())
        if extra:
            slot["evidence"].add(extra)

    # -- queries -------------------------------------------------------------

    def worked_with(
        self, person: str, limit: Optional[int] = None
    ) -> WorkedWithAnswer:
        """Meta-query 2: everyone who shared a deal with ``person``.

        One traversal replaces Figure 7's three-step keyword episode:
        person → deals → co-members, each colleague carrying the roles
        they held and the contact rows that prove the membership.
        """
        with self._query("worked_with"), self._lock.read():
            refs = self._resolve_persons_locked(person)
            deals: Set[str] = set()
            for ref in refs:
                deals.update(
                    edge.deal_id for edge in self._memberships_locked(ref)
                )
            per_person: Dict[NodeRef, Dict[str, set]] = {}
            for deal_id in deals:
                for edge in self._deal_members_locked(deal_id):
                    if edge.source in refs:
                        continue
                    self._collect(per_person, edge)
            colleagues = [
                Colleague(
                    key=ref.key,
                    name=self._person_name_locked(ref),
                    shared_deals=sorted(slot["deals"]),
                    roles=sorted(slot["roles"]),
                    provenance=sorted(slot["provenance"]),
                )
                for ref, slot in per_person.items()
            ]
            colleagues.sort(
                key=lambda c: (-len(c.shared_deals), c.name, c.key)
            )
            return WorkedWithAnswer(
                query=person,
                persons=[ref.key for ref in refs],
                deals=sorted(deals),
                colleagues=colleagues[:limit],
            )

    def role_capacity(
        self, role: str, limit: Optional[int] = None
    ) -> RoleCapacityAnswer:
        """Meta-query 3: who has worked in the capacity of ``role``.

        The role is canonicalized the same way the rollup canonicalized
        it at extraction time (``normalize_role``), so "cross tower
        TSA" and "Cross Tower Technical Solution Architect" answer
        identically — and, unlike the paper's keyword baseline, only
        *filled* roles match (no 149-empty-form-field trap).
        """
        canonical = normalize_role(role or "")
        wanted = canonical.lower()
        with self._query("role_capacity"), self._lock.read():
            per_person: Dict[NodeRef, Dict[str, set]] = {}
            for edges in self._deal_edges.values():
                for edge in edges:
                    if edge.kind != MEMBER_OF:
                        continue
                    held = str(edge.attrs.get("role") or "").lower()
                    if held == wanted and wanted:
                        self._collect(per_person, edge)
            people = self._evidence_list(per_person)
            return RoleCapacityAnswer(
                query=role, role=canonical, people=people[:limit]
            )

    def expertise(
        self, topic: str, limit: Optional[int] = None
    ) -> ExpertiseAnswer:
        """Expertise lookup: people on deals that used ``topic``.

        ``topic`` matches technology terms and tower names
        (case-insensitive substring), then the traversal walks
        technology/tower → deals → people; each person's evidence
        names the matched nodes their deals reached.
        """
        needle = (topic or "").strip().lower()
        with self._query("expertise"), self._lock.read():
            matched = sorted(
                ref for ref in self._incident
                if ref.kind in (TECHNOLOGY, TOWER)
                and needle and needle in ref.key
            )
            deal_evidence: Dict[str, Set[str]] = {}
            for ref in matched:
                for edge in self._incident.get(ref, {}).values():
                    if edge.kind in (USES, IN_SCOPE):
                        deal_evidence.setdefault(
                            edge.deal_id, set()
                        ).add(f"{ref.kind}:{ref.key}")
            per_person: Dict[NodeRef, Dict[str, set]] = {}
            for deal_id, evidence in deal_evidence.items():
                for edge in self._deal_members_locked(deal_id):
                    for item in evidence:
                        self._collect(per_person, edge, extra=item)
            people = self._evidence_list(per_person)
            return ExpertiseAnswer(
                query=topic,
                matched=[f"{ref.kind}:{ref.key}" for ref in matched],
                people=people[:limit],
            )

    def team_overlap(
        self, person: str, limit: Optional[int] = None
    ) -> TeamOverlapAnswer:
        """Colleagues of ``person`` ranked by Jaccard deal overlap.

        Distinguishes "worked every deal together" from "crossed paths
        once" — the ranking the flat contact lists cannot express.
        """
        with self._query("team_overlap"), self._lock.read():
            refs = self._resolve_persons_locked(person)
            my_deals: Set[str] = set()
            for ref in refs:
                my_deals.update(
                    edge.deal_id for edge in self._memberships_locked(ref)
                )
            per_person: Dict[NodeRef, Dict[str, set]] = {}
            for deal_id in my_deals:
                for edge in self._deal_members_locked(deal_id):
                    if edge.source in refs:
                        continue
                    self._collect(per_person, edge)
            colleagues = []
            for ref, slot in per_person.items():
                their_deals = {
                    edge.deal_id
                    for edge in self._memberships_locked(ref)
                }
                union = my_deals | their_deals
                shared = slot["deals"]
                colleagues.append(Colleague(
                    key=ref.key,
                    name=self._person_name_locked(ref),
                    shared_deals=sorted(shared),
                    roles=sorted(slot["roles"]),
                    provenance=sorted(slot["provenance"]),
                    overlap=len(shared) / len(union) if union else 0.0,
                ))
            colleagues.sort(
                key=lambda c: (
                    -c.overlap, -len(c.shared_deals), c.name, c.key
                )
            )
            return TeamOverlapAnswer(
                query=person,
                persons=[ref.key for ref in refs],
                colleagues=colleagues[:limit],
            )

    def _evidence_list(
        self, per_person: Dict[NodeRef, Dict[str, set]]
    ) -> List[PersonEvidence]:
        people = [
            PersonEvidence(
                key=ref.key,
                name=self._person_name_locked(ref),
                deals=sorted(slot["deals"]),
                roles=sorted(slot["roles"]),
                provenance=sorted(slot["provenance"]),
                evidence=sorted(slot["evidence"]),
            )
            for ref, slot in per_person.items()
        ]
        people.sort(key=lambda p: (-len(p.deals), p.name, p.key))
        return people

    def _query(self, kind: str):
        registry = get_registry()
        registry.inc("graph.queries")
        registry.inc(f"graph.queries.{kind}")
        return registry.timer("graph.query_seconds")

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-serializable snapshot (sorted deals/edges)."""
        with self._lock.read():
            edges: List[Edge] = []
            for deal_edges in self._deal_edges.values():
                edges.extend(deal_edges)
            edges.sort(key=Edge.sort_key)
            return {
                "deals": {
                    deal_id: {
                        k: self._deal_attrs[deal_id][k]
                        for k in sorted(self._deal_attrs[deal_id])
                    }
                    for deal_id in sorted(self._deal_attrs)
                },
                "edges": [edge.to_dict() for edge in edges],
            }

    def dumps(self) -> str:
        """The canonical on-disk document (checksum + payload)."""
        payload = self.to_payload()
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        checksum = hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()
        document = {
            "format": _GRAPH_FORMAT,
            "version": _GRAPH_VERSION,
            "checksum": checksum,
            "graph": payload,
        }
        return json.dumps(document, sort_keys=True, indent=2) + "\n"

    def save(self, path: str) -> None:
        """Atomically persist the graph (temp + fsync + rename)."""
        atomic_write_text(path, self.dumps())

    @classmethod
    def load(cls, path: str, verify: bool = True) -> "EntityGraph":
        """Read a :meth:`save` file back; raises StorageError on damage."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            raise StorageError(
                f"cannot read entity graph {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"invalid entity graph {path}: {exc}"
            ) from exc
        if (
            not isinstance(document, dict)
            or document.get("format") != _GRAPH_FORMAT
        ):
            raise StorageError(f"{path} is not an entity-graph file")
        if document.get("version") != _GRAPH_VERSION:
            raise StorageError(
                f"unsupported entity-graph version "
                f"{document.get('version')!r} in {path}"
            )
        payload = document.get("graph")
        if not isinstance(payload, dict):
            raise StorageError(f"{path} has no graph payload")
        if verify:
            canonical = json.dumps(payload, sort_keys=True,
                                   separators=(",", ":"))
            checksum = hashlib.blake2b(
                canonical.encode("utf-8"), digest_size=16
            ).hexdigest()
            if checksum != document.get("checksum"):
                raise StorageError(
                    f"entity graph {path} failed checksum verification"
                )
        graph = cls()
        deals = payload.get("deals") or {}
        by_deal: Dict[str, List[Edge]] = {
            deal_id: [] for deal_id in deals
        }
        for raw in payload.get("edges") or []:
            edge = Edge.from_dict(raw)
            by_deal.setdefault(edge.deal_id, []).append(edge)
        with graph._lock.write():
            for deal_id in sorted(by_deal):
                attrs = deals.get(deal_id) or {"name": deal_id}
                graph._deal_attrs[deal_id] = dict(attrs)
                edges = by_deal[deal_id]
                graph._deal_edges[deal_id] = edges
                for edge in edges:
                    graph._incident.setdefault(
                        edge.source, {}
                    )[id(edge)] = edge
                    graph._incident.setdefault(
                        edge.target, {}
                    )[id(edge)] = edge
                    if edge.kind == MEMBER_OF:
                        graph._index_name(edge)
            graph._epoch.increment()
            graph._set_gauges_locked()
        return graph
