"""Typed nodes, edges and provenance for the EIL entity graph.

The graph's vocabulary is deliberately small — it mirrors what the
offline pipeline actually extracts (paper Figures 3 and 6):

* **person** nodes, identified by the same key the contact rollup
  de-duplicates on (email when known, order-insensitive name key
  otherwise), so one person seen across many deals collapses to one
  node exactly when the per-deal contact lists would have merged the
  mentions;
* **deal** nodes (business activities);
* **tower** nodes (service-scope concepts from the taxonomy);
* **technology** nodes (technology-solution terms from the synopsis).

Edges are directed, typed, and *provenance-carrying*: every edge cites
the organized-information row it was materialized from (a ``contacts``
row, a ``deal_scopes`` row, a ``technologies`` row), so a graph answer
can always be traced back to the contact record or synopsis row that
justifies it — the graph never asserts anything the relational store
does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.text.normalize import name_key, normalize_email

__all__ = [
    "PERSON",
    "DEAL",
    "TOWER",
    "TECHNOLOGY",
    "MEMBER_OF",
    "IN_SCOPE",
    "USES",
    "NodeRef",
    "Provenance",
    "Edge",
    "person_key",
]

#: Node kinds.
PERSON = "person"
DEAL = "deal"
TOWER = "tower"
TECHNOLOGY = "technology"

#: Edge kinds: person -> deal, deal -> tower, deal -> technology.
MEMBER_OF = "member_of"
IN_SCOPE = "in_scope"
USES = "uses"


@dataclass(frozen=True, order=True)
class NodeRef:
    """A typed node identity: ``(kind, key)``.

    Attributes:
        kind: One of :data:`PERSON`, :data:`DEAL`, :data:`TOWER`,
            :data:`TECHNOLOGY`.
        key: The canonical identity within the kind — deal id, lowered
            tower name, lowered technology term, or the contact
            de-duplication key for people (see :func:`person_key`).
    """

    kind: str
    key: str


@dataclass(frozen=True, order=True)
class Provenance:
    """Where an edge came from: one organized-information row.

    Attributes:
        table: The source table (``contacts``, ``deal_scopes``,
            ``technologies``).
        row_id: The row identity within the table — the primary key
            when the table has one, else ``"<deal_id>#<rank>"`` for the
            rank-keyed scope rows.
    """

    table: str
    row_id: str

    def cite(self) -> str:
        """Human-readable citation, e.g. ``contacts:17``."""
        return f"{self.table}:{self.row_id}"


@dataclass
class Edge:
    """One directed, typed, provenance-carrying edge.

    Attributes:
        kind: :data:`MEMBER_OF`, :data:`IN_SCOPE` or :data:`USES`.
        source: Tail node.
        target: Head node.
        deal_id: The business activity this edge belongs to; every edge
            is owned by exactly one deal (its provenance row is
            deal-scoped), which is what makes ``remove_deal`` O(deal).
        provenance: The organized-information row the edge cites.
        attrs: Edge payload — ``member_of`` carries the contact row's
            display name, role, category and validation flag;
            ``in_scope`` carries weight and rank; ``uses`` carries the
            technology's tower.
    """

    kind: str
    source: NodeRef
    target: NodeRef
    deal_id: str
    provenance: Provenance
    attrs: Dict[str, object] = field(default_factory=dict)

    def sort_key(self) -> tuple:
        """Canonical ordering, used by serialization for bit-identity."""
        return (
            self.deal_id,
            self.kind,
            self.source,
            self.target,
            self.provenance,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (attrs keys sorted)."""
        return {
            "kind": self.kind,
            "source": [self.source.kind, self.source.key],
            "target": [self.target.kind, self.target.key],
            "deal_id": self.deal_id,
            "provenance": [self.provenance.table, self.provenance.row_id],
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Edge":
        """Inverse of :meth:`to_dict`."""
        source = payload["source"]
        target = payload["target"]
        provenance = payload["provenance"]
        return cls(
            kind=str(payload["kind"]),
            source=NodeRef(str(source[0]), str(source[1])),
            target=NodeRef(str(target[0]), str(target[1])),
            deal_id=str(payload["deal_id"]),
            provenance=Provenance(str(provenance[0]), str(provenance[1])),
            attrs=dict(payload.get("attrs") or {}),
        )


def person_key(name: str, email: str = "") -> Optional[str]:
    """The person-node key for a (name, email) pair.

    Mirrors ``ContactRollup._dedup_key`` exactly: email is the
    strongest identity, the order-insensitive name key is the fallback.
    Keeping the two keyings identical is what makes the graph's person
    nodes provably consistent with the per-deal contact lists — a
    person merges across deals in the graph exactly when the rollup
    would have merged the mentions within a deal.  Returns None when
    neither field identifies anyone.
    """
    email = normalize_email(email or "")
    if email:
        return f"email:{email}"
    key = name_key(name or "")
    if key:
        return f"name:{key}"
    return None
