"""repro.graph — the typed entity graph for people & role search.

Materializes the Social Networking Annotator's rolled-up output (plus
scope and technology rows) into a provenance-carrying
person—deal—tower—technology graph and answers the meta-query classes
the flat per-deal contact lists cannot: "who has worked with X across
deals", role-capacity search with evidence, expertise lookup by
technology, and team-overlap ranking.  See
:mod:`repro.graph.graph` for the consistency contract and
:mod:`repro.graph.materialize` for how the graph is derived from the
organized information.
"""

from repro.graph.graph import (
    Colleague,
    EntityGraph,
    ExpertiseAnswer,
    PersonEvidence,
    RoleCapacityAnswer,
    TeamOverlapAnswer,
    WorkedWithAnswer,
)
from repro.graph.materialize import build_graph, index_deal_from_organized
from repro.graph.model import Edge, NodeRef, Provenance, person_key

__all__ = [
    "EntityGraph",
    "Edge",
    "NodeRef",
    "Provenance",
    "person_key",
    "Colleague",
    "PersonEvidence",
    "WorkedWithAnswer",
    "RoleCapacityAnswer",
    "ExpertiseAnswer",
    "TeamOverlapAnswer",
    "build_graph",
    "index_deal_from_organized",
]
