"""Materializing the entity graph from the organized information.

The graph is a *consumer* of the collection-processing outputs, sitting
next to :class:`~repro.annotators.social.ContactRollup` in the offline
flow (paper Figure 2): the rollup writes the de-duplicated contact
lists, scope rankings and technology rows into the relational store,
and these helpers lift exactly those rows — primary keys and all —
into :class:`~repro.graph.graph.EntityGraph` edges.  Deriving the
graph from the stored rows (rather than re-extracting from the CAS) is
what makes the equivalence guarantee checkable: every edge cites a row
that still exists, and a per-deal subgraph can always be rebuilt and
compared against the tables it came from.

Used in three places:

* ``EILSystem.run_offline_pipeline`` — full materialization after the
  populate step;
* ``EILSystem.add_workbook`` / ``remove_deal`` — incremental
  re-materialization of the touched deal only;
* ``EILSystem.load`` — fallback rebuild when a persisted index
  pre-dates the graph file (older ``save_index`` layouts stay
  loadable).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.organized import OrganizedInformation
from repro.graph.graph import EntityGraph
from repro.obs import get_tracer

__all__ = ["index_deal_from_organized", "build_graph"]


def index_deal_from_organized(
    graph: EntityGraph, organized: OrganizedInformation, deal_id: str
) -> int:
    """(Re)materialize one deal's subgraph from its stored rows.

    Returns the number of edges indexed.  Row order does not matter —
    the graph's serialization and query rankings are canonical — but
    the rows themselves are authoritative: whatever the rollup stored
    is exactly what the graph will answer with.
    """
    return graph.index_deal(
        deal_id,
        organized.deal_row(deal_id),
        organized.contacts_of(deal_id),
        organized.scopes_of(deal_id),
        organized.technologies_of(deal_id),
    )


def build_graph(
    organized: OrganizedInformation,
    deal_ids: Optional[Iterable[str]] = None,
) -> EntityGraph:
    """Materialize a fresh graph over ``deal_ids`` (default: all deals)."""
    graph = EntityGraph()
    ids = sorted(deal_ids) if deal_ids is not None else (
        organized.deal_ids()
    )
    with get_tracer().span("offline.graph", deals=len(ids)):
        for deal_id in ids:
            index_deal_from_organized(graph, organized, deal_id)
    return graph
