"""String-similarity measures for annotation de-duplication.

Paper Fig. 3 step 10 de-duplicates social-networking annotations across a
business activity; the corpus contains the same person with typos and
order variants, so exact matching is not enough.  We provide the two
classic edit-based measures (Levenshtein and Jaro-Winkler) plus a
token-set ratio that is robust to word order (``White, Sam`` vs
``Sam White``).
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "levenshtein",
    "levenshtein_ratio",
    "jaro",
    "jaro_winkler",
    "token_set_ratio",
]


def levenshtein(a: str, b: str) -> int:
    """Edit distance between ``a`` and ``b`` (insert/delete/substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for O(min(m,n)) memory.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_ratio(a: str, b: str) -> float:
    """Normalized similarity in [0, 1]: 1.0 means identical strings."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    window = max(window, 0)
    a_matched = [False] * la
    b_matched = [False] * lb
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ch:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(la):
        if a_matched[i]:
            while not b_matched[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / la + matches / lb + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted for shared prefixes.

    ``prefix_scale`` must be in [0, 0.25] to keep the result in [0, 1].
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must be in [0, 0.25]")
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def token_set_ratio(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard similarity of two token sequences, order-insensitive."""
    sa = {t.lower() for t in a}
    sb = {t.lower() for t in b}
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)
