"""Porter stemming algorithm, implemented from the 1980 paper.

The search engine (the OmniFind substitute) stems indexed terms and query
terms with the same stemmer so that "services", "service" and "servicing"
collide in the index, mirroring the recall-oriented behaviour of the
keyword baseline in the paper.

Reference: M.F. Porter, "An algorithm for suffix stripping",
Program 14(3):130-137, 1980.  Step numbering below follows the paper.
"""

from __future__ import annotations

__all__ = ["PorterStemmer", "stem"]

_VOWELS = "aeiou"


class PorterStemmer:
    """Stateless Porter stemmer.

    Usage::

        >>> PorterStemmer().stem("relational")
        'relat'
    """

    # ------------------------------------------------------------------
    # Measure and condition helpers.  A word is decomposed as
    # [C](VC){m}[V]; m is the "measure" used by the removal conditions.
    # ------------------------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """Return m, the number of VC sequences in ``stem``."""
        m = 0
        i = 0
        n = len(stem)
        # Skip initial consonant run.
        while i < n and cls._is_consonant(stem, i):
            i += 1
        while i < n:
            # Vowel run.
            while i < n and not cls._is_consonant(stem, i):
                i += 1
            if i >= n:
                break
            m += 1
            # Consonant run.
            while i < n and cls._is_consonant(stem, i):
                i += 1
        return m

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """True for consonant-vowel-consonant endings where the final
        consonant is not w, x or y (the *o condition in the paper)."""
        if len(word) < 3:
            return False
        return (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            if self._measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive",
        "ize",
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if suffix == "ion" and (not stem or stem[-1] not in "st"):
                    continue
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            word.endswith("l")
            and self._ends_double_consonant(word)
            and self._measure(word) > 1
        ):
            return word[:-1]
        return word

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (expects lower case)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word


_STEMMER = PorterStemmer()


def stem(word: str) -> str:
    """Stem ``word`` (case-folded) with a module-level shared stemmer."""
    return _STEMMER.stem(word.lower())
