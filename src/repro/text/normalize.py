"""Field normalization used by annotators and collection processing.

The paper's Fig. 3 (step 12) calls for "normalizing the fields to remove
semantic ambiguity": the same person appears as ``Sam White``,
``White, Sam`` and ``sam.white@abc.com``; the same role appears as
``CSE``, ``Client Solution Exec.`` and ``client solution executive``;
phone numbers arrive in a half dozen layouts.  These helpers produce
canonical forms so that de-duplication and the structured synopsis
queries work on stable keys.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

__all__ = [
    "normalize_whitespace",
    "normalize_person_name",
    "name_key",
    "normalize_phone",
    "normalize_email",
    "normalize_role",
    "person_from_email",
    "ROLE_SYNONYMS",
]

_WS_RE = re.compile(r"\s+")


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip ends."""
    return _WS_RE.sub(" ", text).strip()


def normalize_person_name(name: str) -> str:
    """Canonicalize a person name to ``First Last`` title case.

    Handles ``Last, First`` order, stray honorifics, and inconsistent
    casing.  Middle names/initials are preserved in order.
    """
    name = normalize_whitespace(name)
    if "," in name:
        last, _, first = name.partition(",")
        name = f"{first.strip()} {last.strip()}"
    words = [w for w in name.split() if w]
    honorifics = {"mr", "mr.", "mrs", "mrs.", "ms", "ms.", "dr", "dr."}
    words = [w for w in words if w.lower() not in honorifics]
    return " ".join(_title_word(w) for w in words)


def _title_word(word: str) -> str:
    # Preserve initials like "J." and hyphenated surnames.
    if "-" in word:
        return "-".join(_title_word(part) for part in word.split("-"))
    if not word:
        return word
    return word[0].upper() + word[1:].lower()


def name_key(name: str) -> str:
    """Return a case/order-insensitive de-duplication key for a name.

    ``White, Sam`` and ``sam white`` share the key ``sam white``.
    """
    canonical = normalize_person_name(name)
    return " ".join(sorted(w.lower().rstrip(".") for w in canonical.split()))


_PHONE_DIGITS_RE = re.compile(r"\d")


def normalize_phone(phone: str) -> Optional[str]:
    """Normalize a phone number to ``+1-AAA-EEE-NNNN`` when possible.

    Returns None if the string does not contain a plausible number of
    digits (7-15 after stripping formatting), which lets callers reject
    noise matched by over-eager patterns.
    """
    digits = "".join(_PHONE_DIGITS_RE.findall(phone))
    if not 7 <= len(digits) <= 15:
        return None
    if len(digits) == 10:
        digits = "1" + digits
    if len(digits) == 11 and digits.startswith("1"):
        return f"+1-{digits[1:4]}-{digits[4:7]}-{digits[7:]}"
    return "+" + digits


def normalize_email(email: str) -> str:
    """Lower-case an email address and strip surrounding punctuation."""
    return email.strip().strip("<>().,;:").lower()


# Canonical role names keyed by the variants observed in business
# documents.  The canonical names double as the People-tab categories in
# the synopsis (core deal team, technical support, delivery, client, ...).
ROLE_SYNONYMS: Dict[str, str] = {
    "cse": "Client Solution Executive",
    "client solution exec": "Client Solution Executive",
    "client solution exec.": "Client Solution Executive",
    "client solution executive": "Client Solution Executive",
    "tsa": "Technical Solution Architect",
    "tech solution architect": "Technical Solution Architect",
    "technical solution architect": "Technical Solution Architect",
    "cross tower tsa": "Cross Tower Technical Solution Architect",
    "cross-tower tsa": "Cross Tower Technical Solution Architect",
    "cross tower technical solution architect":
        "Cross Tower Technical Solution Architect",
    "lead tsa": "Technical Solution Architect",
    "mainframe tsa": "Technical Solution Architect",
    "dpe": "Delivery Project Executive",
    "delivery project exec": "Delivery Project Executive",
    "delivery project executive": "Delivery Project Executive",
    "pe": "Project Executive",
    "project executive": "Project Executive",
    "sales leader": "Sales Leader",
    "sales lead": "Sales Leader",
    "engagement manager": "Engagement Manager",
    "em": "Engagement Manager",
    "pricer": "Pricer",
    "financial analyst": "Financial Analyst",
    "contracts lead": "Contracts Lead",
    "contract lead": "Contracts Lead",
    "legal counsel": "Legal Counsel",
    "transition manager": "Transition Manager",
    "client executive": "Client Executive",
    "ce": "Client Executive",
    "hr lead": "HR Lead",
    "third party consultant": "Third Party Consultant",
    "tpc": "Third Party Consultant",
    "sourcing consultant": "Third Party Consultant",
}


def normalize_role(role: str) -> str:
    """Map a role surface form onto its canonical name.

    Unknown roles are returned in title case so they still group
    consistently in the People tab.
    """
    cleaned = normalize_whitespace(role).rstrip(".").lower()
    canonical = ROLE_SYNONYMS.get(cleaned)
    if canonical is not None:
        return canonical
    return " ".join(_title_word(w) for w in cleaned.split())


_EMAIL_LOCAL_RE = re.compile(r"^([a-z]+)[._]([a-z]+)\d*$")


def person_from_email(email: str) -> Optional[Tuple[str, str]]:
    """Infer ``(full name, organization)`` from a corporate email address.

    Implements the inference in paper Fig. 3 step 6: addresses following
    the ``firstname.lastname@organization.com`` convention yield both a
    person name and an organization.  Returns None when the local part
    does not follow the convention (e.g. ``jsmith42@...``).
    """
    email = normalize_email(email)
    local, _, domain = email.partition("@")
    if not domain:
        return None
    match = _EMAIL_LOCAL_RE.match(local)
    if not match:
        return None
    first, last = match.groups()
    org = domain.split(".")[0]
    name = f"{_title_word(first)} {_title_word(last)}"
    return name, org.upper() if len(org) <= 4 else _title_word(org)
