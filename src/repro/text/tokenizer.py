"""Tokenization with character offsets.

EIL's annotators need to map extracted entities back to the exact span in
the source document (the UIMA CAS stores begin/end offsets), so the
tokenizer records offsets for every token rather than returning bare
strings.  The token model deliberately stays simple: words (letters and
digits, with embedded apostrophes/periods handled for abbreviations and
possessives), plus optional punctuation tokens for consumers that need
them (e.g. the email-address regex annotator works on raw text instead).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Sequence

__all__ = ["Token", "Tokenizer", "tokenize", "split_sentences"]

# A word is a run of alphanumerics that may contain internal apostrophes
# (don't), ampersands (AT&T) or periods between single letters (U.S.A.).
_WORD_RE = re.compile(
    r"""
    [A-Za-z0-9]+                 # leading alphanumeric run
    (?:['&.][A-Za-z0-9]+)*       # internal joiners: don't, AT&T, U.S.A
    """,
    re.VERBOSE,
)

_SENTENCE_BOUNDARY_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9\"'(])")


@dataclass(frozen=True)
class Token:
    """A single token with its character span in the source text.

    Attributes:
        text: The exact surface form as it appears in the document.
        start: Offset of the first character (inclusive).
        end: Offset one past the last character (exclusive).
    """

    text: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid token span [{self.start}, {self.end})")

    @property
    def lower(self) -> str:
        """Case-folded surface form."""
        return self.text.lower()

    def __len__(self) -> int:
        return self.end - self.start


class Tokenizer:
    """Offset-preserving word tokenizer.

    Args:
        lowercase: If true, token text is case-folded (offsets still refer
            to the original text).
        min_length: Tokens shorter than this are dropped.
    """

    def __init__(self, lowercase: bool = False, min_length: int = 1) -> None:
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        self.lowercase = lowercase
        self.min_length = min_length

    def tokenize(self, text: str) -> List[Token]:
        """Tokenize ``text`` into a list of :class:`Token`."""
        return list(self.iter_tokens(text))

    def iter_tokens(self, text: str) -> Iterator[Token]:
        """Lazily yield tokens from ``text`` in document order."""
        for match in _WORD_RE.finditer(text):
            surface = match.group(0)
            if len(surface) < self.min_length:
                continue
            if self.lowercase:
                surface = surface.lower()
            yield Token(surface, match.start(), match.end())


_DEFAULT_TOKENIZER = Tokenizer()


def tokenize(text: str) -> List[Token]:
    """Tokenize with the default (case-preserving) tokenizer."""
    return _DEFAULT_TOKENIZER.tokenize(text)


def split_sentences(text: str) -> List[str]:
    """Split ``text`` into sentences on terminal punctuation.

    This is a lightweight rule-based splitter: it breaks after ``.``,
    ``!`` or ``?`` followed by whitespace and an upper-case/“quote” start.
    Newlines that separate paragraphs also act as boundaries, which suits
    the slide/cell-oriented documents in engagement workbooks where most
    "sentences" are short fragments.
    """
    sentences: List[str] = []
    for block in re.split(r"\n\s*\n|\r\n\s*\r\n", text):
        block = block.strip()
        if not block:
            continue
        parts: Sequence[str] = _SENTENCE_BOUNDARY_RE.split(block)
        sentences.extend(p.strip() for p in parts if p.strip())
    return sentences
