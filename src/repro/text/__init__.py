"""Text-processing substrate: tokenization, stemming, normalization.

These primitives are shared by the search engine (the OmniFind
substitute) and the annotators.  Everything is pure Python and
deterministic.
"""

from repro.text.normalize import (
    ROLE_SYNONYMS,
    name_key,
    normalize_email,
    normalize_person_name,
    normalize_phone,
    normalize_role,
    normalize_whitespace,
    person_from_email,
)
from repro.text.similarity import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    token_set_ratio,
)
from repro.text.stemmer import PorterStemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tokenizer import Token, Tokenizer, split_sentences, tokenize

__all__ = [
    "ROLE_SYNONYMS",
    "name_key",
    "normalize_email",
    "normalize_person_name",
    "normalize_phone",
    "normalize_role",
    "normalize_whitespace",
    "person_from_email",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_ratio",
    "token_set_ratio",
    "PorterStemmer",
    "stem",
    "STOPWORDS",
    "is_stopword",
    "Token",
    "Tokenizer",
    "split_sentences",
    "tokenize",
]
