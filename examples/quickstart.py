"""Quickstart: build EIL over a synthetic corpus and run a concept search.

This is the 60-second tour: generate an enterprise world (deals,
engagement workbooks, personnel directory), run the offline pipeline
(crawl -> annotate -> aggregate -> populate), and ask the Meta-query 1
question from the paper — "which engagements have End User Services in
scope?" — comparing EIL's answer with the keyword baseline.

Run with::

    python examples/quickstart.py
"""

from repro import CorpusConfig, CorpusGenerator, EILSystem, User
from repro.core import render_synopsis, scope_query


def main() -> None:
    # 1. Generate a deterministic synthetic world (the proprietary-data
    #    substitute): 8 deals, ~30 documents each.
    corpus = CorpusGenerator(
        CorpusConfig(seed=2008, n_deals=8, docs_per_deal=30)
    ).generate()
    print(
        f"corpus: {len(corpus.deals)} deals, "
        f"{corpus.document_count} documents, "
        f"{len(corpus.directory)} people in the directory\n"
    )

    # 2. Build EIL: index the workbooks, run the annotator pipeline,
    #    populate the organized-information database.
    eil = EILSystem.build(corpus)
    report = eil.build_report
    print(
        f"offline build: {report.documents_indexed} docs indexed, "
        f"{report.deals_populated} deal synopses populated\n"
    )

    user = User("alice", frozenset({"sales"}))

    # 3. The keyword baseline: a pile of documents to read.
    keyword_hits = eil.keyword_count(
        '"End User Services" OR EUS OR CSC OR "Customer Service Center"'
    )
    print(f"keyword search returns {keyword_hits} documents to read\n")

    # 4. EIL: business activities first.
    results = eil.search(scope_query("End User Services"), user)
    print(f"EIL returns {len(results.activities)} business activities:")
    for activity in results.activities:
        print(f"  {activity.name}  (relevance {activity.score:.2f})")

    # 5. Drill into the top activity's synopsis (the Figure 6 view).
    if results.activities:
        print()
        print(render_synopsis(eil.synopsis(results.activities[0].deal_id,
                                           user)))


if __name__ == "__main__":
    main()
