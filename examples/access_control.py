"""Access control: the synopsis-only fallback (paper Section 3.1).

Demonstrates the paper's design point: *"if a user is not authorized to
access a data repository, the system presents to the user only a
synopsis of the desired information including a list of contact persons
with whom the user could communicate."*  Document search stops at the
ACL; EIL's extracted context does not.

Run with::

    python examples/access_control.py
"""

from repro import (
    AccessController,
    CorpusConfig,
    CorpusGenerator,
    EILSystem,
    User,
)
from repro.core import service_keyword_query


def main() -> None:
    corpus = CorpusGenerator(
        CorpusConfig(seed=11, n_deals=6, docs_per_deal=24)
    ).generate()

    # Lock every workbook down; grant only the delivery role access to
    # the first two, and one named user to the third.
    access = AccessController(default_open=False)
    workbooks = list(corpus.collection)
    access.grant_role(workbooks[0].name, "delivery")
    access.grant_role(workbooks[1].name, "delivery")
    access.grant_user(workbooks[2].name, "bob")

    eil = EILSystem.build(corpus, access=access)

    query = service_keyword_query("Storage Management Services",
                                  "data replication")

    for user in (
        User("alice", frozenset({"sales"})),
        User("bob", frozenset({"sales"})),
        User("carol", frozenset({"delivery"})),
        User("root", frozenset({"admin"})),
    ):
        results = eil.search(query, user)
        print(f"--- {user.user_id} (roles: {sorted(user.roles)}) ---")
        if not results.activities:
            print("   no matching activities")
        for activity in results.activities:
            if activity.documents:
                print(f"   {activity.name}: {len(activity.documents)} "
                      "documents visible")
            elif activity.documents_withheld:
                synopsis = eil.synopsis(activity.deal_id, user)
                contacts = synopsis.contacts()[:3]
                names = ", ".join(c.name for c in contacts)
                print(f"   {activity.name}: documents WITHHELD - synopsis "
                      f"offers {len(synopsis.contacts())} contacts "
                      f"(e.g. {names})")
            else:
                print(f"   {activity.name}: no documents matched")
        print()


if __name__ == "__main__":
    main()
