"""The offline pipeline, step by step (paper Figure 2, left half).

Instead of the one-call ``EILSystem.build``, this example wires the
stages manually — data acquisition, document parsing, the annotator
pipeline, collection processing, and database population — and prints
what each stage produced.  Useful as a template for plugging in your
own repositories or annotators.

Run with::

    python examples/build_pipeline.py
"""

from repro import CorpusConfig, CorpusGenerator
from repro.annotators import (
    ContactRollup,
    ScopeAggregator,
    build_eil_pipeline,
    register_eil_types,
)
from repro.core import OrganizedInformation
from repro.core.analysis import FeatureRollup
from repro.docmodel import DocumentParser, register_structure_types
from repro.search import Crawler, SearchEngine
from repro.uima import CollectionProcessingEngine, TypeSystem


def main() -> None:
    corpus = CorpusGenerator(
        CorpusConfig(seed=7, n_deals=4, docs_per_deal=20)
    ).generate()

    # Stage 1 — Data Acquisition: crawl the workbooks into the index.
    engine = SearchEngine(field_boosts={"title": 2.0})
    crawl = Crawler(engine).crawl_all(iter(corpus.collection))
    print(f"[acquisition] indexed={crawl.indexed} skipped={crawl.skipped}")

    # Stage 2 — parsing: every document becomes a CAS with structure
    # annotations (slide titles, sheet cells, form fields, ...).
    type_system = TypeSystem()
    register_structure_types(type_system)
    register_eil_types(type_system)
    parser = DocumentParser(type_system)
    sample = corpus.collection.all_documents()[0]
    sample_cas = parser.to_cas(sample)
    print(f"[parsing] {sample.doc_id}: {len(sample_cas)} structure "
          f"annotations over {len(sample_cas.text)} chars")

    # Stage 3 — Information Analysis: the composite annotator pipeline
    # plus collection-processing consumers.
    pipeline = build_eil_pipeline(corpus.taxonomy)
    pipeline.initialize_types(type_system)
    contact_rollup = ContactRollup(corpus.directory)
    scope_aggregator = ScopeAggregator(min_weight=4.0)
    strategy_rollup = FeatureRollup("strategies", "eil.WinStrategy",
                                    ("text",))
    cpe = CollectionProcessingEngine(
        pipeline, [contact_rollup, scope_aggregator, strategy_rollup]
    )
    report = cpe.run(
        parser.to_cas(document)
        for document in corpus.collection.all_documents()
    )
    contacts = report.consumer_results["contact-rollup"]
    scopes = report.consumer_results["scope-aggregator"]
    print(f"[analysis] processed={report.documents_processed} "
          f"failed={report.documents_failed}")

    # Stage 4 — Organized Information: populate the database.
    organized = OrganizedInformation()
    for deal in corpus.deals:
        organized.store_deal_context(deal.deal_id,
                                     {"Deal Name": deal.name})
        organized.store_scopes(deal.deal_id,
                               scopes.get(deal.deal_id, []))
        organized.store_contacts(deal.deal_id,
                                 contacts.get(deal.deal_id, []))
    print(f"[organized] deals={len(organized.deal_ids())}")

    # Inspect one deal's extraction vs ground truth.
    deal = corpus.deals[0]
    extracted_scope = [s["canonical"] for s in
                       organized.scopes_of(deal.deal_id)]
    print(f"\n{deal.name} ground-truth scope : {list(deal.towers)}")
    print(f"{deal.name} extracted scope    : {extracted_scope}")
    extracted_team = {c["name"] for c in
                      organized.contacts_of(deal.deal_id)}
    truth_team = {m.person.full_name for m in deal.team}
    print(f"team recovered: {len(extracted_team & truth_team)}"
          f"/{len(truth_team)}")


if __name__ == "__main__":
    main()
