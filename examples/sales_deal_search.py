"""All four meta-queries (paper Section 2), end to end.

Walks through the exact information needs the paper derived from the
sales community's email distribution list, showing for each one how the
keyword baseline struggles and what EIL returns instead.

Run with::

    python examples/sales_deal_search.py
"""

from repro import CorpusConfig, CorpusGenerator, EILSystem, User
from repro.core import (
    render_results,
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)

USER = User("alice", frozenset({"sales"}))


def meta_query_1(corpus, eil) -> None:
    """Which engagements have a scope that involves <this service>?"""
    print("=" * 72)
    print("META-QUERY 1: deals with End User Services in scope")
    print("=" * 72)
    naive = eil.keyword_count('"End User Services" OR EUS')
    expanded = eil.keyword_count(
        '"End User Services" OR EUS OR CSC OR "Customer Service Center" '
        'OR "Customer Services Center" OR DCS '
        'OR "Distributed Client Services" '
        'OR "Distributed Computing Services"'
    )
    print(f"keyword, service name only : {naive} documents")
    print(f"keyword, subtypes spelled  : {expanded} documents (Figure 4)")
    results = eil.search(scope_query("End User Services"), USER)
    truth = {d.name for d in corpus.deals_with_service("End User Services")}
    print(f"EIL                        : {len(results.activities)} deals "
          f"(truth: {sorted(truth)})")
    for activity in results.activities:
        print(f"   {activity.name}  relevance={activity.score:.2f}")
    print()


def meta_query_2(corpus, eil) -> None:
    """Who in <role> has worked with <person> in <organization>?"""
    member = next(
        m for d in corpus.deals for m in d.team
        if m.category == "client team"
    )
    person = member.person
    print("=" * 72)
    print(f"META-QUERY 2: who worked with {person.full_name} "
          f"({person.organization})?")
    print("=" * 72)
    step1 = eil.keyword_count(
        f'"{person.full_name}" {person.organization.split()[0]} CSE'
    )
    print(f"keyword step 1 (name+org+role): {step1} documents")
    results = eil.search(
        worked_with_query(person.full_name, person.organization), USER
    )
    print(f"EIL (one people query): deals {results.deal_ids}")
    if results.deal_ids:
        synopsis = eil.synopsis(results.deal_ids[0], USER)
        print(f"People tab of {synopsis.name} "
              f"({len(synopsis.contacts())} contacts):")
        for category in sorted(synopsis.people):
            names = ", ".join(c.name for c in synopsis.people[category][:4])
            print(f"   {category}: {names}")
    print()


def meta_query_3(corpus, eil) -> None:
    """Who has worked in the capacity of <this role>?"""
    print("=" * 72)
    print("META-QUERY 3: who has worked as a cross tower TSA?")
    print("=" * 72)
    hits = eil.keyword_search('"cross tower TSA"')
    print(f"keyword: {len(hits)} documents (mostly empty schema fields)")
    results = eil.search(role_capacity_query("cross tower TSA"), USER)
    print(f"EIL: {len(results.activities)} deals with the role on the "
          "contact list:")
    for activity in results.activities[:5]:
        synopsis = eil.synopsis(activity.deal_id, USER)
        holders = [
            c.name for c in synopsis.contacts()
            if c.role == "Cross Tower Technical Solution Architect"
        ]
        print(f"   {activity.name}: {', '.join(holders)}")
    print()


def meta_query_4(corpus, eil) -> None:
    """Who did <service> engagements involving <keyword>?"""
    print("=" * 72)
    print("META-QUERY 4: Storage Management Services deals involving "
          '"data replication"')
    print("=" * 72)
    results = eil.search(
        service_keyword_query("Storage Management Services",
                              "data replication"),
        USER,
    )
    print(f"SIAPI query scoped to synopsis matches: {results.scoped}")
    print(render_results(results))
    print()


def main() -> None:
    corpus = CorpusGenerator(
        CorpusConfig(seed=2008, n_deals=10, docs_per_deal=40)
    ).generate()
    eil = EILSystem.build(corpus)
    meta_query_1(corpus, eil)
    meta_query_2(corpus, eil)
    meta_query_3(corpus, eil)
    meta_query_4(corpus, eil)


if __name__ == "__main__":
    main()
