"""Reproducing the requirements study (paper Section 2).

Generates the 120-thread sales distribution list, classifies every
thread with the rule-based analyst substitute, and prints the meta-query
distribution next to the numbers the paper reports.

Run with::

    python examples/email_study.py
"""

from repro import CorpusConfig, CorpusGenerator
from repro.eval import MetaQueryClassifier

PAPER_NUMBERS = {
    "mq1": ("scope of engagements", 38.0),
    "mq2": ("worked with <person> at <org>", 17.0),
    "mq3": ("worked in the capacity of <role>", 36.0),
    "mq4": ("<service> involving <keyword>", 29.0),
}


def main() -> None:
    corpus = CorpusGenerator(
        CorpusConfig(seed=2008, n_deals=6, docs_per_deal=20, n_threads=120)
    ).generate()
    report = MetaQueryClassifier().run_study(corpus.threads)

    print(f"threads analyzed: {report.total}")
    print(f"classifier agreement with ground truth: "
          f"{report.label_accuracy:.0%}\n")
    print(f"{'meta-query':45s} {'measured':>9s} {'paper':>7s}")
    for meta_query, (description, paper_pct) in PAPER_NUMBERS.items():
        measured = report.percentage(meta_query)
        print(f"{meta_query} {description:42s} {measured:8.1f}% "
              f"{paper_pct:6.1f}%")
    print(f"\nthreads soliciting social-networking info: "
          f"{report.social_count}/{report.total} "
          f"(paper: 63/120)")

    # Show one thread per type.
    print("\nsample threads:")
    shown = set()
    for thread in corpus.threads:
        for meta_query in thread.true_types:
            if meta_query not in shown:
                shown.add(meta_query)
                subject = thread.messages[0].subject
                print(f"  [{meta_query}] {subject}")
    print()


if __name__ == "__main__":
    main()
