"""Incremental rollout: onboarding deals and snapshotting the context.

The paper's production deployment grew to ~1000 engagements; nobody
rebuilds the world per new deal.  This example starts with a small
system, onboards a new engagement incrementally, verifies it is
immediately searchable, offboards another, and saves/restores the
organized-information database as a JSON snapshot.

Run with::

    python examples/incremental_rollout.py
"""

import tempfile

from repro import CorpusConfig, CorpusGenerator, EILSystem, User
from repro.core import scope_query
from repro.corpus import DealGenerator, WorkbookFactory
from repro.db import dump_database, load_database

USER = User("ops", frozenset({"sales"}))


def main() -> None:
    corpus = CorpusGenerator(
        CorpusConfig(seed=3, n_deals=5, docs_per_deal=20)
    ).generate()
    eil = EILSystem.build(corpus)
    print(f"initial build: {eil.build_report.deals_populated} deals, "
          f"{len(eil.engine)} documents indexed")

    # --- onboard a new engagement --------------------------------------
    # Deal ids are positional (deal-0000, deal-0001, ...), so the sixth
    # generated deal gets an id beyond the five already deployed.
    generator = DealGenerator(seed=777, taxonomy=corpus.taxonomy)
    new_deal = generator.generate(6)[5]
    workbook = WorkbookFactory(corpus.taxonomy, seed=777).build_workbook(
        new_deal, 20
    )
    eil.add_workbook(workbook)
    print(f"\nonboarded {new_deal.name} "
          f"({len(workbook)} documents, scope: {new_deal.towers[:3]}...)")

    results = eil.search(scope_query(new_deal.towers[0]), USER)
    found = new_deal.deal_id in results.deal_ids
    print(f"searchable immediately via '{new_deal.towers[0]}': {found}")
    synopsis = eil.synopsis(new_deal.deal_id, USER)
    print(f"synopsis ready: {len(synopsis.contacts())} contacts, "
          f"{len(synopsis.towers)} towers")

    # --- offboard an engagement ------------------------------------------
    victim = corpus.deals[0]
    removed = eil.remove_deal(victim.deal_id)
    print(f"\noffboarded {victim.name}: {removed} documents dropped; "
          f"{len(eil.deal_ids())} deals remain")

    # --- snapshot the organized information ------------------------------
    with tempfile.NamedTemporaryFile(suffix=".json",
                                     delete=False) as handle:
        path = handle.name
    dump_database(eil.organized.db, path)
    restored = load_database(path)
    deals = restored.execute("SELECT COUNT(*) FROM deals").scalar()
    contacts = restored.execute("SELECT COUNT(*) FROM contacts").scalar()
    print(f"\nsnapshot -> {path}")
    print(f"restored snapshot holds {deals} deals, {contacts} contacts "
          "(no pipeline re-run needed)")


if __name__ == "__main__":
    main()
