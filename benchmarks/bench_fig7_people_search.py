"""E6 — Figure 7 / Meta-query 2: the multi-step people search.

The paper's episode: "Sam White ABC CSE" returns nothing; "Sam White
ABC" returns 4 documents from which the deal name is learned; "ABC
Online CSE" returns 97 documents to read.  EIL answers with one people
query whose top deal's People tab lists everyone with roles and contact
details.  The shape: the keyword route needs several queries and ends
on a large reading list; EIL needs one query.
"""

from repro.eval import run_fig7


def test_fig7_multistep_people_search(benchmark, corpus_table2, eil_table2,
                                      report_writer):
    report = benchmark.pedantic(
        run_fig7, args=(corpus_table2, eil_table2), rounds=1, iterations=1
    )
    lines = [
        "E6: Figure 7 - people search, keyword steps vs one EIL query",
        f"target person                   : {report.person} "
        f"({report.organization})",
        f"keyword step 1 (name+org+role)  : {report.step1_docs} documents "
        "(paper: 0)",
        f"keyword step 2 (name+org)       : {report.step2_docs} documents "
        "(paper: 4)",
        f"deals identifiable from step 2  : {report.discovered_deals}",
        f"keyword step 3 (deal+role)      : {report.step3_docs} documents "
        "(paper: 97)",
        f"keyword queries needed          : {report.keyword_steps} "
        "(paper: 3)",
        f"EIL queries needed              : 1",
        f"EIL deals                       : {report.eil_deals}",
        f"contacts on top deal People tab : {report.eil_contacts}",
        f"ground-truth deals              : {report.truth_deals}",
    ]
    report_writer("E6_fig7", "\n".join(lines))

    # Shape: the one-shot keyword query fails; EIL's single query finds
    # a true deal and yields a populated contact list.
    assert report.step1_docs == 0
    assert report.keyword_steps >= 2
    assert set(report.eil_deals) & set(report.truth_deals)
    assert report.eil_contacts >= 5
