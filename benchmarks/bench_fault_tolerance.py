"""Fault-tolerance bench: ``BENCH_fault_tolerance.json``.

Measures what the fault-injection PR promises (docs/OPERATIONS.md):

* **build survival** — for each offline fault point (``repository``,
  ``crawler``, ``analysis``) at increasing error rates, the offline
  pipeline must complete, quarantining what it could not process; the
  bench records the survival ratio (documents processed / documents
  generated), the quarantine counts, and the wall-clock overhead the
  retries cost over a clean build.  At each rate the 2-worker build is
  compared with the serial build — injected decisions hash on document
  identity, not scheduling, so the surviving results must be identical
  (the PR 2 determinism invariant, under fire).
* **query degradation** — against a cleanly built system, the bench
  arms hard outages (error rate 1.0) of the synopsis store, the index,
  and both, then runs the meta-query workload: single outages must
  yield flagged degraded results (``no-synopsis`` / ``no-index``) and
  never an exception; the double outage must yield the structured
  :class:`~repro.errors.EILUnavailableError`.  A moderate-rate run
  (20%) records the retry latency tax on query wall-clock.

Run standalone (CI smoke uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py [--smoke]

or under pytest, where it asserts the JSON is well-formed::

    PYTHONPATH=src python -m pytest benchmarks/bench_fault_tolerance.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional

from repro import CorpusConfig, CorpusGenerator, EILSystem, obs
from repro.core.metaqueries import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.errors import EILUnavailableError
from repro.faults import FaultInjector, FaultProfile, use_injector
from repro.security.access import User

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_fault_tolerance.json"
)
_USER = User("bench", frozenset({"sales"}))

#: Offline fault points exercised by the build-survival matrix.
BUILD_COMPONENTS = ("repository", "crawler", "analysis")

#: A fast retry policy so the bench measures behaviour, not sleeps.
_RETRY_KWARGS = dict(base_delay=0.0, max_delay=0.0)


def _fast_retry(seed: int = 0):
    from repro.faults import RetryPolicy

    return RetryPolicy(seed=seed, **_RETRY_KWARGS)


def _query_forms(corpus):
    member = corpus.deals[0].team[0]
    return [
        scope_query("End User Services"),
        worked_with_query(member.person.full_name),
        role_capacity_query("cross tower TSA"),
        service_keyword_query("Storage Management Services",
                              "data replication"),
    ]


def _build_under(corpus, spec: Optional[str], seed: int, workers: int):
    """One build under an (optional) armed profile; returns stats."""
    registry = obs.MetricsRegistry()
    injector = (
        FaultInjector(FaultProfile.parse(spec), seed=seed)
        if spec else FaultInjector()
    )
    started = time.perf_counter()
    with obs.use_registry(registry), use_injector(injector):
        eil = EILSystem.build(
            corpus, workers=workers, retry=_fast_retry(seed)
        )
    elapsed = time.perf_counter() - started
    report = eil.build_report
    results = eil.analysis_results
    return {
        "eil": eil,
        "seconds": elapsed,
        "indexed": report.documents_indexed,
        "processed": results.documents_processed,
        "quarantined": results.documents_quarantined,
        "quarantine_lines": list(results.quarantined),
        "faults_injected": registry.counters["faults.injected"].value
        if "faults.injected" in registry.counters else 0,
        "results": results,
    }


def _build_matrix(corpus, rates, seed: int):
    """The component x rate build-survival matrix: ``(rows, clean)``.

    The low rates (10-20%) show retries absorbing transient noise with
    zero quarantine; the high rate (60%) is past what three attempts
    can hide, so the quarantine-and-continue path itself is exercised.
    """
    clean = _build_under(corpus, None, seed, workers=1)
    total = clean["processed"]
    total_indexed = clean["indexed"]
    rows: List[Dict[str, object]] = []
    for component in BUILD_COMPONENTS:
        for rate in rates:
            spec = f"{component}:error={rate}"
            serial = _build_under(corpus, spec, seed, workers=1)
            parallel = _build_under(corpus, spec, seed, workers=2)
            # Crawler faults thin the *index*, repository/analysis
            # faults thin the *analysis*; survival is the worse of
            # the two so each component's loss is visible.
            rows.append({
                "component": component,
                "error_rate": rate,
                "completed": True,
                "documents_processed": serial["processed"],
                "documents_indexed": serial["indexed"],
                "documents_quarantined": serial["quarantined"],
                "survival_ratio": min(
                    serial["processed"] / total if total else 0.0,
                    serial["indexed"] / total_indexed
                    if total_indexed else 0.0,
                ),
                "faults_injected": serial["faults_injected"],
                "build_seconds": serial["seconds"],
                "overhead_vs_clean": (
                    serial["seconds"] / clean["seconds"]
                    if clean["seconds"] else 0.0
                ),
                "parallel_identical": (
                    serial["results"] == parallel["results"]
                ),
            })
    return rows, clean


def _degradation_run(corpus, spec: Optional[str], seed: int):
    """The query workload under one outage profile (fresh build first).

    The build runs clean; only the online path is under fire, which is
    exactly the ops scenario the ladder exists for.
    """
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        eil = EILSystem.build(corpus, retry=_fast_retry(seed))
        injector = (
            FaultInjector(FaultProfile.parse(spec), seed=seed)
            if spec else FaultInjector()
        )
        outcomes = {"full": 0, "no-synopsis": 0, "no-index": 0,
                    "unavailable": 0}
        started = time.perf_counter()
        with use_injector(injector):
            for form in _query_forms(corpus):
                try:
                    results = eil.search(form, _USER)
                except EILUnavailableError:
                    outcomes["unavailable"] += 1
                else:
                    outcomes[results.degraded or "full"] += 1
        elapsed = time.perf_counter() - started
    counters = {
        name: counter.value
        for name, counter in registry.counters.items()
        if name.startswith(("query.degraded", "breaker.open",
                            "retry.", "faults.injected"))
        and "." != name[-1]
    }
    return {
        "profile": spec or "none",
        "outcomes": outcomes,
        "seconds": elapsed,
        "counters": counters,
    }


def run_bench(
    deals: int = 8,
    docs: int = 16,
    rates=(0.1, 0.2, 0.6),
    seed: int = 2008,
    fault_seed: int = 0,
    out_path: pathlib.Path = DEFAULT_OUT,
) -> Dict[str, object]:
    """Run the build matrix + degradation runs, write the JSON."""
    corpus = CorpusGenerator(
        CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
    ).generate()
    matrix, clean = _build_matrix(corpus, rates, fault_seed)
    degradation = [
        _degradation_run(corpus, spec, fault_seed)
        for spec in (
            None,
            "db:error=0.2",
            "db:error=1.0",
            "index:error=1.0",
            "db:error=1.0;index:error=1.0",
        )
    ]
    report: Dict[str, object] = {
        "bench": "fault_tolerance",
        "schema_version": 1,
        "created_unix": time.time(),
        "corpus": {
            "seed": seed,
            "deals": deals,
            "docs_per_deal": docs,
            "documents_processed": clean["processed"],
        },
        "fault_seed": fault_seed,
        "build_matrix": matrix,
        "degradation": degradation,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_fault_tolerance(report_writer):
    """Pytest entry: run a small bench and sanity-check the JSON."""
    report = run_bench(deals=4, docs=14, rates=(0.2,))
    matrix = report["build_matrix"]
    assert all(row["completed"] for row in matrix)
    assert all(row["parallel_identical"] for row in matrix)
    # 20% single-component faults must not wipe out the corpus.
    assert all(row["survival_ratio"] >= 0.5 for row in matrix)
    by_profile = {run["profile"]: run for run in report["degradation"]}
    assert by_profile["none"]["outcomes"]["full"] == 4
    assert by_profile["db:error=1.0"]["outcomes"]["no-synopsis"] == 4
    assert by_profile["index:error=1.0"]["outcomes"]["no-index"] >= 1
    both = by_profile["db:error=1.0;index:error=1.0"]["outcomes"]
    assert both["unavailable"] >= 1
    assert DEFAULT_OUT.exists()
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "fault_tolerance"
    survived = min(row["survival_ratio"] for row in matrix)
    lines = [
        "E15: fault tolerance (injection, quarantine, degradation)",
        f"build matrix: {len(matrix)} component x rate cells, all "
        f"completed, parallel==serial everywhere, min survival "
        f"{survived:.0%}",
        "hard outages: db -> "
        f"{by_profile['db:error=1.0']['outcomes']['no-synopsis']} "
        "no-synopsis, index -> "
        f"{by_profile['index:error=1.0']['outcomes']['no-index']} "
        "no-index, both -> "
        f"{both['unavailable']} unavailable (structured, not a crash)",
    ]
    report_writer("E15_fault_tolerance", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=8)
    parser.add_argument("--docs", type=int, default=16)
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[0.1, 0.2, 0.6])
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus + single rate (CI smoke)")
    args = parser.parse_args()
    if args.smoke:
        args.deals, args.docs, args.rates = 4, 14, [0.2]
    report = run_bench(args.deals, args.docs, tuple(args.rates),
                       args.seed, args.fault_seed, args.out)
    print(f"wrote {args.out}")
    for row in report["build_matrix"]:
        print(f"build {row['component']:<10} @ {row['error_rate']:.0%}: "
              f"processed {row['documents_processed']}, quarantined "
              f"{row['documents_quarantined']} "
              f"(survival {row['survival_ratio']:.0%}, "
              f"parallel identical: {row['parallel_identical']})")
    for run in report["degradation"]:
        outcomes = ", ".join(
            f"{name}={count}"
            for name, count in run["outcomes"].items() if count
        )
        print(f"queries under {run['profile']:<28}: {outcomes}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
