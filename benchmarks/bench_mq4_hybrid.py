"""E8 — Figures 8-9 / Meta-query 4: concept + keyword hybrid search.

The paper's query: deals with the Storage Management Services tower
containing "data replication" anywhere in the workbook (Figure 8); the
result page lists activities first, each with its supporting documents
(Figure 9).  The shape: the SIAPI query runs scoped to the synopsis
matches, and the activity set matches the strict ground truth better
than the one-shot keyword conjunction.
"""

from repro.core import render_results, service_keyword_query
from repro.eval import evaluate_sets, run_mq4
from repro.security import User

USER = User("bench", frozenset({"sales"}))


def test_mq4_hybrid_query(benchmark, corpus_table2, eil_table2,
                          report_writer):
    report = benchmark.pedantic(
        run_mq4, args=(corpus_table2, eil_table2), rounds=1, iterations=1
    )
    eil_scores = evaluate_sets(set(report.eil_deals), report.truth_deals)
    keyword_scores = evaluate_sets(report.keyword_deals,
                                   report.truth_deals)
    results = eil_table2.search(
        service_keyword_query(report.service, report.keyword), USER
    )
    lines = [
        "E8: Meta-query 4 - Storage Management Services + "
        '"data replication"',
        f"SIAPI scoped to synopsis matches : {report.eil_scoped}",
        f"truth deals                      : {sorted(report.truth_deals)}",
        f"EIL deals                        : {sorted(report.eil_deals)} "
        f"({eil_scores})",
        f"keyword one-shot deals           : "
        f"{sorted(report.keyword_deals)} ({keyword_scores})",
        f"keyword documents to read        : {report.keyword_docs}",
        "",
        "E8: Figure 9 - activity-first result layout",
        render_results(results),
    ]
    report_writer("E8_mq4", "\n".join(lines))

    # Shape: EIL runs scoped and at least matches the keyword baseline
    # on F while returning activities (not documents) as the unit.
    assert report.eil_scoped
    assert eil_scores.f_measure >= keyword_scores.f_measure
    assert report.truth_deals <= set(report.eil_deals)
